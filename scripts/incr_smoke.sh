#!/usr/bin/env bash
# Incremental-compilation smoke: drive a real tbaad with the `--mutate`
# workload — superseding loads of near-identical program versions, chaos
# clients on — and fail unless the run (a) passed every differential
# gate with zero byte divergences and (b) actually exercised the
# function-granular cache (nonzero unit reuse). This is the CI-sized
# proof that incremental re-analysis is both *on* and *invisible*.
#
#   scripts/incr_smoke.sh                      # smoke params
#   scripts/incr_smoke.sh --duration 10 ...    # extra args forwarded
set -euo pipefail
cd "$(dirname "$0")/.."

for BIN in tbaad tbaa-loadgen; do
    if [[ ! -x "target/release/$BIN" ]]; then
        echo "== building $BIN (release)"
        cargo build --release -p tbaa-server --bin tbaad
        cargo build --release -p tbaa-bench --bin tbaa-loadgen
        break
    fi
done

OUT=${INCR_SMOKE_OUT:-target/bench_incr_smoke.json}
target/release/tbaa-loadgen --smoke --mutate 10 --out "$OUT" "$@"

# The loadgen exit status already enforces the gates (including the
# mutate-mode reuse gate); re-derive the two load-bearing facts from the
# artifact so this script fails loudly if the gating ever regresses.
grep -q '"mismatches":0' "$OUT" || {
    echo "incr_smoke: differential mismatches recorded in $OUT" >&2
    exit 1
}
HITS=$(grep -o '"func_hits":[0-9]*' "$OUT" | head -1 | cut -d: -f2)
if [[ -z "$HITS" || "$HITS" -eq 0 ]]; then
    echo "incr_smoke: no incremental function reuse recorded in $OUT" >&2
    exit 1
fi
echo "incr_smoke: $HITS function units replayed from cache, zero divergences"
