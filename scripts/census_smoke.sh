#!/usr/bin/env bash
# Smoke-test the word-parallel pair census end to end: the daemon's
# `pairs` verb must report exactly the counts `paper-tables` prints for
# Table 5 (same scale, same levels), the census must run on the dense
# kernel (stats counters prove which path answered), and the scalar
# fallback must never be needed for benchsuite programs.
set -euo pipefail
cd "$(dirname "$0")/.."

TBAAD=target/release/tbaad
TABLES=target/release/paper-tables
if [[ ! -x "$TBAAD" ]]; then
    echo "== building tbaad (release)"
    cargo build --release -p tbaa-server --bin tbaad
fi
if [[ ! -x "$TABLES" ]]; then
    echo "== building paper-tables (release)"
    cargo build --release -p tbaa-bench --bin paper-tables
fi

TABLE5=$(mktemp)
OUT=$(mktemp)
trap 'rm -f "$TABLE5" "$OUT"; kill "$PID" 2>/dev/null || true' EXIT

# Table 5 through the census kernel (paper-tables routes its pair
# counts through census_alias_pairs); default scale is what the daemon
# load below must match.
"$TABLES" table5 --json > "$TABLE5"

"$TBAAD" --addr 127.0.0.1:0 > "$OUT" 2>/dev/null &
PID=$!

ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^tbaad listening on //p' "$OUT")
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "tbaad did not start"; exit 1; }
PORT=${ADDR##*:}
echo "== tbaad up on port $PORT"

python3 - "$PORT" "$TABLE5" <<'EOF'
import json, socket, sys

port, table5_path = int(sys.argv[1]), sys.argv[2]
table5 = {}
with open(table5_path) as f:
    for line in f:
        row = json.loads(line)
        assert row["table"] == "table5", row
        table5[row["name"]] = row
assert table5, "paper-tables emitted no table5 rows"

sock = socket.create_connection(("127.0.0.1", port), timeout=30)
io = sock.makefile("rw", newline="\n")

def rpc(obj):
    io.write(json.dumps(obj) + "\n")
    io.flush()
    return json.loads(io.readline())

# paper-tables' Table 5: closed world, DEFAULT_SCALE = 2.
LEVELS = [("typedecl", "TypeDecl"), ("fields", "FieldTypeDecl"), ("merges", "SMFieldTypeRefs")]
for name, row in sorted(table5.items()):
    load = rpc({"op": "load", "bench": name, "scale": 2})
    assert load["ok"], load
    sid = load["session"]
    for wire_level, label in LEVELS:
        reply = rpc({"op": "pairs", "session": sid, "level": wire_level, "world": "closed"})
        assert reply["ok"], reply
        want = row["levels"][label]
        assert reply["references"] == row["references"], (name, label, reply, row)
        assert reply["local_pairs"] == want["local_pairs"], (name, label, reply, want)
        assert reply["global_pairs"] == want["global_pairs"], (name, label, reply, want)
    print(f"  {name}: {row['references']} refs, 3 levels match table5")

stats = rpc({"op": "stats"})
assert stats["ok"], stats
counters = stats["stats"]["counters"]
assert counters["census.dense_rows"] > 0, counters
assert counters["census.fallback_pairs"] == 0, (
    "benchsuite programs are dense-regime; the scalar fallback must not run: %r" % counters
)
print("  census.dense_rows=%d census.fallback_pairs=0" % counters["census.dense_rows"])

bye = rpc({"op": "shutdown"})
assert bye["ok"], bye
EOF

wait "$PID"
echo "== census smoke passed (daemon pairs == paper-tables table5, dense kernel answered)"
