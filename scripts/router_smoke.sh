#!/usr/bin/env bash
# Router smoke: stand up a tbaa-router over two in-process tbaad shards,
# drive it with mixed + chaos traffic for ~2s, kill one backend halfway
# through, and fail on any differential mismatch, missed respawn,
# unanswered request, or unclean exit. The differential checker compares
# every reply byte-for-byte against the in-process Pipeline oracle, so a
# pass means the sharded deployment is indistinguishable from one daemon.
#
#   scripts/router_smoke.sh                     # smoke params, chaos on
#   scripts/router_smoke.sh --duration 10 ...   # extra args forwarded
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x target/release/tbaa-loadgen ]]; then
    echo "== building tbaa-loadgen (release)"
    cargo build --release -p tbaa-bench --bin tbaa-loadgen
fi

OUT=${ROUTER_SMOKE_OUT:-target/bench_router_smoke.json}
target/release/tbaa-loadgen --smoke --router 2 --kill-backend --out "$OUT" "$@"
