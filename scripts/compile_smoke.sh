#!/usr/bin/env bash
# Cold-compile pipeline benchmark: serial cost + allocation count of
# source -> IR over the benchsuite, thread-scaling curve of the parallel
# lowering fan-out, and byte-identity of parallel vs serial output.
# Merges a `compile` section into BENCH_alias_query.json in the repo root.
#
#   scripts/compile_smoke.sh            # full run (gates on allocations,
#                                       # and on thread scaling when the
#                                       # host has >1 core)
#   scripts/compile_smoke.sh --smoke    # quick correctness-only pass (CI)
#
# Extra arguments are forwarded to the bench-compile binary.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/bench-compile
if [[ ! -x "$BIN" ]]; then
    echo "== building bench-compile (release)"
    cargo build --release -p tbaa-bench --bin bench-compile
fi

"$BIN" "$@"
