#!/usr/bin/env bash
# Full local gate, identical to CI: release build, tests, clippy.
# The dependency graph is path-only, so everything here runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy perf lints (enforcing for the compile pipeline crates)"
cargo clippy -p tbaa-ir -p tbaa-incr --all-targets -- -D warnings -D clippy::perf

echo "== cargo clippy perf lints (advisory elsewhere: reported, never fails the gate)"
cargo clippy --workspace --all-targets -- -W clippy::perf || true

echo "== bench targets compile (feature bench-deps)"
cargo build --release -p tbaa-bench --benches --features bench-deps

echo "== tbaad server smoke test"
scripts/server_smoke.sh

echo "== alias-query bench smoke (engines agree, harness runs)"
scripts/bench_alias.sh --smoke --out target/bench_alias_smoke.json

echo "== cold-compile bench smoke (parallel lowering byte-identical, alloc gate)"
scripts/compile_smoke.sh --smoke --out target/bench_compile_smoke.json

echo "== loadgen smoke (chaos on, differential gates)"
scripts/load_smoke.sh

echo "== router smoke (2 shards, backend kill, differential gates)"
scripts/router_smoke.sh

echo "== incremental smoke (mutate workload, reuse + differential gates)"
scripts/incr_smoke.sh

echo "== census smoke (pairs verb == paper-tables table5, dense kernel)"
scripts/census_smoke.sh

echo "== journal smoke (kill -9, restart, byte-identical recovery)"
scripts/journal_smoke.sh

echo "All checks passed."
