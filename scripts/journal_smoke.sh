#!/usr/bin/env bash
# Smoke-test the durable session journal end to end: start tbaad with a
# journal dir, load a program and capture an alias reply, kill -9 the
# daemon (no drain, no handshake), restart it over the same journal dir,
# and demand the same session id and byte-identical alias bytes — then
# run the loadgen crash-restart gate for the concurrent version of the
# same story.
set -euo pipefail
cd "$(dirname "$0")/.."

TBAAD=target/release/tbaad
LOADGEN=target/release/tbaa-loadgen
if [[ ! -x "$TBAAD" || ! -x "$LOADGEN" ]]; then
    echo "== building tbaad + tbaa-loadgen (release)"
    cargo build --release -p tbaa-server --bin tbaad -p tbaa-bench --bin tbaa-loadgen
fi

JDIR=$(mktemp -d)
OUT=$(mktemp)
trap 'rm -rf "$JDIR" "$OUT"; kill -9 "$PID" 2>/dev/null || true' EXIT

start_tbaad() {
    "$TBAAD" --addr 127.0.0.1:0 --journal-dir "$JDIR" > "$OUT" 2>/dev/null &
    PID=$!
    ADDR=""
    for _ in $(seq 1 50); do
        ADDR=$(sed -n 's/^tbaad listening on //p' "$OUT")
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    [[ -n "$ADDR" ]] || { echo "tbaad did not start"; exit 1; }
    PORT=${ADDR##*:}
}

start_tbaad
echo "== tbaad up on port $PORT (journal at $JDIR)"

# First life: load, capture the session id and exact alias reply bytes.
python3 - "$PORT" > "$JDIR/first_life" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port), timeout=30)
io = sock.makefile("rw", newline="\n")

def rpc_raw(obj):
    io.write(json.dumps(obj) + "\n")
    io.flush()
    return io.readline().rstrip("\n")

load = json.loads(rpc_raw({"op": "load", "bench": "ktree", "scale": 1, "paths": True}))
assert load["ok"], load
paths = load["paths"]
alias_raw = rpc_raw({"op": "alias", "session": load["session"],
                     "pairs": [[paths[0], paths[1]], [paths[0], paths[0]]]})
assert json.loads(alias_raw)["ok"], alias_raw
print(load["session"])
print(alias_raw)
EOF
SID=$(sed -n 1p "$JDIR/first_life")
echo "== first life answered under session $SID"

# The crash: SIGKILL, no drain, no final fsync.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "== tbaad killed -9"

# Second life over the same journal dir.
: > "$OUT"
start_tbaad
echo "== tbaad back up on port $PORT"

# The restarted daemon must have replayed the journal, answer the same
# session id for the same content, and produce byte-identical alias
# replies for it.
python3 - "$PORT" "$JDIR/first_life" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])
with open(sys.argv[2]) as f:
    old_sid = f.readline().rstrip("\n")
    old_alias = f.readline().rstrip("\n")

sock = socket.create_connection(("127.0.0.1", port), timeout=30)
io = sock.makefile("rw", newline="\n")

def rpc_raw(obj):
    io.write(json.dumps(obj) + "\n")
    io.flush()
    return io.readline().rstrip("\n")

stats = json.loads(rpc_raw({"op": "stats"}))
replayed = stats["stats"]["counters"].get("journal.replayed", 0)
assert replayed >= 1, "restart replayed nothing: %s" % stats

load = json.loads(rpc_raw({"op": "load", "bench": "ktree", "scale": 1, "paths": True}))
assert load["ok"], load
assert load["cached"], "recovered session must not recompile: %s" % load
assert load["session"] == old_sid, "session id changed across the crash: %s vs %s" % (
    load["session"], old_sid)
paths = load["paths"]
alias_raw = rpc_raw({"op": "alias", "session": load["session"],
                     "pairs": [[paths[0], paths[1]], [paths[0], paths[0]]]})
assert alias_raw == old_alias, "alias bytes diverged across the crash:\n  pre  %s\n  post %s" % (
    old_alias, alias_raw)

down = json.loads(rpc_raw({"op": "shutdown"}))
assert down["ok"] and down["draining"], down
print("recovery ok: replayed %d, session %s, alias bytes identical" % (replayed, old_sid))
EOF

for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
    echo "tbaad did not exit after shutdown"
    exit 1
fi
wait "$PID"
echo "== tbaad drained and exited cleanly"

# The concurrent version: loadgen hard-kills the daemon mid-run and
# gates on recovery + zero byte-level divergences.
echo "== loadgen crash-restart gate"
"$LOADGEN" --crash-restart 1 --clients 3 --duration 4 --seed 7 \
    --out target/bench_journal_smoke.json
echo "== journal smoke passed"
