#!/usr/bin/env bash
# Load-generator smoke: spawn a real tbaad, drive it with mixed traffic
# plus chaos clients for ~2s, and fail on any differential mismatch,
# daemon panic, unanswered request, or unclean daemon exit. This is the
# CI-sized version of the full `tbaa-loadgen` run; the gates are
# identical, only the duration and fleet are shrunk.
#
#   scripts/load_smoke.sh                       # smoke params, chaos on
#   scripts/load_smoke.sh --duration 10 ...     # extra args forwarded
set -euo pipefail
cd "$(dirname "$0")/.."

for BIN in tbaad tbaa-loadgen; do
    if [[ ! -x "target/release/$BIN" ]]; then
        echo "== building $BIN (release)"
        cargo build --release -p tbaa-server --bin tbaad
        cargo build --release -p tbaa-bench --bin tbaa-loadgen
        break
    fi
done

OUT=${LOAD_SMOKE_OUT:-target/bench_server_load_smoke.json}
target/release/tbaa-loadgen --smoke --out "$OUT" "$@"
