#!/usr/bin/env bash
# Alias-query throughput benchmark: compiled engine vs the naive walk on
# the largest benchsuite program, plus count_alias_pairs thread scaling.
# Writes BENCH_alias_query.json in the repo root.
#
#   scripts/bench_alias.sh            # full run (fails below 5x speedup)
#   scripts/bench_alias.sh --smoke    # quick correctness-only pass (CI)
#
# Extra arguments are forwarded to the bench-alias binary.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/bench-alias
if [[ ! -x "$BIN" ]]; then
    echo "== building bench-alias (release)"
    cargo build --release -p tbaa-bench --bin bench-alias
fi

"$BIN" "$@"
