#!/usr/bin/env bash
# Smoke-test the tbaad daemon end to end: start it on an ephemeral port,
# load a benchsuite program, run a batched alias query, shut down
# cleanly, and check the daemon exits 0 after draining.
set -euo pipefail
cd "$(dirname "$0")/.."

TBAAD=target/release/tbaad
if [[ ! -x "$TBAAD" ]]; then
    echo "== building tbaad (release)"
    cargo build --release -p tbaa-server --bin tbaad
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"; kill "$PID" 2>/dev/null || true' EXIT

"$TBAAD" --addr 127.0.0.1:0 > "$OUT" 2>/dev/null &
PID=$!

# Scrape the ephemeral port from the startup line.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^tbaad listening on //p' "$OUT")
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "tbaad did not start"; exit 1; }
PORT=${ADDR##*:}
echo "== tbaad up on port $PORT"

# Drive the protocol with a tiny python client: load, batched alias,
# stats, shutdown — asserting on every reply.
python3 - "$PORT" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port), timeout=30)
io = sock.makefile("rw", newline="\n")

def rpc(obj):
    io.write(json.dumps(obj) + "\n")
    io.flush()
    reply = json.loads(io.readline())
    return reply

load = rpc({"op": "load", "bench": "ktree", "scale": 1, "paths": True})
assert load["ok"], load
assert load["heap_refs"] > 0, load
paths = load["paths"]
assert len(paths) >= 2, paths

pairs = [[paths[0], paths[1]], [paths[0], paths[0]]]
alias = rpc({"op": "alias", "session": load["session"], "pairs": pairs})
assert alias["ok"], alias
assert len(alias["results"]) == 2, alias
assert alias["results"][1] is True, "identical paths must alias"

stats = rpc({"op": "stats"})
assert stats["ok"], stats
assert stats["stats"]["counters"]["sessions.compiles"] == 1, stats

down = rpc({"op": "shutdown"})
assert down["ok"] and down["draining"], down
print("smoke queries ok: %d paths, results %s" % (len(paths), alias["results"]))
EOF

# The daemon must drain and exit 0 on its own.
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
    echo "tbaad did not exit after shutdown"
    exit 1
fi
wait "$PID"
echo "== tbaad drained and exited cleanly"
