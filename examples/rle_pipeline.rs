//! The full optimization pipeline of Figure 11 on one benchmark:
//! method resolution (Minv) → inlining → RLE, with simulated cycle
//! counts at every stage.
//!
//! ```text
//! cargo run --release --example rle_pipeline [benchmark] [scale]
//! ```

use tbaa_repro::alias::Level;
use tbaa_repro::benchsuite::Benchmark;
use tbaa_repro::opt::OptOptions;
use tbaa_repro::sim::interp::RunConfig;
use tbaa_repro::sim::simulate;
use tbaa_repro::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("dformat");
    let scale: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let b = Benchmark::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("benchmark: {} ({}), scale {scale}", b.name, b.about);

    let base = b.compile(scale).map_err(|e| e.to_string())?;
    let (counts, cache, cycles) = simulate(&base, RunConfig::default())?;
    println!(
        "base:               {:>9.0} cycles  ({} instrs, {} heap loads, {:.1}% miss)",
        cycles,
        counts.instructions,
        counts.heap_loads,
        100.0 * cache.miss_ratio()
    );

    let configs: [(&str, OptOptions); 3] = [
        ("RLE only", OptOptions::builder().rle(true).build()),
        ("Minv+Inlining", OptOptions::builder().inline(true).build()),
        (
            "RLE+Minv+Inlining",
            OptOptions::builder().rle(true).inline(true).build(),
        ),
    ];
    let source = b.source_at_scale(scale);
    for (label, opts) in configs {
        let result = Pipeline::new(&source)
            .level(Level::SmFieldTypeRefs)
            .optimize(opts)
            .run()
            .map_err(|e| e.to_string())?;
        let report = result.report;
        let (_, _, cy) = simulate(&result.program, RunConfig::default())?;
        println!(
            "{label:<19} {cy:>9.0} cycles  ({:.1}% of base; rle removed {}, devirt {}, inlined {})",
            100.0 * cy / cycles,
            report.rle.removed(),
            report.devirt.resolved,
            report.inline.inlined,
        );
    }
    Ok(())
}
