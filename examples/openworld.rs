//! §4 — analyzing incomplete programs. Compares TypeRefsTable rows and
//! RLE effectiveness under the closed- and open-world assumptions, and
//! shows how BRANDED types resist open-world merging.
//!
//! ```text
//! cargo run --example openworld
//! ```

use tbaa_repro::alias::{Level, World};
use tbaa_repro::opt::OptOptions;
use tbaa_repro::Pipeline;

const SRC: &str = "
MODULE Open;
TYPE
  T  = OBJECT f: INTEGER; END;
  S1 = T OBJECT END;
  B  = BRANDED \"secret\" OBJECT g: INTEGER; END;
  BS = B OBJECT END;
VAR
  t: T; s: S1; b: B; bs: BS; x, y: INTEGER;
BEGIN
  t := NEW(T); s := NEW(S1); b := NEW(B); bs := NEW(BS);
  t.f := 1; s.f := 2; b.g := 3;
  x := t.f;
  s.f := 9;              (* kills t.f only if S1 may flow into T *)
  y := t.f;
  PRINTI(x + y);
END Open.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for world in [World::Closed, World::Open] {
        let result = Pipeline::new(SRC)
            .level(Level::SmFieldTypeRefs)
            .world(world)
            .optimize(OptOptions::builder().rle(true).build())
            .run()
            .map_err(|e| e.to_string())?;
        let (prog, analysis) = (&result.program, &result.analysis);
        let t = prog.types.by_name("T").unwrap();
        let s1 = prog.types.by_name("S1").unwrap();
        let b = prog.types.by_name("B").unwrap();
        let bs = prog.types.by_name("BS").unwrap();
        println!("{world:?} world:");
        println!(
            "  possible_types(T)  = {:?}",
            analysis
                .possible_types(t)
                .iter()
                .map(|ty| prog.types.display(ty))
                .collect::<Vec<_>>()
        );
        println!(
            "  T ~ S1 compatible: {}   (unavailable code could assign S1 into T)",
            analysis.type_compatible(t, s1)
        );
        println!(
            "  B ~ BS compatible: {}   (BRANDED: not reconstructible outside)",
            analysis.type_compatible(b, bs)
        );
        println!("  RLE removed {} loads\n", result.report.rle.removed());
    }
    println!(
        "The paper's finding (Figure 12): the open-world assumption costs \
         TBAA essentially nothing for RLE."
    );
    Ok(())
}
