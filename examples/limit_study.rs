//! The paper's §3.5 limit study on one benchmark: trace every load
//! (ATOM-style), measure dynamic redundancy before and after RLE, and
//! classify what remains into the five categories of Figure 10.
//!
//! ```text
//! cargo run --release --example limit_study [benchmark] [scale]
//! ```

use tbaa_repro::alias::{Level, World};
use tbaa_repro::benchsuite::Benchmark;
use tbaa_repro::opt::OptOptions;
use tbaa_repro::sim::interp::{run, RunConfig};
use tbaa_repro::sim::{classify_remaining, LimitResult, RedundancyTrace};
use tbaa_repro::Pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("pp");
    let scale: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let b = Benchmark::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("benchmark: {} ({}), scale {scale}\n", b.name, b.about);

    // Original program.
    let base = b.compile(scale).map_err(|e| e.to_string())?;
    let mut t_base = RedundancyTrace::new();
    run(&base, &mut t_base, RunConfig::default())?;

    // Optimized program, through the pipeline (its result also carries
    // the analysis handle `classify_remaining` needs below).
    let result = Pipeline::new(&b.source_at_scale(scale))
        .level(Level::SmFieldTypeRefs)
        .world(World::Closed)
        .optimize(OptOptions::builder().rle(true).build())
        .run()
        .map_err(|e| e.to_string())?;
    let mut opt = result.program;
    let analysis = result.analysis;
    let stats = result.report.rle;
    let mut t_opt = RedundancyTrace::new();
    run(&opt, &mut t_opt, RunConfig::default())?;

    let lim = LimitResult {
        original_heap_loads: t_base.heap_loads,
        redundant_original: t_base.redundant,
        optimized_heap_loads: t_opt.heap_loads,
        redundant_after: t_opt.redundant,
    };
    println!("Figure 9 bars for {}:", b.name);
    println!(
        "  redundant originally:        {:.3} ({} of {} heap loads)",
        lim.fraction_original(),
        lim.redundant_original,
        lim.original_heap_loads
    );
    println!(
        "  redundant after TBAA + RLE:  {:.3} ({} remain; RLE removed {} loads statically)",
        lim.fraction_after(),
        lim.redundant_after,
        stats.removed()
    );
    println!(
        "  optimizations eliminated {:.0}% of the redundancy\n",
        lim.removed_pct()
    );

    let breakdown = classify_remaining(&mut opt, &analysis, &t_opt);
    println!(
        "Figure 10 classification of the remaining {} redundant loads:",
        breakdown.total()
    );
    println!(
        "  encapsulated (dope vectors / dispatch): {}",
        breakdown.encapsulated
    );
    println!(
        "  conditional  (PRE would catch):         {}",
        breakdown.conditional
    );
    println!(
        "  breakup      (needs copy propagation):  {}",
        breakdown.breakup
    );
    println!(
        "  alias failure (TBAA imprecision):       {}",
        breakdown.alias_failure
    );
    println!(
        "  rest:                                   {}",
        breakdown.rest
    );
    Ok(())
}
