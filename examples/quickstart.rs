//! Quickstart: compile a MiniM3 program, ask the three alias analyses
//! the paper's motivating questions, run RLE, and execute before/after.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tbaa_repro::alias::{AliasAnalysis, Level, Tbaa, World};
use tbaa_repro::ir::{self, pretty};
use tbaa_repro::opt::OptOptions;
use tbaa_repro::sim::interp::{run, NullHook, RunConfig};
use tbaa_repro::Pipeline;

const SRC: &str = "
MODULE Quick;
TYPE
  T  = OBJECT f, g: T; END;
  S1 = T OBJECT END;
  S2 = T OBJECT END;
VAR
  t: T; s: S1; u: S2; sum: INTEGER; probe: T;
BEGIN
  t := NEW(T); s := NEW(S1); u := NEW(S2);
  t.f := s;
  s.f := u;
  u.g := t;
  sum := 0;
  FOR i := 1 TO 100 DO
    probe := t.f;          (* loop invariant: RLE hoists this load *)
    IF probe # NIL THEN sum := sum + 1 END;
  END;
  PRINT(\"sum=\"); PRINTI(sum);
END Quick.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = ir::compile_to_ir(SRC).map_err(|e| e.to_string())?;

    println!("== Heap reference expressions ==");
    for (f, ap, is_store) in prog.heap_ref_sites() {
        println!(
            "  {} {} (in {})",
            if is_store { "store" } else { "load " },
            pretty::access_path(&prog, ap),
            prog.func(f).name
        );
    }

    println!("\n== May-alias answers per analysis (Figure 1 questions) ==");
    let sites = prog.heap_ref_sites();
    let find = |name: &str| {
        sites
            .iter()
            .find(|s| pretty::access_path(&prog, s.1) == name)
            .map(|s| s.1)
            .expect("site exists")
    };
    let tf = find("t.f");
    let sf = find("s.f");
    let ug = find("u.g");
    for level in Level::ALL {
        let analysis = Tbaa::build(&prog, level, World::Closed);
        println!(
            "  {:<16} may_alias(t.f, s.f) = {:<5}  may_alias(s.f, u.g) = {}",
            level.name(),
            analysis.may_alias(&prog.aps, tf, sf),
            analysis.may_alias(&prog.aps, sf, ug)
        );
    }

    println!("\n== RLE before/after ==");
    let base_out = run(&prog, &mut NullHook, RunConfig::default())?;
    let result = Pipeline::new(SRC)
        .level(Level::SmFieldTypeRefs)
        .world(World::Closed)
        .optimize(OptOptions::builder().rle(true).build())
        .run()
        .map_err(|e| e.to_string())?;
    let stats = result.report.rle;
    let opt_out = run(&result.program, &mut NullHook, RunConfig::default())?;
    println!(
        "  output (must match): {:?} / {:?}",
        base_out.output, opt_out.output
    );
    assert_eq!(base_out.output, opt_out.output);
    println!(
        "  loads removed statically: {} (hoisted {}, CSE {})",
        stats.removed(),
        stats.hoisted,
        stats.eliminated
    );
    println!(
        "  dynamic heap loads: {} -> {}",
        base_out.counts.heap_loads, opt_out.counts.heap_loads
    );
    Ok(())
}
