//! A small dense bitset keyed by [`TypeId`], used for `Subtypes(T)` sets
//! and `TypeRefsTable` rows. The paper's complexity argument (§2.5) counts
//! "bit-vector steps"; these are those bit vectors.

use mini_m3::types::TypeId;

/// A fixed-universe bitset over type ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeSet {
    words: Vec<u64>,
}

impl TypeSet {
    /// An empty set sized for a universe of `n` types.
    pub fn new(n: usize) -> Self {
        TypeSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts a type. Returns whether it was newly inserted.
    pub fn insert(&mut self, t: TypeId) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Whether the set contains `t`.
    pub fn contains(&self, t: TypeId) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 as usize % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Whether the two sets share an element — the `Subtypes(p) ∩
    /// Subtypes(q) ≠ ∅` test at the heart of TypeDecl.
    pub fn intersects(&self, other: &TypeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &TypeSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &TypeSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| TypeId((wi * 64 + b) as u32))
        })
    }
}

impl FromIterator<TypeId> for TypeSet {
    fn from_iter<I: IntoIterator<Item = TypeId>>(iter: I) -> Self {
        let items: Vec<TypeId> = iter.into_iter().collect();
        let max = items.iter().map(|t| t.0 as usize + 1).max().unwrap_or(0);
        let mut s = TypeSet::new(max);
        for t in items {
            s.insert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains() {
        let mut s = TypeSet::new(130);
        assert!(s.insert(TypeId(0)));
        assert!(s.insert(TypeId(129)));
        assert!(!s.insert(TypeId(129)), "double insert reports false");
        assert!(s.contains(TypeId(0)));
        assert!(s.contains(TypeId(129)));
        assert!(!s.contains(TypeId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersects_and_union() {
        let mut a = TypeSet::new(100);
        let mut b = TypeSet::new(100);
        a.insert(TypeId(3));
        b.insert(TypeId(70));
        assert!(!a.intersects(&b));
        b.insert(TypeId(3));
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(TypeId(70)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn intersect_with_filters() {
        let mut a: TypeSet = [TypeId(1), TypeId(2), TypeId(3)].into_iter().collect();
        let b: TypeSet = [TypeId(2), TypeId(9)].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![TypeId(2)]);
    }

    #[test]
    fn iter_in_order() {
        let s: TypeSet = [TypeId(65), TypeId(2)].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![TypeId(2), TypeId(65)]);
    }

    #[test]
    fn empty_behaviour() {
        let s = TypeSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(TypeId(3)));
    }
}
