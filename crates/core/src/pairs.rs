//! Static alias-pair counting — the evaluation metric of Table 5.
//!
//! For each analysis the paper reports, per benchmark: the number of heap
//! memory references in the source, the number of *local* alias pairs
//! (pairs of references within the same procedure that may alias), and the
//! number of *global* alias pairs (pairs not necessarily within the same
//! procedure). Trivial self-pairs are excluded. Computing all pairs is
//! O(e²) in the number of memory expressions, as §2.5 notes — so the
//! enumeration tiles the upper-triangular pair space across a scoped
//! thread pool. Counts are pure sums of pure queries, so the result is
//! deterministic at any thread count.
//!
//! Two census paths produce the same counts:
//!
//! * [`count_alias_pairs`] — the scalar walk: one
//!   [`may_alias_uncached`](AliasAnalysis::may_alias_uncached) query per
//!   upper-triangular pair. Works against any analysis; kept as the
//!   lazy-regime fallback and the differential oracle.
//! * [`census_alias_pairs`] — the word-parallel kernel: when the
//!   [`CompiledAliasEngine`] is in the dense regime, the answers already
//!   sit in its bit matrix, so the census AND-masks each reference's
//!   matrix row against per-function and upper-triangular word masks and
//!   sums `count_ones()` — 64 pair verdicts per instruction (see
//!   [`CompiledAliasEngine::dense_census`]). Exact count equality with
//!   the scalar walk is enforced by `tests/census_differential.rs`.

use crate::analysis::AliasAnalysis;
use crate::compiled::CompiledAliasEngine;
use std::sync::atomic::{AtomicUsize, Ordering};
use tbaa_ir::ir::{HeapRefRows, Program};
use tbaa_ir::path::ApId;
use tbaa_ir::FuncId;

/// The counts reported in Table 5 for one (program, analysis) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AliasPairCounts {
    /// Distinct heap memory reference expressions in the program.
    pub references: usize,
    /// May-alias pairs of references within the same procedure.
    pub local_pairs: usize,
    /// May-alias pairs across the whole program (including local ones).
    pub global_pairs: usize,
}

impl AliasPairCounts {
    /// Average number of other intraprocedural references each reference
    /// may alias (the "3.4 references" style numbers in §3.3).
    pub fn avg_local_per_ref(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            2.0 * self.local_pairs as f64 / self.references as f64
        }
    }

    /// Average number of other interprocedural references each reference
    /// may alias.
    pub fn avg_global_per_ref(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            2.0 * self.global_pairs as f64 / self.references as f64
        }
    }
}

/// Counts alias pairs over all *distinct reference expressions*. Two
/// occurrences of the same access path in the same function count as one
/// reference, mirroring the paper's "references in the source". Uses
/// every available core; see [`count_alias_pairs_with_threads`].
pub fn count_alias_pairs(
    prog: &Program,
    analysis: &(dyn AliasAnalysis + Sync),
) -> AliasPairCounts {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    count_alias_pairs_with_threads(prog, analysis, threads)
}

/// [`count_alias_pairs`] with an explicit worker count. Workers claim
/// rows `i` of the upper-triangular pair space off a shared atomic
/// cursor and sum privately, so any `threads` value produces identical
/// counts. Queries go through
/// [`may_alias_uncached`](AliasAnalysis::may_alias_uncached) so a
/// memoizing engine is not serialized on its cache lock.
pub fn count_alias_pairs_with_threads(
    prog: &Program,
    analysis: &(dyn AliasAnalysis + Sync),
    threads: usize,
) -> AliasPairCounts {
    count_alias_pairs_rows(prog, &prog.heap_ref_rows(), analysis, threads)
}

/// The scalar pair walk over precomputed reference rows: one
/// [`may_alias_uncached`](AliasAnalysis::may_alias_uncached) query per
/// upper-triangular pair. This is the lazy-regime fallback of
/// [`census_alias_pairs`] and the differential oracle for
/// [`CompiledAliasEngine::dense_census`]; separating row collection
/// lets benchmarks time the two pair kernels on identical inputs.
pub fn count_alias_pairs_rows(
    prog: &Program,
    rows: &HeapRefRows,
    analysis: &(dyn AliasAnalysis + Sync),
    threads: usize,
) -> AliasPairCounts {
    let refs: Vec<(FuncId, ApId)> = rows.iter().collect();
    let n = refs.len();
    let count_row = |i: usize| -> (usize, usize) {
        let (fi, ai) = refs[i];
        let mut local = 0usize;
        let mut global = 0usize;
        for &(fj, aj) in &refs[i + 1..] {
            if analysis.may_alias_uncached(&prog.aps, ai, aj) {
                global += 1;
                if fi == fj {
                    local += 1;
                }
            }
        }
        (local, global)
    };
    // Host-core cap included: on a single-core host every `threads`
    // value degrades to the serial fold, so thread-spawn overhead never
    // shows up as a scaling "slowdown" (the pairs.scaling fix).
    let workers = tbaa_ir::effective_workers(threads, n);
    let (local, global) = if workers <= 1 {
        (0..n).map(count_row).fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut sums = (0usize, 0usize);
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (l, g) = count_row(i);
                            sums.0 += l;
                            sums.1 += g;
                        }
                        sums
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pair worker panicked"))
                .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
        })
    };
    AliasPairCounts {
        references: n,
        local_pairs: local,
        global_pairs: global,
    }
}

/// How a [`census_alias_pairs`] call was answered, for metrics: exactly
/// one of `dense_rows` / `fallback_pairs` is non-zero (unless the
/// program has no references at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CensusReport {
    /// The counts (identical on either path).
    pub counts: AliasPairCounts,
    /// Matrix rows popcounted by the word-parallel kernel (0 when the
    /// scalar fallback ran).
    pub dense_rows: u64,
    /// Upper-triangular pair probes walked by the scalar fallback (0
    /// when the dense kernel ran).
    pub fallback_pairs: u64,
}

/// [`count_alias_pairs`] routed through the word-parallel kernel: uses
/// [`CompiledAliasEngine::dense_census`] when the engine is in the
/// dense regime, and falls back to the scalar walk (lazy regime, or
/// references interned after the engine compiled). Counts are exactly
/// equal on both paths. Uses every available core.
pub fn census_alias_pairs(prog: &Program, engine: &CompiledAliasEngine) -> CensusReport {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    census_alias_pairs_with_threads(prog, engine, threads)
}

/// [`census_alias_pairs`] with an explicit worker count; any value
/// produces identical counts.
pub fn census_alias_pairs_with_threads(
    prog: &Program,
    engine: &CompiledAliasEngine,
    threads: usize,
) -> CensusReport {
    let rows = prog.heap_ref_rows();
    if let Some(counts) = engine.dense_census(&rows, threads) {
        return CensusReport {
            counts,
            dense_rows: rows.references() as u64,
            fallback_pairs: 0,
        };
    }
    let counts = count_alias_pairs_rows(prog, &rows, engine, threads);
    let n = rows.references() as u64;
    CensusReport {
        counts,
        dense_rows: 0,
        fallback_pairs: n * n.saturating_sub(1) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Level, Tbaa};
    use crate::merge::World;
    use tbaa_ir::compile_to_ir;

    #[test]
    fn single_core_worker_count_short_circuits_spawn() {
        // The pair and census kernels derive their worker count from
        // `effective_workers`; on a 1-core host every requested thread
        // count collapses to 1, taking the spawn-free serial arm.
        for requested in [1, 2, 8, 64] {
            assert_eq!(tbaa_ir::effective_workers_for(requested, 1000, 1), 1);
        }
    }

    fn prog() -> Program {
        compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             PROCEDURE UseF (t: T): INTEGER = BEGIN RETURN t.f END UseF;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;
               t.g := 2;
               x := UseF(t);
             END M.",
        )
        .unwrap()
    }

    #[test]
    fn counts_references_and_pairs() {
        let p = prog();
        let td = Tbaa::build(&p, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&p, Level::FieldTypeDecl, World::Closed);
        let c_td = count_alias_pairs(&p, &td);
        let c_ftd = count_alias_pairs(&p, &ftd);
        // Three reference expressions: t.f (store, main), t.g (store, main),
        // t.f (load, UseF).
        assert_eq!(c_td.references, 3);
        // TypeDecl: all three are INTEGER-typed — all pairs alias.
        assert_eq!(c_td.global_pairs, 3);
        assert_eq!(c_td.local_pairs, 1);
        // FieldTypeDecl separates .f from .g.
        assert_eq!(c_ftd.global_pairs, 1, "only t.f(main) vs t.f(UseF)");
        assert_eq!(c_ftd.local_pairs, 0);
    }

    #[test]
    fn precision_ordering_matches_table_5() {
        let p = prog();
        let mut last = usize::MAX;
        for level in Level::ALL {
            let a = Tbaa::build(&p, level, World::Closed);
            let c = count_alias_pairs(&p, &a);
            assert!(
                c.global_pairs <= last,
                "{level} should not be less precise than its predecessor"
            );
            last = c.global_pairs;
        }
    }

    #[test]
    fn thread_count_does_not_change_counts() {
        let p = prog();
        let ftd = Tbaa::build(&p, Level::FieldTypeDecl, World::Closed);
        let serial = count_alias_pairs_with_threads(&p, &ftd, 1);
        for t in [2, 3, 8, 64] {
            assert_eq!(count_alias_pairs_with_threads(&p, &ftd, t), serial);
        }
    }

    #[test]
    fn census_matches_scalar_walk() {
        let p = prog();
        for level in Level::ALL {
            for world in [World::Closed, World::Open] {
                let tbaa = std::sync::Arc::new(Tbaa::build(&p, level, world));
                let engine = crate::compiled::CompiledAliasEngine::compile(&p, tbaa.clone());
                let oracle = count_alias_pairs_with_threads(&p, tbaa.as_ref(), 1);
                for t in [1, 2, 8] {
                    let report = census_alias_pairs_with_threads(&p, &engine, t);
                    assert_eq!(report.counts, oracle, "{level} {world:?} threads={t}");
                    assert_eq!(report.dense_rows, oracle.references as u64);
                    assert_eq!(report.fallback_pairs, 0);
                }
            }
        }
    }

    #[test]
    fn census_counts_multiplicity_across_three_functions() {
        // The same global path `t.f` is referenced from three separate
        // procedures plus the module body: the (f,a)×(g,a) cross pairs
        // number C(4,2) = 6, which a suffix *union* (one bit per path,
        // no multiplicity) would undercount. This pins the bit-sliced
        // suffix counts.
        let p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T;
             PROCEDURE A (): INTEGER = BEGIN RETURN t.f END A;
             PROCEDURE B (): INTEGER = BEGIN RETURN t.f END B;
             PROCEDURE C (): INTEGER = BEGIN RETURN t.f END C;
             VAR x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;
               x := A() + B() + C();
             END M.",
        )
        .unwrap();
        for level in Level::ALL {
            let tbaa = std::sync::Arc::new(Tbaa::build(&p, level, World::Closed));
            let engine = crate::compiled::CompiledAliasEngine::compile(&p, tbaa.clone());
            let oracle = count_alias_pairs_with_threads(&p, tbaa.as_ref(), 1);
            let report = census_alias_pairs_with_threads(&p, &engine, 1);
            assert_eq!(report.counts, oracle, "{level}");
            assert!(
                oracle.global_pairs >= 6,
                "expected at least the six t.f cross pairs, got {oracle:?}"
            );
        }
    }

    #[test]
    fn census_falls_back_in_lazy_regime() {
        let p = prog();
        let tbaa = std::sync::Arc::new(Tbaa::build(&p, Level::TypeDecl, World::Closed));
        let engine = crate::compiled::CompiledAliasEngine::compile_with_dense_limit(&p, tbaa, 0);
        let report = census_alias_pairs_with_threads(&p, &engine, 2);
        let oracle = count_alias_pairs(&p, &Tbaa::build(&p, Level::TypeDecl, World::Closed));
        assert_eq!(report.counts, oracle);
        assert_eq!(report.dense_rows, 0);
        let n = oracle.references as u64;
        assert_eq!(report.fallback_pairs, n * (n - 1) / 2);
    }

    #[test]
    fn averages() {
        let c = AliasPairCounts {
            references: 4,
            local_pairs: 2,
            global_pairs: 6,
        };
        assert!((c.avg_local_per_ref() - 1.0).abs() < 1e-9);
        assert!((c.avg_global_per_ref() - 3.0).abs() < 1e-9);
        let z = AliasPairCounts::default();
        assert_eq!(z.avg_local_per_ref(), 0.0);
    }
}
