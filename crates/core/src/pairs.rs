//! Static alias-pair counting — the evaluation metric of Table 5.
//!
//! For each analysis the paper reports, per benchmark: the number of heap
//! memory references in the source, the number of *local* alias pairs
//! (pairs of references within the same procedure that may alias), and the
//! number of *global* alias pairs (pairs not necessarily within the same
//! procedure). Trivial self-pairs are excluded. Computing all pairs is
//! O(e²) in the number of memory expressions, as §2.5 notes.

use crate::analysis::AliasAnalysis;
use tbaa_ir::ir::Program;
use tbaa_ir::path::ApId;
use tbaa_ir::FuncId;

/// The counts reported in Table 5 for one (program, analysis) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AliasPairCounts {
    /// Distinct heap memory reference expressions in the program.
    pub references: usize,
    /// May-alias pairs of references within the same procedure.
    pub local_pairs: usize,
    /// May-alias pairs across the whole program (including local ones).
    pub global_pairs: usize,
}

impl AliasPairCounts {
    /// Average number of other intraprocedural references each reference
    /// may alias (the "3.4 references" style numbers in §3.3).
    pub fn avg_local_per_ref(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            2.0 * self.local_pairs as f64 / self.references as f64
        }
    }

    /// Average number of other interprocedural references each reference
    /// may alias.
    pub fn avg_global_per_ref(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            2.0 * self.global_pairs as f64 / self.references as f64
        }
    }
}

/// Counts alias pairs over all *distinct reference expressions*. Two
/// occurrences of the same access path in the same function count as one
/// reference, mirroring the paper's "references in the source".
pub fn count_alias_pairs(prog: &Program, analysis: &dyn AliasAnalysis) -> AliasPairCounts {
    // Distinct (function, ap) reference expressions.
    let mut refs: Vec<(FuncId, ApId)> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for (f, ap, _is_store) in prog.heap_ref_sites() {
            if seen.insert((f, ap)) {
                refs.push((f, ap));
            }
        }
    }
    let mut local = 0usize;
    let mut global = 0usize;
    for i in 0..refs.len() {
        for j in (i + 1)..refs.len() {
            let (fi, ai) = refs[i];
            let (fj, aj) = refs[j];
            if analysis.may_alias(&prog.aps, ai, aj) {
                global += 1;
                if fi == fj {
                    local += 1;
                }
            }
        }
    }
    AliasPairCounts {
        references: refs.len(),
        local_pairs: local,
        global_pairs: global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Level, Tbaa};
    use crate::merge::World;
    use tbaa_ir::compile_to_ir;

    fn prog() -> Program {
        compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             PROCEDURE UseF (t: T): INTEGER = BEGIN RETURN t.f END UseF;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;
               t.g := 2;
               x := UseF(t);
             END M.",
        )
        .unwrap()
    }

    #[test]
    fn counts_references_and_pairs() {
        let p = prog();
        let td = Tbaa::build(&p, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&p, Level::FieldTypeDecl, World::Closed);
        let c_td = count_alias_pairs(&p, &td);
        let c_ftd = count_alias_pairs(&p, &ftd);
        // Three reference expressions: t.f (store, main), t.g (store, main),
        // t.f (load, UseF).
        assert_eq!(c_td.references, 3);
        // TypeDecl: all three are INTEGER-typed — all pairs alias.
        assert_eq!(c_td.global_pairs, 3);
        assert_eq!(c_td.local_pairs, 1);
        // FieldTypeDecl separates .f from .g.
        assert_eq!(c_ftd.global_pairs, 1, "only t.f(main) vs t.f(UseF)");
        assert_eq!(c_ftd.local_pairs, 0);
    }

    #[test]
    fn precision_ordering_matches_table_5() {
        let p = prog();
        let mut last = usize::MAX;
        for level in Level::ALL {
            let a = Tbaa::build(&p, level, World::Closed);
            let c = count_alias_pairs(&p, &a);
            assert!(
                c.global_pairs <= last,
                "{level} should not be less precise than its predecessor"
            );
            last = c.global_pairs;
        }
    }

    #[test]
    fn averages() {
        let c = AliasPairCounts {
            references: 4,
            local_pairs: 2,
            global_pairs: 6,
        };
        assert!((c.avg_local_per_ref() - 1.0).abs() < 1e-9);
        assert!((c.avg_global_per_ref() - 3.0).abs() < 1e-9);
        let z = AliasPairCounts::default();
        assert_eq!(z.avg_local_per_ref(), 0.0);
    }
}
