//! Precomputed `AddressTaken` bitsets, keyed by interned field symbols.
//!
//! The naive probes in `analysis.rs` answered `AddressTaken(p.f)` by
//! scanning every recorded `(type, field)` pair and running a subtype
//! intersection per entry — O(taken · bit-vector step) on *every* case-3
//! query. [`FieldTakenSets`] moves that work to `Tbaa::build` time: for
//! each taken `(t, f)` it unions `{B : Subtypes(t) ∩ Subtypes(B) ≠ ∅}`
//! into a per-symbol [`TypeSet`] row, so the query collapses to one
//! bitset `contains` probe. Taken array elements and the open world's
//! VAR-formal clause (§4) get the same treatment.
//!
//! Build cost is O(taken · types) bit-vector steps, which stays inside
//! the paper's §2.5 O(instructions · types) bound since every taken
//! fact originates at an instruction.

use crate::bitset::TypeSet;
use crate::merge::World;
use crate::subtypes::SubtypeSets;
use mini_m3::types::TypeId;
use tbaa_ir::ir::Program;
use tbaa_ir::symbols::Symbol;

/// Build-time index answering the paper's `AddressTaken` predicate with
/// single bitset probes.
#[derive(Debug, Clone)]
pub struct FieldTakenSets {
    /// Row `s`: base types `B` such that some taken `(t, s)` has
    /// `Subtypes(t) ∩ Subtypes(B) ≠ ∅`. Indexed by `Symbol`.
    per_symbol: Vec<TypeSet>,
    /// Array types `A` such that some taken element type `t` has
    /// `Subtypes(t) ∩ Subtypes(A) ≠ ∅`.
    taken_elems: TypeSet,
    /// Types of VAR formals (open-world clause 2); empty when closed.
    var_formals: TypeSet,
    open_world: bool,
}

impl FieldTakenSets {
    /// Expands the program's recorded taken facts against the subtype
    /// closure.
    pub fn build(prog: &Program, subtypes: &SubtypeSets, world: World) -> Self {
        let n = prog.types.len();
        let mut per_symbol = vec![TypeSet::new(n); prog.symbols.len()];
        for &(t, sym) in &prog.address_taken.fields {
            let row = &mut per_symbol[sym.0 as usize];
            for b in (0..n as u32).map(TypeId) {
                if subtypes.compatible(t, b) {
                    row.insert(b);
                }
            }
        }
        let mut taken_elems = TypeSet::new(n);
        for &t in &prog.address_taken.elements {
            for b in (0..n as u32).map(TypeId) {
                if subtypes.compatible(t, b) {
                    taken_elems.insert(b);
                }
            }
        }
        let mut var_formals = TypeSet::new(n);
        if world == World::Open {
            for f in &prog.funcs {
                for (i, mode) in f.param_modes.iter().enumerate() {
                    if *mode == mini_m3::types::ParamMode::Var {
                        var_formals.insert(f.vars[i].ty);
                    }
                }
            }
        }
        FieldTakenSets {
            per_symbol,
            taken_elems,
            var_formals,
            open_world: world == World::Open,
        }
    }

    /// `AddressTaken(p.f)`: the program takes the address of field `f` on
    /// a type-compatible base, or (open world) unavailable code could
    /// because the field's type matches a VAR formal.
    pub fn field_taken(&self, field: Symbol, base_ty: TypeId, field_ty: TypeId) -> bool {
        if self.open_world && self.var_formals.contains(field_ty) {
            return true;
        }
        self.per_symbol
            .get(field.0 as usize)
            .is_some_and(|row| row.contains(base_ty))
    }

    /// `AddressTaken(q[i])` for an element of array type `arr_ty`.
    pub fn element_taken(&self, arr_ty: TypeId, elem_ty: TypeId) -> bool {
        if self.open_world && self.var_formals.contains(elem_ty) {
            return true;
        }
        self.taken_elems.contains(arr_ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtypes::SubtypeSets;
    use tbaa_ir::compile_to_ir;

    fn taken_prog() -> Program {
        compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END; S = T OBJECT END;
             PROCEDURE Touch (VAR v: INTEGER) = BEGIN v := v + 1 END Touch;
             VAR t: T; s: S; x: INTEGER;
             BEGIN t := NEW(T); s := NEW(S); Touch(t.f); x := t.g; END M.",
        )
        .unwrap()
    }

    #[test]
    fn field_probe_matches_subtype_scan() {
        let prog = taken_prog();
        let subs = SubtypeSets::new(&prog.types);
        let sets = FieldTakenSets::build(&prog, &subs, World::Closed);
        let tt = prog.types.by_name("T").unwrap();
        let st = prog.types.by_name("S").unwrap();
        let int = prog.types.integer();
        let f = prog.symbols.lookup("f").unwrap();
        let g = prog.symbols.lookup("g").unwrap();
        // f is taken on T; S is subtype-compatible with T, INTEGER is not.
        assert!(sets.field_taken(f, tt, int));
        assert!(sets.field_taken(f, st, int));
        assert!(!sets.field_taken(f, int, int));
        // g is never taken.
        assert!(!sets.field_taken(g, tt, int));
    }

    #[test]
    fn open_world_var_formal_clause() {
        let prog = taken_prog();
        let subs = SubtypeSets::new(&prog.types);
        let open = FieldTakenSets::build(&prog, &subs, World::Open);
        let int = prog.types.integer();
        let tt = prog.types.by_name("T").unwrap();
        let g = prog.symbols.lookup("g").unwrap();
        // Touch's VAR formal is INTEGER, so any INTEGER field counts as
        // potentially taken in the open world.
        assert!(open.field_taken(g, tt, int));
        assert!(open.element_taken(tt, int));
    }
}
