//! An instruction-based Steensgaard points-to analysis — the related-work
//! baseline of §5.
//!
//! The paper's SMTypeRefs is "similar to Steensgaard's algorithm \[32\]",
//! but works over *programming-language types* and prunes merges with the
//! inheritance relation. This module implements the original flavour for
//! comparison: a flow-insensitive, context-insensitive, field-insensitive
//! unification analysis over the IR itself. Every variable, register,
//! and allocation site gets a node; assignments unify pointees; an access
//! path's location is found by following the points-to edge once per
//! path step; two paths may alias iff their locations unify to the same
//! representative.
//!
//! Because it ignores declared types *and* field names, Steensgaard is
//! incomparable with TBAA in general: it separates structurally disjoint
//! data (which TypeDecl cannot) but conflates all fields of an object
//! (which FieldTypeDecl distinguishes). The benches put numbers on that
//! trade-off.

use crate::analysis::AliasAnalysis;
use std::collections::HashMap;
use tbaa_ir::ir::{Instr, Operand, Program, SlotBase, Terminator};
use tbaa_ir::path::{ApId, ApRoot, ApTable, FuncId};

/// Node identifiers in the points-to graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Reg(u32, u32),
    Var(u32, u32),
    Global(u32),
    Ret(u32),
}

#[derive(Debug, Clone, Default)]
struct Graph {
    parent: Vec<u32>,
    pts: Vec<Option<u32>>,
    keys: HashMap<Key, u32>,
}

impl Graph {
    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.pts.push(None);
        id
    }

    fn node(&mut self, k: Key) -> u32 {
        if let Some(&n) = self.keys.get(&k) {
            return n;
        }
        let n = self.fresh();
        self.keys.insert(k, n);
        n
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Recursive unification: joining two nodes joins their pointees.
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent[rb as usize] = ra;
        let (pa, pb) = (self.pts[ra as usize], self.pts[rb as usize]);
        match (pa, pb) {
            (Some(x), Some(y)) => self.union(x, y),
            (None, Some(y)) => self.pts[ra as usize] = Some(y),
            _ => {}
        }
    }

    /// The pointee of `x`, created on demand.
    fn deref(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        if let Some(p) = self.pts[r as usize] {
            return self.find(p);
        }
        let p = self.fresh();
        // Re-find: fresh() cannot have changed r, but stay disciplined.
        let r = self.find(x);
        self.pts[r as usize] = Some(p);
        p
    }

    /// The pointee of `x` if it exists (query-time, no creation).
    fn deref_opt(&mut self, x: u32) -> Option<u32> {
        let r = self.find(x);
        self.pts[r as usize].map(|p| self.find(p))
    }
}

/// The built analysis. The union-find graph path-compresses on query,
/// so it sits behind a mutex; concurrent callers (e.g. parallel pair
/// counting) serialize on it, which is acceptable for a baseline.
#[derive(Debug)]
pub struct Steensgaard {
    graph: std::sync::Mutex<Graph>,
}

impl Clone for Steensgaard {
    fn clone(&self) -> Self {
        Steensgaard {
            graph: std::sync::Mutex::new(self.graph.lock().expect("graph lock").clone()),
        }
    }
}

impl Steensgaard {
    /// Runs the unification over the whole program.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbaa::{AliasAnalysis, Steensgaard};
    ///
    /// let prog = tbaa_ir::compile_to_ir(
    ///     "MODULE M;
    ///      TYPE T = OBJECT f: INTEGER; END;
    ///      VAR a, b: T; x: INTEGER;
    ///      BEGIN a := NEW(T); b := NEW(T); a.f := 1; x := b.f; END M.")?;
    /// let analysis = Steensgaard::build(&prog);
    /// let sites = prog.heap_ref_sites();
    /// // The two allocations never mix, so a.f and b.f cannot alias.
    /// assert!(!analysis.may_alias(&prog.aps, sites[0].1, sites[1].1));
    /// # Ok::<(), mini_m3::Diagnostics>(())
    /// ```
    pub fn build(prog: &Program) -> Self {
        let mut g = Graph::default();
        for (fi, func) in prog.funcs.iter().enumerate() {
            let fid = fi as u32;
            for block in &func.blocks {
                for instr in &block.instrs {
                    build_instr(prog, &mut g, fid, instr);
                }
                if let Terminator::Return(Some(op)) = &block.term {
                    if let Some(v) = value_node(&mut g, fid, op) {
                        let ret = g.node(Key::Ret(fid));
                        g.union(ret, v);
                    }
                }
            }
        }
        Steensgaard {
            graph: std::sync::Mutex::new(g),
        }
    }

    /// The abstract location an access path denotes, if it ever
    /// materialized during the unification.
    fn location(&self, aps: &ApTable, ap: ApId) -> Option<u32> {
        let path = aps.path(ap);
        let mut g = self.graph.lock().expect("graph lock");
        let mut node = match path.root {
            ApRoot::Local { func, var } => {
                let k = Key::Var(func.0, var.0);
                *g.keys.get(&k)?
            }
            ApRoot::Global(gl) => *g.keys.get(&Key::Global(gl.0))?,
            ApRoot::Temp(_) => return None,
        };
        for _step in &path.steps {
            node = g.deref_opt(node)?;
        }
        Some(g.find(node))
    }
}

fn value_node(g: &mut Graph, fid: u32, op: &Operand) -> Option<u32> {
    match op {
        Operand::Reg(r) => Some(g.node(Key::Reg(fid, r.0))),
        _ => None,
    }
}

fn slot_node(g: &mut Graph, fid: u32, base: SlotBase) -> u32 {
    match base {
        SlotBase::Local(v) => g.node(Key::Var(fid, v.0)),
        SlotBase::Global(gl) => g.node(Key::Global(gl.0)),
    }
}

fn build_instr(prog: &Program, g: &mut Graph, fid: u32, instr: &Instr) {
    match instr {
        Instr::Copy { dst, src } | Instr::NarrowTo { dst, src, .. } => {
            if let Some(s) = value_node(g, fid, src) {
                let d = g.node(Key::Reg(fid, dst.0));
                g.union(d, s);
            }
        }
        Instr::LoadSlot { dst, addr } => {
            let v = slot_node(g, fid, addr.base);
            let d = g.node(Key::Reg(fid, dst.0));
            g.union(d, v);
        }
        Instr::StoreSlot { addr, src } => {
            if let Some(s) = value_node(g, fid, src) {
                let v = slot_node(g, fid, addr.base);
                g.union(v, s);
            }
        }
        Instr::LoadMem { dst, addr, .. } => {
            if let Some(b) = value_node(g, fid, &addr.base) {
                let h = g.deref(b);
                let d = g.node(Key::Reg(fid, dst.0));
                g.union(d, h);
            }
        }
        Instr::StoreMem { addr, src, .. } => {
            if let Some(b) = value_node(g, fid, &addr.base) {
                let h = g.deref(b);
                if let Some(s) = value_node(g, fid, src) {
                    g.union(h, s);
                }
            }
        }
        Instr::LoadInd { dst, loc } => {
            if let Some(l) = value_node(g, fid, loc) {
                let h = g.deref(l);
                let d = g.node(Key::Reg(fid, dst.0));
                g.union(d, h);
            }
        }
        Instr::StoreInd { loc, src } => {
            if let Some(l) = value_node(g, fid, loc) {
                let h = g.deref(l);
                if let Some(s) = value_node(g, fid, src) {
                    g.union(h, s);
                }
            }
        }
        Instr::TakeAddrSlot { dst, addr } => {
            let v = slot_node(g, fid, addr.base);
            let d = g.node(Key::Reg(fid, dst.0));
            let p = g.deref(d);
            g.union(p, v);
        }
        Instr::TakeAddrMem { dst, addr, .. } => {
            if let Some(b) = value_node(g, fid, &addr.base) {
                let h = g.deref(b);
                let d = g.node(Key::Reg(fid, dst.0));
                let p = g.deref(d);
                g.union(p, h);
            }
        }
        Instr::New { dst, .. } | Instr::NewArray { dst, .. } => {
            // dst points at a fresh allocation blob.
            let d = g.node(Key::Reg(fid, dst.0));
            let _ = g.deref(d);
        }
        Instr::Call {
            dst, func, args, ..
        } => {
            bind_call(g, fid, *func, args, dst);
        }
        Instr::CallMethod {
            dst,
            method,
            recv_ty,
            args,
            ..
        } => {
            for target in crate_method_targets(prog, *recv_ty, method) {
                bind_call(g, fid, target, args, dst);
            }
        }
        _ => {}
    }
}

fn bind_call(
    g: &mut Graph,
    fid: u32,
    callee: FuncId,
    args: &[Operand],
    dst: &Option<tbaa_ir::ir::Reg>,
) {
    for (i, a) in args.iter().enumerate() {
        if let Some(an) = value_node(g, fid, a) {
            let param = g.node(Key::Var(callee.0, i as u32));
            g.union(param, an);
        }
    }
    if let Some(d) = dst {
        let ret = g.node(Key::Ret(callee.0));
        let dn = g.node(Key::Reg(fid, d.0));
        g.union(dn, ret);
    }
}

fn crate_method_targets(
    prog: &Program,
    recv_ty: mini_m3::types::TypeId,
    method: &str,
) -> Vec<FuncId> {
    let mut out = Vec::new();
    for t in prog.types.subtypes(recv_ty) {
        if let Some(&f) = prog.method_impls.get(&(t, method.to_string())) {
            if !out.contains(&f) {
                out.push(f);
            }
        }
    }
    out
}

impl AliasAnalysis for Steensgaard {
    fn name(&self) -> &str {
        "Steensgaard"
    }

    fn may_alias(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        // Temp-rooted or never-materialized paths are handled
        // conservatively.
        match (self.location(aps, a), self.location(aps, b)) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;

    fn find_ap(prog: &Program, rendered: &str) -> ApId {
        prog.aps
            .iter()
            .find(|(id, _)| tbaa_ir::pretty::access_path(prog, *id) == rendered)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no path {rendered}"))
    }

    #[test]
    fn disjoint_structures_are_separated() {
        // Two lists that never mix: Steensgaard separates them even
        // though they have the same type (something TypeDecl cannot do).
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             VAR a, b: T; x: INTEGER;
             BEGIN
               a := NEW(T); b := NEW(T);
               a.f := 1; b.f := 2;
               x := a.f + b.f;
             END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let af = find_ap(&prog, "a.f");
        let bf = find_ap(&prog, "b.f");
        assert!(!st.may_alias(&prog.aps, af, bf), "disjoint allocations");
        assert!(st.may_alias(&prog.aps, af, af));
    }

    #[test]
    fn assignment_merges_structures() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             VAR a, b: T; x: INTEGER;
             BEGIN
               a := NEW(T); b := NEW(T);
               b := a;               (* now they may be the same object *)
               a.f := 1;
               x := b.f;
             END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let af = find_ap(&prog, "a.f");
        let bf = find_ap(&prog, "b.f");
        assert!(st.may_alias(&prog.aps, af, bf));
    }

    #[test]
    fn field_insensitivity_conflates_fields() {
        // The price of field insensitivity: t.f and t.g alias under
        // Steensgaard but not under FieldTypeDecl.
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1; t.g := 2;
               x := t.f + t.g;
             END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let tf = find_ap(&prog, "t.f");
        let tg = find_ap(&prog, "t.g");
        assert!(st.may_alias(&prog.aps, tf, tg), "field-insensitive");
        let ftd = crate::analysis::Tbaa::build(
            &prog,
            crate::analysis::Level::FieldTypeDecl,
            crate::merge::World::Closed,
        );
        assert!(!ftd.may_alias(&prog.aps, tf, tg), "TBAA distinguishes");
    }

    #[test]
    fn interprocedural_flow_is_tracked() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             PROCEDURE Id (t: T): T = BEGIN RETURN t END Id;
             VAR a, b, c: T; x: INTEGER;
             BEGIN
               a := NEW(T); c := NEW(T);
               b := Id(a);          (* b may be a, never c *)
               b.f := 1;
               x := a.f + c.f;
             END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let bf = find_ap(&prog, "b.f");
        let af = find_ap(&prog, "a.f");
        let cf = find_ap(&prog, "c.f");
        assert!(st.may_alias(&prog.aps, bf, af));
        assert!(!st.may_alias(&prog.aps, bf, cf));
    }

    #[test]
    fn var_params_are_conservative() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Set (VAR v: INTEGER) = BEGIN v := 3 END Set;
             VAR t, u: T; x: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               Set(t.f);
               x := t.f + u.f;
             END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let tf = find_ap(&prog, "t.f");
        assert!(st.may_alias(&prog.aps, tf, tf));
    }

    #[test]
    fn temp_rooted_paths_are_conservative() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Get (): T = BEGIN RETURN NEW(T) END Get;
             VAR x: INTEGER;
             BEGIN x := Get().f; END M.",
        )
        .unwrap();
        let st = Steensgaard::build(&prog);
        let temp = prog
            .aps
            .iter()
            .find(|(_, p)| matches!(p.root, ApRoot::Temp(_)))
            .map(|(id, _)| id)
            .expect("temp path");
        // Unknown locations answer `true` (sound for RLE kills).
        assert!(st.may_alias(&prog.aps, temp, temp));
    }
}
