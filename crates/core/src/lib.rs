//! # tbaa — Type-Based Alias Analysis
//!
//! A faithful implementation of the three alias analyses of
//! *Type-Based Alias Analysis* (Amer Diwan, Kathryn S. McKinley,
//! J. Eliot B. Moss — PLDI 1998):
//!
//! 1. **TypeDecl** (§2.2): access paths `p` and `q` may alias iff
//!    `Subtypes(Type(p)) ∩ Subtypes(Type(q)) ≠ ∅`.
//! 2. **FieldTypeDecl** (§2.3): the seven-case refinement of Table 2 using
//!    field names, the shape of the access (qualify / dereference /
//!    subscript), and the `AddressTaken` predicate.
//! 3. **SMFieldTypeRefs** (§2.4): FieldTypeDecl with *selective type
//!    merging* — a flow-insensitive, Steensgaard-flavoured union of type
//!    groups at every explicit or implicit pointer assignment, filtered by
//!    the subtype relation into the `TypeRefsTable`.
//!
//! The §4 *open-world* variants (for incomplete programs) are selected
//! with [`merge::World::Open`]: `AddressTaken` additionally holds for
//! every VAR formal of identical type, and unbranded subtype-related types
//! are conservatively merged because unavailable type-safe code could
//! reconstruct structural types and assign them.
//!
//! The crate consumes lowered programs from [`tbaa_ir`] and exposes:
//!
//! * [`analysis::Tbaa`] — build once per program, then query
//!   [`analysis::AliasAnalysis::may_alias`];
//! * [`pairs::count_alias_pairs`] — the static metric of the paper's
//!   Table 5;
//! * the [`analysis::NoAlias`] / [`analysis::AlwaysAlias`] oracles used by
//!   the upper-bound study and baselines.
//!
//! ## Example
//!
//! ```
//! use tbaa::analysis::{AliasAnalysis, Level, Tbaa};
//! use tbaa::merge::World;
//!
//! let prog = tbaa_ir::compile_to_ir(
//!     "MODULE M;
//!      TYPE T = OBJECT f, g: INTEGER; END;
//!      VAR t: T; x: INTEGER;
//!      BEGIN t := NEW(T); t.f := 1; x := t.g; END M.")?;
//! let analysis = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
//! let sites = prog.heap_ref_sites();
//! // The store of t.f cannot alias the load of t.g.
//! assert!(!analysis.may_alias(&prog.aps, sites[0].1, sites[1].1));
//! # Ok::<(), mini_m3::Diagnostics>(())
//! ```

pub mod analysis;
pub mod bitset;
pub mod compiled;
pub mod memo;
pub mod merge;
pub mod pairs;
pub mod steensgaard;
pub mod subtypes;
pub mod taken;

pub use analysis::{AliasAnalysis, AlwaysAlias, Level, NoAlias, Tbaa};
pub use compiled::{CompiledAliasEngine, CompiledStats, DENSE_LIMIT};
pub use memo::Memo;
pub use merge::World;
pub use pairs::{
    census_alias_pairs, census_alias_pairs_with_threads, count_alias_pairs,
    count_alias_pairs_rows, count_alias_pairs_with_threads, AliasPairCounts, CensusReport,
};
pub use steensgaard::Steensgaard;
pub use taken::FieldTakenSets;
