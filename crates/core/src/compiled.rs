//! The compiled alias-query engine.
//!
//! [`Tbaa::may_alias_paths`] re-walks both `AccessPath`s on every query:
//! it re-derives `Type(p)` from the last step, compares steps
//! structurally, and recurses through freshly materialized parents. The
//! paper's own pitch (§2.5) is that TBAA is cheap because everything
//! hard happens once per program — this module finishes the job for the
//! query side.
//!
//! At build time [`CompiledAliasEngine::compile`] hash-conses every
//! interned access path *and every prefix of it* into a node DAG:
//!
//! * node identity ⟺ structural path equality, so Table 2's case 1
//!   ("identical access paths") is one integer compare at every
//!   recursion depth;
//! * each node caches its leaf classification (field symbol / deref /
//!   subscript / dope slot), the payload the Table 2 arms need, and the
//!   resolved terminal `TypeId` (`Type(p)` with the dope-slot INTEGER
//!   rule already applied);
//! * parents are integer links, so the `FieldTypeDecl` recursion becomes
//!   an allocation-free loop over `u32`s.
//!
//! For programs whose snapshot fits [`DENSE_LIMIT`] (the whole
//! benchsuite does, by orders of magnitude), the build finishes the
//! precomputation outright: every `(ApId, ApId)` verdict is evaluated
//! once into a dense bit matrix, and a query becomes a single indexed
//! load with **no** locks, hashing, or atomic counters on the path —
//! that is what makes the engine faster than the (already allocation-
//! free) naive walk, whose early exits cost only a few nanoseconds.
//! Oversized snapshots keep a lazy regime instead: a [`Memo`] keyed by
//! the normalized `(ApId, ApId)` pair caches verdicts as they are first
//! asked, with hit/miss counters. Bulk enumerations
//! ([`count_alias_pairs`](crate::pairs::count_alias_pairs)) go through
//! [`AliasAnalysis::may_alias_uncached`] and skip the memo lock.
//!
//! Paths interned *after* the engine was compiled (RLE/DSE kill scans
//! clone the program's `ApTable` and intern fresh prefix paths; the
//! limit study interns shadow paths) fall back to the naive oracle.
//! That is sound because `ApTable::intern` is append-only: an `ApId`
//! below the compiled snapshot length denotes the same path in every
//! table cloned from the program's, and anything at or above it is
//! answered against the caller's own table.

use crate::analysis::{AliasAnalysis, Level, Tbaa};
use crate::memo::Memo;
use crate::merge::World;
use crate::pairs::AliasPairCounts;
use mini_m3::types::TypeId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tbaa_ir::ir::{HeapRefRows, Program};
use tbaa_ir::path::{ApId, ApRoot, ApStep, ApTable};
use tbaa_ir::symbols::Symbol;

/// Per-node step classification with the payloads Table 2 consumes.
/// Subscript expressions and dope details are identity-only (they live
/// in the cons key, not here): case 6 ignores subscripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    /// A bare root (no steps).
    Root,
    /// `.f` — Qualify.
    Field {
        sym: Symbol,
        base_ty: TypeId,
        field_ty: TypeId,
    },
    /// `^` — Dereference.
    Deref,
    /// `[i]` — Subscript.
    Index { base_ty: TypeId, elem_ty: TypeId },
    /// The hidden `#length` dope slot.
    Dope,
}

/// One hash-consed access-path prefix.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Parent node index; self-referential for roots (never followed:
    /// the walk stops at `Root`).
    parent: u32,
    kind: NodeKind,
    /// Resolved `Type(p)` for this prefix (dope slots already INTEGER).
    ty: TypeId,
    /// Whether the path is rooted at an anonymous temp.
    temp: bool,
}

/// Snapshots larger than this many access paths skip the dense pair
/// matrix (quadratic bits and build-time walks) and use the lazy memo
/// regime instead.
///
/// Placed by the `bench-alias --sweep-dense-limit` crossover sweep
/// (data in `BENCH_alias_query.json` under `dense_limit_sweep`): at
/// 2048 paths the matrix costs ~10.7 ms to build and pays for itself
/// after ~152k queries — under 4% of the `n²` queries a single `pairs`
/// census issues — while the build cost grows roughly quadratically
/// (~47 ms at 4096 paths) with no matching gain over the ~1.4e7 q/s
/// lazy memo for interactive traffic. The benchsuite tops out near 70
/// paths, so the limit only gates large synthetic/user programs.
pub const DENSE_LIMIT: usize = 2048;

/// Counters exported through the `tbaad` metrics registry.
///
/// The dense regime's query path is deliberately uninstrumented (a
/// single atomic increment would cost several times the lookup itself),
/// so `queries`/`memo_*` only move in the lazy regime; `dense_pairs`
/// reports how many verdicts were precomputed at build time, and
/// `fallbacks` counts post-snapshot queries in either regime. Serving
/// layers that need per-query counts (the `tbaad` dispatch loop) count
/// at their own grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompiledStats {
    /// Lazy-regime `may_alias` queries (memoized entry point).
    pub queries: u64,
    /// Lazy-regime queries answered from the pair memo.
    pub memo_hits: u64,
    /// Lazy-regime queries that ran the compiled walk and populated the
    /// memo.
    pub memo_misses: u64,
    /// Queries (either entry point) on post-compile `ApId`s, answered by
    /// the naive oracle.
    pub fallbacks: u64,
    /// Distinct pair verdicts precomputed into the dense matrix (0 in
    /// the lazy regime).
    pub dense_pairs: u64,
    /// Resident pair-memo entries (lazy regime).
    pub memo_len: usize,
    /// Hash-consed prefix nodes.
    pub nodes: usize,
    /// Wall time spent compiling the node DAG and dense matrix, in
    /// microseconds.
    pub build_us: u64,
}

/// A [`Tbaa`] analysis compiled into an integer-indexed query engine.
///
/// Implements [`AliasAnalysis`] with answers identical to the wrapped
/// analysis (the differential suite in `tests/compiled_engine.rs` checks
/// every pair on every benchmark); only the cost model changes.
pub struct CompiledAliasEngine {
    tbaa: Arc<Tbaa>,
    /// Node index per build-time `ApId` (dense snapshot).
    node_of: Vec<u32>,
    nodes: Vec<Node>,
    /// Precomputed full-square pair matrix, row padded: row `a` is the
    /// `dense_wpr` words starting at `a * dense_wpr`, with bit `b` set
    /// iff the pair may alias (both mirror-bits set, so queries skip
    /// normalization). Word-aligned rows are what lets
    /// [`Self::dense_census`] AND whole rows against reference masks
    /// and popcount them. Empty in the lazy regime.
    dense: Vec<u64>,
    /// Snapshot size when the dense matrix exists, else `0` — so the
    /// hot path decides "dense AND both ids in range" with the single
    /// comparison `max(a, b) < dense_n`.
    dense_n: u32,
    /// Words per matrix row: `ceil(dense_n / 64)` (0 in the lazy
    /// regime).
    dense_wpr: u32,
    memo: Memo<(ApId, ApId), bool>,
    queries: AtomicU64,
    memo_misses: AtomicU64,
    fallbacks: AtomicU64,
    build_us: u64,
}

impl CompiledAliasEngine {
    /// Builds the analysis and compiles it in one step.
    pub fn build(prog: &Program, level: Level, world: World) -> Self {
        Self::compile(prog, Arc::new(Tbaa::build(prog, level, world)))
    }

    /// Compiles the program's interned access paths against an
    /// already-built analysis, precomputing the dense pair matrix when
    /// the snapshot fits [`DENSE_LIMIT`].
    pub fn compile(prog: &Program, tbaa: Arc<Tbaa>) -> Self {
        Self::compile_with_options(prog, tbaa, DENSE_LIMIT, 1)
    }

    /// [`compile`](Self::compile) with the dense matrix filled row-
    /// parallel on up to `threads` workers (capped by the host's core
    /// count via [`tbaa_ir::effective_workers`]; one effective worker
    /// runs the serial fill with zero thread overhead). The matrix is
    /// bit-for-bit identical at any thread count.
    pub fn compile_with_threads(prog: &Program, tbaa: Arc<Tbaa>, threads: usize) -> Self {
        let workers = tbaa_ir::effective_workers(threads, prog.aps.len());
        Self::compile_with_options(prog, tbaa, DENSE_LIMIT, workers)
    }

    /// [`compile`](Self::compile) with an explicit dense-matrix cutoff;
    /// `0` forces the lazy memo regime (the differential tests use this
    /// to cover both query paths on the same programs).
    pub fn compile_with_dense_limit(prog: &Program, tbaa: Arc<Tbaa>, dense_limit: usize) -> Self {
        Self::compile_with_options(prog, tbaa, dense_limit, 1)
    }

    /// Full-control constructor: explicit dense cutoff and an **exact**
    /// dense-fill worker count (clamped only to the row count, not the
    /// host's cores — tests use this to force the parallel fill on a
    /// single-core host; production callers go through
    /// [`compile_with_threads`](Self::compile_with_threads)).
    pub fn compile_with_options(
        prog: &Program,
        tbaa: Arc<Tbaa>,
        dense_limit: usize,
        threads: usize,
    ) -> Self {
        let start = std::time::Instant::now();
        let integer = prog.types.integer();
        let mut nodes: Vec<Node> = Vec::new();
        let mut root_ids: std::collections::HashMap<(ApRoot, TypeId), u32> =
            std::collections::HashMap::new();
        let mut step_ids: std::collections::HashMap<(u32, ApStep), u32> =
            std::collections::HashMap::new();
        let mut node_of = Vec::with_capacity(prog.aps.len());
        for (_, path) in prog.aps.iter() {
            let temp = matches!(path.root, ApRoot::Temp(_));
            let mut cur = *root_ids
                .entry((path.root, path.root_ty))
                .or_insert_with(|| {
                    nodes.push(Node {
                        parent: nodes.len() as u32,
                        kind: NodeKind::Root,
                        ty: path.root_ty,
                        temp,
                    });
                    (nodes.len() - 1) as u32
                });
            for step in &path.steps {
                cur = *step_ids.entry((cur, step.clone())).or_insert_with(|| {
                    let kind = match step {
                        ApStep::Field { name, base_ty, ty } => NodeKind::Field {
                            sym: *name,
                            base_ty: *base_ty,
                            field_ty: *ty,
                        },
                        ApStep::Deref { .. } => NodeKind::Deref,
                        ApStep::Index { base_ty, ty, .. } => NodeKind::Index {
                            base_ty: *base_ty,
                            elem_ty: *ty,
                        },
                        ApStep::DopeLen { .. } => NodeKind::Dope,
                    };
                    nodes.push(Node {
                        parent: cur,
                        kind,
                        ty: step.ty(integer),
                        temp,
                    });
                    (nodes.len() - 1) as u32
                });
            }
            node_of.push(cur);
        }
        let mut engine = CompiledAliasEngine {
            tbaa,
            node_of,
            nodes,
            dense: Vec::new(),
            dense_n: 0,
            dense_wpr: 0,
            memo: Memo::new(),
            queries: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            build_us: 0,
        };
        let n = engine.node_of.len();
        if n > 0 && n <= dense_limit {
            // Evaluate every pair once (symmetry halves the walks) into
            // a row-padded full-square bit matrix: rows start on word
            // boundaries so a query is one multiply, one load, one
            // shift, and the census kernel can mask and popcount whole
            // rows. Padding costs < 64 bits per row over the flat
            // `a*n+b` layout it replaced.
            let wpr = n.div_ceil(64);
            let workers = threads.clamp(1, n);
            let bits = if workers <= 1 {
                let mut bits = vec![0u64; n * wpr];
                for a in 0..n {
                    for b in a..n {
                        if engine
                            .compiled_answer(ApId(a as u32), ApId(b as u32))
                            .expect("snapshot ids are dense")
                        {
                            bits[a * wpr + (b >> 6)] |= 1 << (b & 63);
                            bits[b * wpr + (a >> 6)] |= 1 << (a & 63);
                        }
                    }
                }
                bits
            } else {
                // Row-parallel fill: each worker claims upper-triangle
                // rows off an atomic cursor (row a holds pairs b >= a,
                // so the cursor balances the skewed row costs), writes
                // only its own row's words, and the mirror half is
                // copied serially after the join. `compiled_answer` is
                // `&self` over the shared memo, so the walks race only
                // on monotonic counters — the verdicts, and hence the
                // matrix, are bit-identical to the serial fill.
                let abits: Vec<AtomicU64> = (0..n * wpr).map(|_| AtomicU64::new(0)).collect();
                let cursor = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        let abits = &abits;
                        let cursor = &cursor;
                        let engine = &engine;
                        s.spawn(move || {
                            let mut row = vec![0u64; wpr];
                            loop {
                                let a = cursor.fetch_add(1, Ordering::Relaxed);
                                if a >= n {
                                    break;
                                }
                                row.fill(0);
                                for b in a..n {
                                    if engine
                                        .compiled_answer(ApId(a as u32), ApId(b as u32))
                                        .expect("snapshot ids are dense")
                                    {
                                        row[b >> 6] |= 1 << (b & 63);
                                    }
                                }
                                for (w, &v) in row.iter().enumerate() {
                                    if v != 0 {
                                        abits[a * wpr + w].store(v, Ordering::Relaxed);
                                    }
                                }
                            }
                        });
                    }
                });
                let mut bits: Vec<u64> = abits.into_iter().map(AtomicU64::into_inner).collect();
                for a in 0..n {
                    for b in (a + 1)..n {
                        if bits[a * wpr + (b >> 6)] >> (b & 63) & 1 == 1 {
                            bits[b * wpr + (a >> 6)] |= 1 << (a & 63);
                        }
                    }
                }
                bits
            };
            engine.dense = bits;
            engine.dense_n = n as u32;
            engine.dense_wpr = wpr as u32;
        }
        engine.build_us = start.elapsed().as_micros() as u64;
        engine
    }

    /// The wrapped analysis (for clients that need type-level queries,
    /// e.g. devirtualization's `possible_types`).
    pub fn tbaa(&self) -> &Tbaa {
        &self.tbaa
    }

    /// A counter snapshot.
    pub fn stats(&self) -> CompiledStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let memo_misses = self.memo_misses.load(Ordering::Relaxed);
        let fallbacks = self.fallbacks.load(Ordering::Relaxed);
        let n = self.node_of.len() as u64;
        CompiledStats {
            queries,
            memo_hits: queries.saturating_sub(memo_misses),
            memo_misses,
            fallbacks,
            dense_pairs: if self.dense.is_empty() {
                0
            } else {
                n * (n + 1) / 2
            },
            memo_len: self.memo.len(),
            nodes: self.nodes.len(),
            build_us: self.build_us,
        }
    }

    /// Table 2 over node indices. Mirrors `Tbaa::ftd` arm for arm; the
    /// recursion is a loop because every arm either returns or descends
    /// to both parents.
    fn walk(&self, mut p: u32, mut q: u32) -> bool {
        let t = &*self.tbaa;
        loop {
            let np = self.nodes[p as usize];
            let nq = self.nodes[q as usize];
            if p == q {
                if !np.temp {
                    // Case 1: identical access paths always alias.
                    return true;
                }
                // Identical temp-rooted paths skip case 1; the naive walk
                // descends matching steps until the bare temp root falls
                // through to case 7.
                match np.kind {
                    NodeKind::Field { .. } | NodeKind::Index { .. } | NodeKind::Dope => {
                        p = np.parent;
                        q = nq.parent;
                        continue;
                    }
                    NodeKind::Deref | NodeKind::Root => {
                        return t.type_compatible(np.ty, nq.ty);
                    }
                }
            }
            return match (np.kind, nq.kind) {
                // Case 2: same field on possibly the same object.
                (NodeKind::Field { sym: f, .. }, NodeKind::Field { sym: g, .. }) => {
                    if f == g {
                        p = np.parent;
                        q = nq.parent;
                        continue;
                    }
                    false
                }
                // Case 3: field vs deref — AddressTaken gates it.
                (
                    NodeKind::Field {
                        sym,
                        base_ty,
                        field_ty,
                    },
                    NodeKind::Deref,
                )
                | (
                    NodeKind::Deref,
                    NodeKind::Field {
                        sym,
                        base_ty,
                        field_ty,
                    },
                ) => {
                    t.address_taken_field(base_ty, sym, field_ty)
                        && t.type_compatible(np.ty, nq.ty)
                }
                // Case 4: deref vs subscript — taken element gates it.
                (NodeKind::Deref, NodeKind::Index { base_ty, elem_ty })
                | (NodeKind::Index { base_ty, elem_ty }, NodeKind::Deref) => {
                    t.address_taken_element(base_ty, elem_ty)
                        && t.type_compatible(np.ty, nq.ty)
                }
                // Case 5: a subscript never aliases a qualification.
                (NodeKind::Field { .. }, NodeKind::Index { .. })
                | (NodeKind::Index { .. }, NodeKind::Field { .. }) => false,
                // Case 6: subscripts ignored; the arrays decide.
                (NodeKind::Index { .. }, NodeKind::Index { .. }) => {
                    p = np.parent;
                    q = nq.parent;
                    continue;
                }
                // Dope slots alias only each other.
                (NodeKind::Dope, NodeKind::Dope) => {
                    p = np.parent;
                    q = nq.parent;
                    continue;
                }
                (NodeKind::Dope, _) | (_, NodeKind::Dope) => false,
                // Case 7: everything else is plain type compatibility.
                _ => t.type_compatible(np.ty, nq.ty),
            };
        }
    }

    /// The precomputed verdict for a pair inside the dense snapshot.
    /// Callers must have checked `a.0.max(b.0) < self.dense_n`.
    #[inline]
    fn dense_bit(&self, a: ApId, b: ApId) -> bool {
        let b_idx = b.0 as usize;
        let idx = a.0 as usize * self.dense_wpr as usize + (b_idx >> 6);
        // SAFETY: both ids are < dense_n (caller contract), so the row
        // offset is at most (dense_n-1)*dense_wpr and the word index
        // within the row at most dense_wpr-1; the matrix was built with
        // dense_n * dense_wpr words.
        let word = unsafe { *self.dense.get_unchecked(idx) };
        (word >> (b_idx & 63)) & 1 != 0
    }

    /// Bulk Table-5 census over the dense matrix: counts may-alias
    /// pairs among the reference expressions of `rows` with masked
    /// popcounts — 64 pair verdicts per `AND` + `count_ones` — instead
    /// of one [`Self::dense_bit`] probe per pair. Returns `None` when
    /// the engine is in the lazy regime or any reference postdates the
    /// compiled snapshot (RLE scratch programs intern fresh paths);
    /// callers fall back to the scalar pair walk.
    ///
    /// For each function `f` in `rows`, with `B_f` the bitset of `f`'s
    /// reference paths over `ApId` space:
    ///
    /// * **local pairs**: for each path `a ∈ B_f`, popcount
    ///   `row(a) & B_f` restricted to bits strictly above `a` — the
    ///   upper-triangular mask counts every unordered pair exactly once
    ///   and drops the trivial self pair;
    /// * **global pairs** need *multiplicity*, not membership: the pair
    ///   `(f,a)` vs `(g,b)` is distinct for every function `g`
    ///   containing `b` (including `b == a`, which is how the same
    ///   global path referenced from two functions gets counted), so a
    ///   mask union would undercount any path referenced by three or
    ///   more functions. With `m_x` the number of functions referencing
    ///   path `x`, kept *bit-sliced* (plane `p` holds bit `2^p` of
    ///   every path's count), the weighted row sum
    ///   `S = Σ_refs Σ_p popcount(row(a) & plane_p) << p` counts every
    ///   ordered reference pair whose paths may alias — so with
    ///   `D = Σ_refs diag(a)` (the self-verdict per reference),
    ///   `global = (S − D) / 2` exactly: off-diagonal terms appear
    ///   twice in `S` by matrix symmetry, and the diagonal's
    ///   `m_a² − m_a` surplus over the wanted `C(m_a, 2)` pairs cancels
    ///   against the subtracted self pairs. One global plane set — no
    ///   per-function suffix state — still 64 paths per `AND`, times
    ///   the ⌈log₂(max multiplicity)⌉ live planes.
    ///
    /// Pure sums of precomputed bits, so the result is deterministic at
    /// any thread count. Workers claim function groups off a shared
    /// atomic cursor, the same scoped-thread fan-out as the scalar
    /// [`count_alias_pairs_with_threads`](crate::pairs::count_alias_pairs_with_threads).
    pub fn dense_census(&self, rows: &HeapRefRows, threads: usize) -> Option<AliasPairCounts> {
        if self.dense_n == 0 || rows.refs.iter().any(|ap| ap.0 >= self.dense_n) {
            return None;
        }
        let wpr = self.dense_wpr as usize;
        let groups = rows.funcs.len();
        // The per-call setup cost matters: benchsuite-sized programs
        // finish the whole popcount sweep in well under a microsecond,
        // so scratch space is ONE allocation (function masks and the
        // multiplicity planes carved out of a single zeroed buffer) and
        // the plane count is bounded by ⌈log₂ groups⌉ upfront (a path
        // can appear in at most every group) instead of an extra
        // counting pass; `used` tracks how many planes ever received a
        // bit so the census scans only live ones.
        let planes = (usize::BITS - groups.leading_zeros()) as usize;
        let fm_len = groups * wpr;
        let need = fm_len + planes * wpr;
        // Benchsuite-sized scratch fits on the stack; the heap path
        // covers wide programs (many functions × many words per row).
        let mut stack = [0u64; 256];
        let mut heap: Vec<u64>;
        let scratch: &mut [u64] = if need <= stack.len() {
            &mut stack[..need]
        } else {
            heap = vec![0u64; need];
            &mut heap
        };
        let (func_masks, mult_planes) = scratch.split_at_mut(fm_len);
        for (gi, &(_, s, e)) in rows.funcs.iter().enumerate() {
            let mask = &mut func_masks[gi * wpr..(gi + 1) * wpr];
            for &ap in &rows.refs[s as usize..e as usize] {
                mask[ap.0 as usize >> 6] |= 1 << (ap.0 & 63);
            }
        }
        // Ripple-carry each function's bitset into the bit-sliced
        // multiplicity planes (a path appears at most once per group,
        // so adding the mask adds exactly 1 per member).
        let mut used = 0usize;
        for gi in 0..groups {
            let mask = &func_masks[gi * wpr..(gi + 1) * wpr];
            for w in 0..wpr {
                let mut carry = mask[w];
                let mut p = 0;
                while carry != 0 {
                    let slot = &mut mult_planes[p * wpr + w];
                    let next = *slot & carry;
                    *slot ^= carry;
                    carry = next;
                    p += 1;
                }
                used = used.max(p);
            }
        }
        let func_masks = &*func_masks;
        let mult_planes = &*mult_planes;
        // Per group: (local pairs, weighted row sum S, diagonal sum D).
        let census_group = |gi: usize| -> (u64, u64, u64) {
            let (_, s, e) = rows.funcs[gi];
            let fmask = &func_masks[gi * wpr..(gi + 1) * wpr];
            let (mut local, mut weighted, mut diag) = (0u64, 0u64, 0u64);
            for &ap in &rows.refs[s as usize..e as usize] {
                let a = ap.0 as usize;
                let row = &self.dense[a * wpr..(a + 1) * wpr];
                // Bits strictly above `a` within its own word; the
                // second shift (by 1, never 64) zeroes the mask when
                // `a` is bit 63.
                let above = (!0u64 << (a & 63)) << 1;
                let wi = a >> 6;
                local += (row[wi] & fmask[wi] & above).count_ones() as u64;
                for w in wi + 1..wpr {
                    local += (row[w] & fmask[w]).count_ones() as u64;
                }
                for p in 0..used {
                    let plane = &mult_planes[p * wpr..(p + 1) * wpr];
                    let mut hits = 0u64;
                    for w in 0..wpr {
                        hits += (row[w] & plane[w]).count_ones() as u64;
                    }
                    weighted += hits << p;
                }
                diag += (row[wi] >> (a & 63)) & 1;
            }
            (local, weighted, diag)
        };
        let add = |x: (u64, u64, u64), y: (u64, u64, u64)| (x.0 + y.0, x.1 + y.1, x.2 + y.2);
        // Host-core cap included: a single-core host always takes the
        // serial arm, so the census never pays thread-spawn overhead it
        // cannot recoup (the pairs.scaling regression).
        let workers = tbaa_ir::effective_workers(threads, groups);
        let (local, weighted, diag) = if workers <= 1 {
            (0..groups).map(census_group).fold((0, 0, 0), add)
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|sc| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        sc.spawn(|| {
                            let mut sums = (0u64, 0u64, 0u64);
                            loop {
                                let gi = cursor.fetch_add(1, Ordering::Relaxed);
                                if gi >= groups {
                                    break;
                                }
                                sums = add(sums, census_group(gi));
                            }
                            sums
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("census worker panicked"))
                    .fold((0, 0, 0), add)
            })
        };
        Some(AliasPairCounts {
            references: rows.refs.len(),
            local_pairs: local as usize,
            global_pairs: ((weighted - diag) / 2) as usize,
        })
    }

    /// The memoized-entry slow path: lazy-regime memo lookup, or the
    /// naive-oracle fallback for post-snapshot ids. Outlined so the
    /// dense fast path in [`AliasAnalysis::may_alias`] stays small
    /// enough to inline into bulk query loops.
    #[inline(never)]
    fn may_alias_slow(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        let n = self.node_of.len();
        if (a.0 as usize) < n && (b.0 as usize) < n {
            self.queries.fetch_add(1, Ordering::Relaxed);
            let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
            return *self.memo.get_or_build(key, || {
                self.memo_misses.fetch_add(1, Ordering::Relaxed);
                self.compiled_answer(a, b).expect("ids checked dense")
            });
        }
        // Post-compile id: the pair is only meaningful in the caller's
        // table, so it is answered there and never cached.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.tbaa.may_alias_paths(aps.path(a), aps.path(b))
    }

    /// The uncached-entry slow path; see [`Self::may_alias_slow`].
    #[inline(never)]
    fn may_alias_uncached_slow(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        let n = self.node_of.len();
        if (a.0 as usize) < n && (b.0 as usize) < n {
            return self.compiled_answer(a, b).expect("ids checked dense");
        }
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.tbaa.may_alias_paths(aps.path(a), aps.path(b))
    }

    /// The compiled answer for a pair of build-time ids, or `None` if
    /// either id postdates the compiled snapshot.
    fn compiled_answer(&self, a: ApId, b: ApId) -> Option<bool> {
        let pa = *self.node_of.get(a.0 as usize)?;
        let pb = *self.node_of.get(b.0 as usize)?;
        if self.tbaa.level() == Level::TypeDecl {
            // TypeDecl short-circuits to case 7 for every pair.
            return Some(
                self.tbaa
                    .type_compatible(self.nodes[pa as usize].ty, self.nodes[pb as usize].ty),
            );
        }
        Some(self.walk(pa, pb))
    }
}

impl AliasAnalysis for CompiledAliasEngine {
    fn name(&self) -> &str {
        self.tbaa.name()
    }

    #[inline]
    fn may_alias(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        // Dense regime: one comparison and one load, no locks, no
        // atomics — this is the hot path the whole module exists for.
        if a.0.max(b.0) < self.dense_n {
            return self.dense_bit(a, b);
        }
        self.may_alias_slow(aps, a, b)
    }

    #[inline]
    fn may_alias_uncached(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        if a.0.max(b.0) < self.dense_n {
            return self.dense_bit(a, b);
        }
        self.may_alias_uncached_slow(aps, a, b)
    }

    fn wild_may_modify(&self, aps: &ApTable, ap: ApId) -> bool {
        match self.node_of.get(ap.0 as usize) {
            Some(&n) => match self.nodes[n as usize].kind {
                NodeKind::Field {
                    sym,
                    base_ty,
                    field_ty,
                } => self.tbaa.address_taken_field(base_ty, sym, field_ty),
                NodeKind::Index { base_ty, elem_ty } => {
                    self.tbaa.address_taken_element(base_ty, elem_ty)
                }
                NodeKind::Dope => false,
                NodeKind::Deref | NodeKind::Root => true,
            },
            None => self.tbaa.wild_may_modify(aps, ap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;

    fn prog() -> Program {
        compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END; A = ARRAY OF INTEGER;
             P = REF INTEGER;
             PROCEDURE Touch (VAR v: INTEGER) = BEGIN v := v + 1 END Touch;
             PROCEDURE Get (): T = BEGIN RETURN NEW(T) END Get;
             VAR t, u: T; a: A; p: P; x: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T); a := NEW(A, 3); p := NEW(P);
               Touch(t.f);
               t.f := 1; t.g := 2; u.f := 3; a[0] := 4; p^ := 5;
               x := t.f + t.g + u.f + a[1] + p^ + NUMBER(a) + Get().f;
             END M.",
        )
        .unwrap()
    }

    #[test]
    fn matches_naive_on_every_pair_at_every_level() {
        let prog = prog();
        let ids: Vec<ApId> = prog.aps.iter().map(|(id, _)| id).collect();
        for world in [World::Closed, World::Open] {
            for level in Level::ALL {
                let naive = Arc::new(Tbaa::build(&prog, level, world));
                // Cover both regimes: dense matrix and lazy memo.
                for dense_limit in [DENSE_LIMIT, 0] {
                    let engine = CompiledAliasEngine::compile_with_dense_limit(
                        &prog,
                        naive.clone(),
                        dense_limit,
                    );
                    for &a in &ids {
                        for &b in &ids {
                            let want = naive.may_alias(&prog.aps, a, b);
                            assert_eq!(
                                engine.may_alias(&prog.aps, a, b),
                                want,
                                "{level}/{world:?}/limit {dense_limit} memoized {a:?} vs {b:?}"
                            );
                            assert_eq!(
                                engine.may_alias_uncached(&prog.aps, a, b),
                                want,
                                "{level}/{world:?}/limit {dense_limit} uncached {a:?} vs {b:?}"
                            );
                        }
                        assert_eq!(
                            engine.wild_may_modify(&prog.aps, a),
                            naive.wild_may_modify(&prog.aps, a),
                            "{level}/{world:?} wild {a:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_dense_fill_is_bit_identical() {
        let prog = prog();
        for world in [World::Closed, World::Open] {
            for level in Level::ALL {
                let tbaa = Arc::new(Tbaa::build(&prog, level, world));
                let serial = CompiledAliasEngine::compile(&prog, tbaa.clone());
                for workers in [2, 3, 8] {
                    let par = CompiledAliasEngine::compile_with_options(
                        &prog,
                        tbaa.clone(),
                        DENSE_LIMIT,
                        workers,
                    );
                    assert_eq!(par.dense_n, serial.dense_n);
                    assert_eq!(par.dense_wpr, serial.dense_wpr);
                    assert_eq!(
                        par.dense, serial.dense,
                        "{level}/{world:?} dense matrix diverged at {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn post_compile_ids_fall_back_to_the_oracle() {
        let prog = prog();
        let naive = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let engine = CompiledAliasEngine::build(&prog, Level::FieldTypeDecl, World::Closed);
        // Intern a fresh prefix path in a cloned table, as the RLE/DSE
        // kill scans do.
        let mut aps = prog.aps.clone();
        let with_steps = prog
            .aps
            .iter()
            .find(|(_, p)| !p.steps.is_empty())
            .map(|(_, p)| p.clone())
            .expect("some stepped path");
        let parent = with_steps.parent().unwrap();
        let fresh = aps.intern(parent);
        for (old, _) in prog.aps.iter() {
            assert_eq!(
                engine.may_alias(&aps, fresh, old),
                naive.may_alias(&aps, fresh, old),
                "fallback {fresh:?} vs {old:?}"
            );
        }
        assert!(engine.stats().fallbacks > 0);
    }

    #[test]
    fn stats_track_memo_traffic_in_the_lazy_regime() {
        let prog = prog();
        let tbaa = Arc::new(Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed));
        let engine = CompiledAliasEngine::compile_with_dense_limit(&prog, tbaa, 0);
        let ids: Vec<ApId> = prog.aps.iter().map(|(id, _)| id).collect();
        let (a, b) = (ids[0], ids[1]);
        engine.may_alias(&prog.aps, a, b);
        engine.may_alias(&prog.aps, b, a); // symmetric key → memo hit
        let s = engine.stats();
        assert_eq!(s.dense_pairs, 0, "limit 0 forces the lazy regime");
        assert_eq!(s.queries, 2);
        assert_eq!(s.memo_misses, 1);
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.memo_len, 1);
        assert!(s.nodes > 0);
    }

    #[test]
    fn dense_regime_precomputes_every_pair() {
        let prog = prog();
        let engine = CompiledAliasEngine::build(&prog, Level::FieldTypeDecl, World::Closed);
        let ids: Vec<ApId> = prog.aps.iter().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                engine.may_alias(&prog.aps, a, b);
            }
        }
        let s = engine.stats();
        let n = ids.len() as u64;
        assert_eq!(s.dense_pairs, n * (n + 1) / 2);
        assert_eq!(s.queries, 0, "dense lookups are uninstrumented");
        assert_eq!(s.memo_len, 0, "dense regime never touches the memo");
        assert_eq!(s.fallbacks, 0);
    }
}
