//! Selective type merging — the SMTypeRefs algorithm of §2.4 (Figure 2).
//!
//! TypeDecl is conservative: it assumes a reference of type `T` may point
//! at *any* subtype of `T`. SMTypeRefs sharpens this with a flow-insensitive
//! pass over all explicit and implicit pointer assignments (similar to
//! Steensgaard's algorithm, but over programming-language types): types are
//! only merged when some assignment actually connects them, and the final
//! `TypeRefsTable(T) = Group(T) ∩ Subtypes(T)` filters out infeasible
//! targets, giving the asymmetry of Table 3 in the paper.

use crate::bitset::TypeSet;
use crate::subtypes::SubtypeSets;
use mini_m3::types::{TypeId, TypeKind, TypeTable};
use tbaa_ir::ir::Merge;

/// Whether analysis assumes the whole program is visible.
///
/// Under [`World::Open`] (§4 of the paper), unavailable code may perform
/// additional merges between structurally reconstructible (unbranded)
/// types related by subtyping, and may take addresses through VAR formals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum World {
    /// Whole program available (closed-world assumption).
    #[default]
    Closed,
    /// Unavailable code may exist (open-world assumption).
    Open,
}

/// A union-find over type ids.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
    }
}

/// The `TypeRefsTable` produced by selective merging: for each declared
/// type `T`, the set of types an access path of declared type `T` may
/// actually reference.
#[derive(Debug, Clone)]
pub struct TypeRefsTable {
    rows: Vec<TypeSet>,
}

impl TypeRefsTable {
    /// Runs Figure 2 of the paper over the recorded merges.
    ///
    /// * Step 1 puts every pointer type in its own group.
    /// * Step 2 unions groups at every pointer assignment `a := b` with
    ///   `Type(a) ≠ Type(b)` (the `merges` list collected during lowering).
    ///   Under [`World::Open`], subtype-related unbranded types are also
    ///   merged, since unavailable code can reconstruct structural types
    ///   and assign them (§4).
    /// * Step 3 filters each group by `Subtypes(T)`.
    pub fn build(
        types: &TypeTable,
        subtypes: &SubtypeSets,
        merges: &[Merge],
        world: World,
    ) -> Self {
        let n = types.len();
        let mut uf = UnionFind::new(n);
        for &(a, b) in merges {
            uf.union(a.0, b.0);
        }
        if world == World::Open {
            for t in types.iter() {
                if let TypeKind::Object {
                    super_ty: Some(s), ..
                } = types.kind(t)
                {
                    if !types.is_branded(t) && !types.is_branded(*s) {
                        uf.union(t.0, s.0);
                    }
                }
            }
        }
        // Materialize groups.
        let mut group_sets: Vec<TypeSet> = vec![TypeSet::new(n); n];
        for t in types.iter() {
            let root = uf.find(t.0);
            group_sets[root as usize].insert(t);
        }
        // Step 3: TypeRefsTable(t) = Group(t) ∩ Subtypes(t).
        let mut rows = Vec::with_capacity(n);
        for t in types.iter() {
            let root = uf.find(t.0);
            let mut row = group_sets[root as usize].clone();
            row.intersect_with(subtypes.set(t));
            // Every type may reference itself.
            row.insert(t);
            rows.push(row);
        }
        TypeRefsTable { rows }
    }

    /// `TypeRefsTable(t)`.
    pub fn row(&self, t: TypeId) -> &TypeSet {
        &self.rows[t.0 as usize]
    }

    /// The SMTypeRefs compatibility test:
    /// `TypeRefsTable(a) ∩ TypeRefsTable(b) ≠ ∅`.
    pub fn compatible(&self, a: TypeId, b: TypeId) -> bool {
        self.rows[a.0 as usize].intersects(&self.rows[b.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::lower::lower;

    /// The program of Figure 3 in the paper, whose expected TypeRefsTable
    /// is Table 3.
    fn figure3() -> tbaa_ir::Program {
        let checked = mini_m3::compile(
            "MODULE Fig3;
             TYPE
               T = OBJECT f, g: T; END;
               S1 = T OBJECT END;
               S2 = T OBJECT END;
               S3 = T OBJECT END;
             VAR
               s1: S1; s2: S2; s3: S3; t: T;
             BEGIN
               s1 := NEW(S1);
               s2 := NEW(S2);
               s3 := NEW(S3);
               t := s1; (* Statement 1 *)
               t := s2; (* Statement 2 *)
             END Fig3.",
        )
        .unwrap();
        lower(checked).unwrap()
    }

    #[test]
    fn table_3_typerefs() {
        let prog = figure3();
        let subs = SubtypeSets::new(&prog.types);
        let table = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Closed);
        let t = prog.types.by_name("T").unwrap();
        let s1 = prog.types.by_name("S1").unwrap();
        let s2 = prog.types.by_name("S2").unwrap();
        let s3 = prog.types.by_name("S3").unwrap();
        // Table 3: T -> {T, S1, S2}; S1 -> {S1}; S2 -> {S2}; S3 -> {S3}.
        let row_t = table.row(t);
        assert!(row_t.contains(t) && row_t.contains(s1) && row_t.contains(s2));
        assert!(!row_t.contains(s3), "S3 never assigned into T");
        assert_eq!(table.row(s1).iter().collect::<Vec<_>>(), vec![s1]);
        assert_eq!(table.row(s2).iter().collect::<Vec<_>>(), vec![s2]);
        assert_eq!(table.row(s3).iter().collect::<Vec<_>>(), vec![s3]);
    }

    #[test]
    fn asymmetry_of_step_3() {
        let prog = figure3();
        let subs = SubtypeSets::new(&prog.types);
        let table = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Closed);
        let t = prog.types.by_name("T").unwrap();
        let s1 = prog.types.by_name("S1").unwrap();
        // T may reference S1 objects, but S1 may not reference T objects.
        assert!(table.row(t).contains(s1));
        assert!(!table.row(s1).contains(t));
        // Still compatible as a pair (they share S1).
        assert!(table.compatible(t, s1));
    }

    #[test]
    fn no_assignment_no_merge() {
        // TypeDecl would say t and s may alias; SMTypeRefs proves otherwise
        // when there is no assignment between them (§2.4's motivating
        // example).
        let checked = mini_m3::compile(
            "MODULE M;
             TYPE T = OBJECT END; S1 = T OBJECT END;
             VAR t: T; s: S1;
             BEGIN
               t := NEW(T);
               s := NEW(S1);
             END M.",
        )
        .unwrap();
        let prog = lower(checked).unwrap();
        let subs = SubtypeSets::new(&prog.types);
        let table = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Closed);
        let t = prog.types.by_name("T").unwrap();
        let s1 = prog.types.by_name("S1").unwrap();
        assert!(
            !table.compatible(t, s1),
            "no assignment between T and S1, so no aliasing"
        );
        // TypeDecl, by contrast, is compatible.
        assert!(subs.compatible(t, s1));
    }

    #[test]
    fn open_world_merges_unbranded_hierarchy() {
        let checked = mini_m3::compile(
            "MODULE M;
             TYPE T = OBJECT END; S1 = T OBJECT END;
                  B = BRANDED \"b\" OBJECT END; BS = B OBJECT END;
             VAR t: T; s: S1; b: B;
             BEGIN
               t := NEW(T); s := NEW(S1); b := NEW(B);
             END M.",
        )
        .unwrap();
        let prog = lower(checked).unwrap();
        let subs = SubtypeSets::new(&prog.types);
        let open = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Open);
        let closed = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Closed);
        let t = prog.types.by_name("T").unwrap();
        let s1 = prog.types.by_name("S1").unwrap();
        let b = prog.types.by_name("B").unwrap();
        let bs = prog.types.by_name("BS").unwrap();
        // Closed world: no merges at all.
        assert!(!closed.compatible(t, s1));
        // Open world: unavailable code may assign an S1 to a T.
        assert!(open.compatible(t, s1));
        // But the branded root stays unmerged with its subtype.
        assert!(!open.row(b).contains(bs));
    }

    #[test]
    fn scalar_rows_are_singletons() {
        let prog = figure3();
        let subs = SubtypeSets::new(&prog.types);
        let table = TypeRefsTable::build(&prog.types, &subs, &prog.merges, World::Closed);
        let int = prog.types.integer();
        assert_eq!(table.row(int).iter().collect::<Vec<_>>(), vec![int]);
    }
}
