//! A concurrent build-once memo table.
//!
//! Shared by the evaluation [`Engine`](../../tbaa_bench/struct.Engine.html)
//! in `crates/bench` and the `tbaad` session cache in `crates/server`:
//! both need "many threads ask for the same expensive artifact, build it
//! exactly once, hand everyone the same `Arc`".
//!
//! The design is a per-key [`OnceLock`] slot under one mutex-protected
//! map. The mutex is held only long enough to find or insert the slot;
//! the (expensive) build runs outside it, so lookups of *different* keys
//! build concurrently while racing lookups of the *same* key serialize
//! on the slot — losers block until the winner's value is ready, and
//! the build closure runs exactly once per key.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// A memo table: per-key `OnceLock` slots under one mutex-protected map,
/// so concurrent lookups of the *same* key build the value exactly once
/// (losers block on the winner's `OnceLock`), while lookups of
/// *different* keys build concurrently.
pub struct Memo<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    /// An empty memo table.
    pub fn new() -> Self {
        Memo {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached `Arc` for `key`, building it (exactly once
    /// across all threads) on first use.
    pub fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock().expect("memo poisoned");
            map.entry(key).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(build())).clone()
    }

    /// Returns the cached `Arc` for `key` if a finished build exists,
    /// without building. A key whose build is still in flight on another
    /// thread reads as absent.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let slot = {
            let map = self.map.lock().expect("memo poisoned");
            map.get(key).cloned()
        };
        slot.and_then(|s| s.get().cloned())
    }

    /// Drops the entry for `key`, returning its value if one was built.
    /// Threads already blocked on the removed slot still receive the old
    /// value; the next `get_or_build` starts fresh.
    pub fn remove(&self, key: &K) -> Option<Arc<V>> {
        let slot = self.map.lock().expect("memo poisoned").remove(key);
        slot.and_then(|s| s.get().cloned())
    }

    /// Number of entries (including builds still in flight).
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the current keys, in no particular order.
    pub fn keys(&self) -> Vec<K> {
        self.map
            .lock()
            .expect("memo poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builds_once_and_shares() {
        let memo: Memo<u32, String> = Memo::new();
        let builds = AtomicUsize::new(0);
        let a = memo.get_or_build(1, || {
            builds.fetch_add(1, Ordering::Relaxed);
            "one".to_string()
        });
        let b = memo.get_or_build(1, || {
            builds.fetch_add(1, Ordering::Relaxed);
            "other".to_string()
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(*a, "one");
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let memo: Memo<u32, u64> = Memo::new();
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    memo.get_or_build(7, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        42
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn remove_allows_rebuild() {
        let memo: Memo<&'static str, u32> = Memo::new();
        memo.get_or_build("k", || 1);
        assert_eq!(memo.get(&"k").as_deref(), Some(&1));
        let old = memo.remove(&"k");
        assert_eq!(old.as_deref(), Some(&1));
        assert!(memo.get(&"k").is_none());
        let rebuilt = memo.get_or_build("k", || 2);
        assert_eq!(*rebuilt, 2);
    }

    #[test]
    fn keys_snapshot() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.get_or_build(1, || 1);
        memo.get_or_build(2, || 2);
        let mut keys = memo.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
        assert!(!memo.is_empty());
    }
}
