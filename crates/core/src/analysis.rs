//! The three type-based alias analyses (§2 of the paper) behind one
//! query interface.
//!
//! * [`Level::TypeDecl`] — two access paths may alias iff the subtype
//!   closures of their declared types intersect (§2.2).
//! * [`Level::FieldTypeDecl`] — the seven-case refinement of Table 2,
//!   using field names, the access shape, and `AddressTaken` (§2.3).
//! * [`Level::SmFieldTypeRefs`] — FieldTypeDecl with the selective-merge
//!   `TypeRefsTable` substituted for the subtype test (§2.4).
//!
//! A [`Tbaa`] is built once per program (O(instructions · types) — §2.5)
//! and then answers `may_alias` queries. The [`AliasAnalysis`] trait is
//! what optimization clients (RLE, mod-ref) consume; [`NoAlias`] and
//! [`AlwaysAlias`] provide the optimistic and trivial oracles used by the
//! upper-bound study and the baseline.

use crate::bitset::TypeSet;
use crate::merge::{TypeRefsTable, World};
use crate::subtypes::SubtypeSets;
use crate::taken::FieldTakenSets;
use mini_m3::types::{TypeId, TypeKind};
use tbaa_ir::ir::Program;
use tbaa_ir::path::{AccessPath, ApId, ApStep, ApTable, ApView};
use tbaa_ir::symbols::Symbol;

/// Which of the paper's three analyses to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Type compatibility only (§2.2).
    TypeDecl,
    /// Types plus field/shape rules (§2.3, Table 2).
    FieldTypeDecl,
    /// FieldTypeDecl plus selective type merging (§2.4).
    SmFieldTypeRefs,
}

impl Level {
    /// All three levels, weakest first.
    pub const ALL: [Level; 3] = [
        Level::TypeDecl,
        Level::FieldTypeDecl,
        Level::SmFieldTypeRefs,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Level::TypeDecl => "TypeDecl",
            Level::FieldTypeDecl => "FieldTypeDecl",
            Level::SmFieldTypeRefs => "SMFieldTypeRefs",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The query interface optimization clients use.
pub trait AliasAnalysis {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// May the two access paths refer to the same memory location?
    fn may_alias(&self, aps: &ApTable, a: ApId, b: ApId) -> bool;

    /// `may_alias` bypassing any per-pair memo the implementation keeps.
    /// Bulk enumerations (e.g. parallel pair counting) use this to avoid
    /// serializing on a shared cache; for memo-less analyses it is the
    /// same as `may_alias`.
    fn may_alias_uncached(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        self.may_alias(aps, a, b)
    }

    /// May a *wild* indirect store (a `StoreInd` through a VAR-parameter
    /// location somewhere in the program) modify this path? Only locations
    /// whose address can be taken are reachable that way.
    fn wild_may_modify(&self, aps: &ApTable, ap: ApId) -> bool {
        let _ = (aps, ap);
        true
    }
}

/// A built type-based alias analysis for one program.
#[derive(Debug, Clone)]
pub struct Tbaa {
    level: Level,
    world: World,
    pub(crate) subtypes: SubtypeSets,
    pub(crate) typerefs: TypeRefsTable,
    /// Precomputed `AddressTaken` bitsets (fields, elements, VAR formals).
    pub(crate) taken: FieldTakenSets,
    pub(crate) integer: TypeId,
}

impl Tbaa {
    /// Builds the analysis for `prog` at the given level and world
    /// assumption. Cost: one pass over the recorded merges plus the
    /// subtype closure and the `AddressTaken` expansion — the
    /// O(instructions · types) bound of §2.5.
    pub fn build(prog: &Program, level: Level, world: World) -> Self {
        let subtypes = SubtypeSets::new(&prog.types);
        let typerefs = TypeRefsTable::build(&prog.types, &subtypes, &prog.merges, world);
        let taken = FieldTakenSets::build(prog, &subtypes, world);
        Tbaa {
            level,
            world,
            subtypes,
            typerefs,
            taken,
            integer: prog.types.integer(),
        }
    }

    /// The analysis level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// The world assumption.
    pub fn world(&self) -> World {
        self.world
    }

    /// The underlying type-compatibility test: TypeDecl's subtype
    /// intersection, or the TypeRefsTable intersection at the
    /// SMFieldTypeRefs level.
    pub fn type_compatible(&self, a: TypeId, b: TypeId) -> bool {
        match self.level {
            Level::SmFieldTypeRefs => self.typerefs.compatible(a, b),
            _ => self.subtypes.compatible(a, b),
        }
    }

    /// The paper's `AddressTaken(p.f)` for a path ending in a field of
    /// `base_ty`: true iff the program takes the address of field `f` on a
    /// type-compatible base — plus, in the open world, iff unavailable
    /// code could (the field's type equals some VAR formal type). One
    /// bitset probe via the precomputed [`FieldTakenSets`].
    pub(crate) fn address_taken_field(&self, base_ty: TypeId, field: Symbol, field_ty: TypeId) -> bool {
        self.taken.field_taken(field, base_ty, field_ty)
    }

    /// `AddressTaken(q[i])` for an element of array type `arr_ty`.
    pub(crate) fn address_taken_element(&self, arr_ty: TypeId, elem_ty: TypeId) -> bool {
        self.taken.element_taken(arr_ty, elem_ty)
    }

    /// The set of types a reference of declared type `t` may actually
    /// point at: `TypeRefsTable(t)` at the SMFieldTypeRefs level,
    /// `Subtypes(t)` otherwise. Method resolution (the paper's Minv
    /// client, §3.7) intersects this with the allocated types. Returns
    /// the precomputed row — callers iterate or probe without allocating.
    pub fn possible_types(&self, t: TypeId) -> &TypeSet {
        match self.level {
            Level::SmFieldTypeRefs => self.typerefs.row(t),
            _ => self.subtypes.set(t),
        }
    }

    /// `may_alias` on raw paths (Table 2, all seven cases; TypeDecl level
    /// short-circuits to case 7 for every pair).
    pub fn may_alias_paths(&self, p: &AccessPath, q: &AccessPath) -> bool {
        if self.level == Level::TypeDecl {
            return self.type_compatible(p.ty(self.integer), q.ty(self.integer));
        }
        self.ftd(p.view(), q.view())
    }

    fn ftd(&self, p: ApView<'_>, q: ApView<'_>) -> bool {
        // Case 1: identical access paths always alias.
        if p == q && !p.is_temp_rooted() {
            return true;
        }
        match (p.last(), q.last()) {
            // Case 2: p.f vs q.g — alias iff same field on possibly the
            // same object.
            (Some(ApStep::Field { name: f, .. }), Some(ApStep::Field { name: g, .. })) => {
                f == g && self.ftd_parents(p, q)
            }
            // Case 3: p.f vs q^ — only if the field's address is taken and
            // the types are compatible.
            (
                Some(ApStep::Field {
                    name,
                    base_ty,
                    ty: fty,
                }),
                Some(ApStep::Deref { .. }),
            )
            | (
                Some(ApStep::Deref { .. }),
                Some(ApStep::Field {
                    name,
                    base_ty,
                    ty: fty,
                }),
            ) => {
                self.address_taken_field(*base_ty, *name, *fty)
                    && self.type_compatible(p.ty(self.integer), q.ty(self.integer))
            }
            // Case 4: p^ vs q[i] — only if some element address is taken
            // and the types are compatible.
            (Some(ApStep::Deref { .. }), Some(ApStep::Index { base_ty, ty, .. }))
            | (Some(ApStep::Index { base_ty, ty, .. }), Some(ApStep::Deref { .. })) => {
                self.address_taken_element(*base_ty, *ty)
                    && self.type_compatible(p.ty(self.integer), q.ty(self.integer))
            }
            // Case 5: a subscript can never alias a qualification.
            (Some(ApStep::Field { .. }), Some(ApStep::Index { .. }))
            | (Some(ApStep::Index { .. }), Some(ApStep::Field { .. })) => false,
            // Case 6: two subscripts alias iff they may subscript the same
            // array — the actual subscripts are ignored.
            (Some(ApStep::Index { .. }), Some(ApStep::Index { .. })) => self.ftd_parents(p, q),
            // Dope slots are hidden fields: they alias only each other.
            (Some(ApStep::DopeLen { .. }), Some(ApStep::DopeLen { .. })) => self.ftd_parents(p, q),
            (Some(ApStep::DopeLen { .. }), _) | (_, Some(ApStep::DopeLen { .. })) => false,
            // Case 7: everything else (including two dereferences) falls
            // back to type compatibility.
            _ => self.type_compatible(p.ty(self.integer), q.ty(self.integer)),
        }
    }

    fn ftd_parents(&self, p: ApView<'_>, q: ApView<'_>) -> bool {
        let pp = p.parent().expect("caller matched a step");
        let qp = q.parent().expect("caller matched a step");
        self.ftd(pp, qp)
    }
}

impl AliasAnalysis for Tbaa {
    fn name(&self) -> &str {
        self.level.name()
    }

    fn may_alias(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        self.may_alias_paths(aps.path(a), aps.path(b))
    }

    fn wild_may_modify(&self, aps: &ApTable, ap: ApId) -> bool {
        let p = aps.path(ap);
        match p.steps.last() {
            Some(ApStep::Field {
                name,
                base_ty,
                ty: fty,
            }) => self.address_taken_field(*base_ty, *name, *fty),
            Some(ApStep::Index { base_ty, ty, .. }) => self.address_taken_element(*base_ty, *ty),
            Some(ApStep::DopeLen { .. }) => false,
            // A dereference target's address is trivially reachable through
            // the pointer, so a wild store may modify it.
            Some(ApStep::Deref { .. }) | None => true,
        }
    }
}

/// The optimistic oracle: only textually identical canonical paths alias.
/// Unsound as a compiler analysis; used by the limit study's shadow RLE
/// pass to bound what a *perfect* alias analysis could enable (§3.5).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAlias;

impl AliasAnalysis for NoAlias {
    fn name(&self) -> &str {
        "NoAlias(oracle)"
    }

    fn may_alias(&self, aps: &ApTable, a: ApId, b: ApId) -> bool {
        a == b && aps.path(a).is_canonical()
    }

    fn wild_may_modify(&self, _aps: &ApTable, _ap: ApId) -> bool {
        false
    }
}

/// The trivial analysis: every pair of heap references may alias. This is
/// the "no alias analysis" baseline a compiler like the paper's GCC back
/// end effectively uses across memory operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAlias;

impl AliasAnalysis for AlwaysAlias {
    fn name(&self) -> &str {
        "AlwaysAlias(trivial)"
    }

    fn may_alias(&self, _aps: &ApTable, _a: ApId, _b: ApId) -> bool {
        true
    }
}

/// Convenience: is `t` an object/array/ref type in `prog` (useful when
/// enumerating reference sites).
pub fn is_pointerish(prog: &Program, t: TypeId) -> bool {
    !matches!(
        prog.types.kind(t),
        TypeKind::Integer | TypeKind::Boolean | TypeKind::Char
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;
    use tbaa_ir::path::ApRoot;

    /// Finds the AP for the given rendered form.
    fn find_ap(prog: &Program, rendered: &str) -> ApId {
        for (id, _) in prog.aps.iter() {
            if tbaa_ir::pretty::access_path(prog, id) == rendered {
                return id;
            }
        }
        panic!(
            "no access path rendered as {rendered}; have: {:?}",
            prog.aps
                .iter()
                .map(|(id, _)| tbaaa_render(prog, id))
                .collect::<Vec<_>>()
        );
    }

    fn tbaaa_render(prog: &Program, id: ApId) -> String {
        tbaa_ir::pretty::access_path(prog, id)
    }

    fn prog_fields() -> Program {
        compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t, u: T; x: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               t.f := 1; t.g := 2; u.f := 3;
               x := t.f + t.g + u.f;
             END M.",
        )
        .unwrap()
    }

    #[test]
    fn typedecl_is_coarse_fieldtypedecl_distinguishes_fields() {
        let prog = prog_fields();
        let td = Tbaa::build(&prog, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let tf = find_ap(&prog, "t.f");
        let tg = find_ap(&prog, "t.g");
        let uf = find_ap(&prog, "u.f");
        // TypeDecl: both INTEGER-typed — everything aliases.
        assert!(td.may_alias(&prog.aps, tf, tg));
        // FieldTypeDecl case 2: t.f vs t.g differ in field name.
        assert!(!ftd.may_alias(&prog.aps, tf, tg));
        // t.f vs u.f: same field, compatible bases.
        assert!(ftd.may_alias(&prog.aps, tf, uf));
        // Identity.
        assert!(ftd.may_alias(&prog.aps, tf, tf));
    }

    #[test]
    fn case_5_subscript_never_aliases_qualify() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER; T = OBJECT f: INTEGER; END;
             VAR a: A; t: T; x: INTEGER;
             BEGIN
               a := NEW(A, 3); t := NEW(T);
               a[0] := 1; t.f := 2;
               x := a[1] + t.f;
             END M.",
        )
        .unwrap();
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let a0 = find_ap(&prog, "a[0]");
        let tf = find_ap(&prog, "t.f");
        assert!(!ftd.may_alias(&prog.aps, a0, tf));
        // Case 6: a[0] vs a[1] may alias (subscripts ignored).
        let a1 = find_ap(&prog, "a[1]");
        assert!(ftd.may_alias(&prog.aps, a0, a1));
    }

    #[test]
    fn case_3_respects_address_taken() {
        // Without any VAR/WITH use of t.f, a REF INTEGER deref cannot
        // alias it.
        let no_taken = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END; P = REF INTEGER;
             VAR t: T; p: P; x: INTEGER;
             BEGIN
               t := NEW(T); p := NEW(P);
               t.f := 1; p^ := 2;
               x := t.f + p^;
             END M.",
        )
        .unwrap();
        let ftd = Tbaa::build(&no_taken, Level::FieldTypeDecl, World::Closed);
        let tf = find_ap(&no_taken, "t.f");
        let pd = find_ap(&no_taken, "p^");
        assert!(!ftd.may_alias(&no_taken.aps, tf, pd));

        // Taking the address of t.f (VAR actual) makes case 3 fire.
        let taken = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END; P = REF INTEGER;
             PROCEDURE Touch (VAR v: INTEGER) = BEGIN v := v + 1 END Touch;
             VAR t: T; p: P; x: INTEGER;
             BEGIN
               t := NEW(T); p := NEW(P);
               Touch(t.f);
               t.f := 1; p^ := 2;
               x := t.f + p^;
             END M.",
        )
        .unwrap();
        let ftd = Tbaa::build(&taken, Level::FieldTypeDecl, World::Closed);
        let tf = find_ap(&taken, "t.f");
        let pd = find_ap(&taken, "p^");
        assert!(ftd.may_alias(&taken.aps, tf, pd));
    }

    #[test]
    fn sm_level_uses_merges() {
        // T-typed and S1-typed field bases never connected by assignment:
        // SMFieldTypeRefs separates t.f from s.f even though the field
        // names match; FieldTypeDecl cannot.
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END; S1 = T OBJECT END;
             VAR t: T; s: S1; x: INTEGER;
             BEGIN
               t := NEW(T); s := NEW(S1);
               t.f := 1; s.f := 2;
               x := t.f + s.f;
             END M.",
        )
        .unwrap();
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let sm = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        let tf = find_ap(&prog, "t.f");
        let sf = find_ap(&prog, "s.f");
        assert!(ftd.may_alias(&prog.aps, tf, sf), "FieldTypeDecl merges");
        assert!(!sm.may_alias(&prog.aps, tf, sf), "SMTypeRefs separates");
    }

    #[test]
    fn dope_slots_alias_only_dope_slots() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; n, x: INTEGER;
             BEGIN
               a := NEW(A, 3);
               a[0] := 1;
               n := NUMBER(a);
               x := a[0];
             END M.",
        )
        .unwrap();
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let len = find_ap(&prog, "a.#len");
        let a0 = find_ap(&prog, "a[0]");
        assert!(!ftd.may_alias(&prog.aps, len, a0));
        assert!(ftd.may_alias(&prog.aps, len, len));
    }

    #[test]
    fn no_alias_oracle_and_trivial() {
        let prog = prog_fields();
        let tf = find_ap(&prog, "t.f");
        let tg = find_ap(&prog, "t.g");
        let no = NoAlias;
        let all = AlwaysAlias;
        assert!(no.may_alias(&prog.aps, tf, tf));
        assert!(!no.may_alias(&prog.aps, tf, tg));
        assert!(all.may_alias(&prog.aps, tf, tg));
    }

    #[test]
    fn temp_rooted_paths_never_case_1() {
        let prog = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Get (): T = BEGIN RETURN NEW(T) END Get;
             VAR x: INTEGER;
             BEGIN x := Get().f; END M.",
        )
        .unwrap();
        // The temp-rooted AP still participates in type-based aliasing.
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let temp_ap = prog
            .aps
            .iter()
            .find(|(_, p)| matches!(p.root, ApRoot::Temp(_)))
            .map(|(id, _)| id)
            .expect("temp-rooted path exists");
        assert!(ftd.may_alias(&prog.aps, temp_ap, temp_ap.to_owned()));
    }

    #[test]
    fn levels_are_monotonically_precise() {
        // Any pair SMFieldTypeRefs reports must also be reported by
        // FieldTypeDecl, and any FieldTypeDecl pair by TypeDecl.
        let prog = prog_fields();
        let td = Tbaa::build(&prog, Level::TypeDecl, World::Closed);
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let sm = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        let ids: Vec<ApId> = prog.aps.iter().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                if sm.may_alias(&prog.aps, a, b) {
                    assert!(ftd.may_alias(&prog.aps, a, b));
                }
                if ftd.may_alias(&prog.aps, a, b) {
                    assert!(td.may_alias(&prog.aps, a, b));
                }
            }
        }
    }
}
