//! Precomputed `Subtypes(T)` closures (§2.1).
//!
//! `Subtypes(T)` is the set of subtypes of `T`, including `T` itself. An
//! access path of declared type `T` may legally refer to any object whose
//! allocated type is in `Subtypes(T)`; TypeDecl declares two paths aliased
//! exactly when their subtype sets intersect.

use crate::bitset::TypeSet;
use mini_m3::types::{TypeId, TypeTable};

/// One `Subtypes(T)` bitset per type, indexed by [`TypeId`].
#[derive(Debug, Clone)]
pub struct SubtypeSets {
    sets: Vec<TypeSet>,
}

impl SubtypeSets {
    /// Computes the subtype closure for every type in the table.
    pub fn new(types: &TypeTable) -> Self {
        let n = types.len();
        let mut sets = Vec::with_capacity(n);
        for t in types.iter() {
            let mut s = TypeSet::new(n);
            for sub in types.subtypes(t) {
                s.insert(sub);
            }
            sets.push(s);
        }
        SubtypeSets { sets }
    }

    /// The `Subtypes(T)` set.
    pub fn set(&self, t: TypeId) -> &TypeSet {
        &self.sets[t.0 as usize]
    }

    /// `Subtypes(a) ∩ Subtypes(b) ≠ ∅` — the TypeDecl compatibility test.
    pub fn compatible(&self, a: TypeId, b: TypeId) -> bool {
        self.set(a).intersects(self.set(b))
    }

    /// Number of types covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hierarchy of Figure 1 in the paper.
    fn figure1() -> (TypeTable, TypeId, TypeId, TypeId) {
        let checked = mini_m3::compile(
            "MODULE Fig1;
             TYPE
               T = OBJECT f, g: T; END;
               S1 = T OBJECT END;
               S2 = T OBJECT END;
               S3 = T OBJECT END;
             BEGIN END Fig1.",
        )
        .unwrap();
        let t = checked.types.by_name("T").unwrap();
        let s1 = checked.types.by_name("S1").unwrap();
        let s2 = checked.types.by_name("S2").unwrap();
        (checked.types, t, s1, s2)
    }

    #[test]
    fn figure_1_compatibility() {
        let (types, t, s1, s2) = figure1();
        let subs = SubtypeSets::new(&types);
        // t and s may reference the same location, t and u may, s and u not.
        assert!(subs.compatible(t, s1));
        assert!(subs.compatible(t, s2));
        assert!(!subs.compatible(s1, s2));
        // Reflexive.
        assert!(subs.compatible(t, t));
    }

    #[test]
    fn scalar_types_self_compatible_only() {
        let (types, t, ..) = figure1();
        let subs = SubtypeSets::new(&types);
        let int = types.integer();
        let boolean = types.boolean();
        assert!(subs.compatible(int, int));
        assert!(!subs.compatible(int, boolean));
        assert!(!subs.compatible(int, t));
    }

    #[test]
    fn subtype_set_contents() {
        let (types, t, s1, _) = figure1();
        let subs = SubtypeSets::new(&types);
        assert_eq!(subs.set(t).len(), 4);
        assert!(subs.set(t).contains(s1));
        assert_eq!(subs.set(s1).len(), 1);
    }
}
