//! Backend shard lifecycles: in-process servers, spawned `tbaad`
//! children, or externally-owned daemons the router merely attaches to.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tbaa_server::net::Conn;
use tbaa_server::{Server, ServerConfig, ServerHandle};

/// How the router obtains its N backends.
#[derive(Debug, Clone)]
pub enum BackendSpec {
    /// Run each shard as an in-process [`Server`] on its own ephemeral
    /// port (tests, single-binary deployments). The config's `addr` and
    /// `unix_path` are overridden per shard.
    InProcess {
        /// Per-shard server configuration (capacity, workers, timeouts).
        config: ServerConfig,
    },
    /// Spawn each shard as a `tbaad` child process.
    Spawn {
        /// Path to the `tbaad` binary.
        bin: PathBuf,
        /// Worker threads per backend.
        workers: usize,
        /// Session capacity per backend.
        capacity: usize,
        /// Base directory for the backends' durable session journals;
        /// each shard journals under `<dir>/shard<i>` and self-recovers
        /// its sessions on respawn ([`tbaa_server::journal`]). `None`
        /// disables journaling (the router falls back to replaying its
        /// in-memory journal after a respawn).
        journal_dir: Option<PathBuf>,
        /// Compile worker threads per backend (0 = one per host core).
        compile_threads: usize,
        /// Engines prewarmed per admitted load (0 = off, 1 = default).
        prewarm: usize,
    },
    /// Attach to already-running daemons; the router owns neither their
    /// lifecycle nor their respawn (a dead attached backend stays dead).
    Attach {
        /// One `HOST:PORT` per shard.
        addrs: Vec<String>,
    },
}

impl BackendSpec {
    /// How many shards this spec yields for a requested count:
    /// `Attach` is pinned to its address list.
    pub fn shard_count(&self, requested: usize) -> usize {
        match self {
            BackendSpec::Attach { addrs } => addrs.len(),
            _ => requested.max(1),
        }
    }
}

/// One shard's backend process, behind a uniform lifecycle.
pub(crate) trait BackendHost: Send {
    /// Human-readable identity for logs and stats.
    fn label(&self) -> String;
    /// Current `HOST:PORT`.
    fn addr(&self) -> String;
    /// Replaces a dead backend with a fresh one, returning its address.
    fn respawn(&mut self) -> Result<String, String>;
    /// Forcibly terminates the backend (fault injection).
    fn kill(&mut self);
    /// Gracefully shuts the backend down (router exit).
    fn shutdown(&mut self);
}

/// Builds one host per shard from the spec.
pub(crate) fn build_hosts(
    spec: &BackendSpec,
    shards: usize,
) -> std::io::Result<Vec<Box<dyn BackendHost>>> {
    let mut hosts: Vec<Box<dyn BackendHost>> = Vec::with_capacity(shards);
    match spec {
        BackendSpec::InProcess { config } => {
            for shard in 0..shards {
                // Shards must not share a journal: each gets its own
                // subdirectory, preserved across respawns so a restarted
                // shard recovers its own sessions.
                let mut config = config.clone();
                config.journal_dir = config
                    .journal_dir
                    .map(|base| base.join(format!("shard{shard}")));
                hosts.push(Box::new(InProcessHost::start(config)?));
            }
        }
        BackendSpec::Spawn {
            bin,
            workers,
            capacity,
            journal_dir,
            compile_threads,
            prewarm,
        } => {
            for shard in 0..shards {
                let journal_dir = journal_dir
                    .as_ref()
                    .map(|base| base.join(format!("shard{shard}")));
                hosts.push(Box::new(SpawnHost::start(
                    bin.clone(),
                    *workers,
                    *capacity,
                    journal_dir,
                    *compile_threads,
                    *prewarm,
                )?));
            }
        }
        BackendSpec::Attach { addrs } => {
            for addr in addrs {
                hosts.push(Box::new(AttachHost { addr: addr.clone() }));
            }
        }
    }
    Ok(hosts)
}

/// An in-process [`Server`] on an ephemeral port.
struct InProcessHost {
    config: ServerConfig,
    handle: Option<ServerHandle>,
    addr: String,
}

impl InProcessHost {
    fn start(mut config: ServerConfig) -> std::io::Result<InProcessHost> {
        // Each shard needs its own ephemeral port; a shared unix socket
        // path would make shards trample each other.
        config.addr = "127.0.0.1:0".into();
        config.unix_path = None;
        let server = Server::bind(config.clone())?;
        let addr = server.local_addr().to_string();
        Ok(InProcessHost {
            config,
            handle: Some(server.spawn()),
            addr,
        })
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.state().request_shutdown();
            let _ = handle.join();
        }
    }
}

impl BackendHost for InProcessHost {
    fn label(&self) -> String {
        format!("in-process:{}", self.addr)
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }

    fn respawn(&mut self) -> Result<String, String> {
        self.stop();
        let fresh = InProcessHost::start(self.config.clone())
            .map_err(|e| format!("respawn failed: {e}"))?;
        *self = fresh;
        Ok(self.addr.clone())
    }

    fn kill(&mut self) {
        // Thread-backed servers cannot be killed harder than a drain:
        // the flag stops the accept loop and every pooled connection
        // gets EOF once its worker drains.
        self.stop();
    }

    fn shutdown(&mut self) {
        self.stop();
    }
}

/// A spawned `tbaad` child on an ephemeral port, discovered by scraping
/// the startup banner.
struct SpawnHost {
    bin: PathBuf,
    workers: usize,
    capacity: usize,
    journal_dir: Option<PathBuf>,
    compile_threads: usize,
    prewarm: usize,
    child: Option<Child>,
    addr: String,
}

impl SpawnHost {
    fn start(
        bin: PathBuf,
        workers: usize,
        capacity: usize,
        journal_dir: Option<PathBuf>,
        compile_threads: usize,
        prewarm: usize,
    ) -> std::io::Result<SpawnHost> {
        let mut args = vec![
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--workers".to_string(),
            workers.to_string(),
            "--capacity".to_string(),
            capacity.to_string(),
            "--compile-threads".to_string(),
            compile_threads.to_string(),
            "--prewarm".to_string(),
            prewarm.to_string(),
        ];
        if let Some(dir) = &journal_dir {
            args.push("--journal-dir".to_string());
            args.push(dir.display().to_string());
        }
        let mut child = Command::new(&bin)
            .args(&args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        BufReader::new(stdout).read_line(&mut banner)?;
        let addr = banner
            .trim()
            .strip_prefix("tbaad listening on ")
            .map(str::to_string)
            .ok_or_else(|| {
                let _ = child.kill();
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected tbaad banner: {banner:?}"),
                )
            })?;
        Ok(SpawnHost {
            bin,
            workers,
            capacity,
            journal_dir,
            compile_threads,
            prewarm,
            child: Some(child),
            addr,
        })
    }

    fn hard_kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl BackendHost for SpawnHost {
    fn label(&self) -> String {
        format!("spawn:{}", self.addr)
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }

    fn respawn(&mut self) -> Result<String, String> {
        self.hard_kill();
        let fresh = SpawnHost::start(
            self.bin.clone(),
            self.workers,
            self.capacity,
            self.journal_dir.clone(),
            self.compile_threads,
            self.prewarm,
        )
        .map_err(|e| format!("respawn failed: {e}"))?;
        *self = fresh;
        Ok(self.addr.clone())
    }

    fn kill(&mut self) {
        self.hard_kill();
    }

    fn shutdown(&mut self) {
        let Some(child) = self.child.as_mut() else {
            return;
        };
        // Ask nicely first so the backend drains in-flight work.
        let asked = Conn::connect_tcp(&self.addr)
            .and_then(|mut c| c.write_line(r#"{"op":"shutdown"}"#))
            .is_ok();
        if asked {
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    self.child = None;
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        self.hard_kill();
    }
}

/// An externally-owned daemon: no lifecycle, no respawn.
struct AttachHost {
    addr: String,
}

impl BackendHost for AttachHost {
    fn label(&self) -> String {
        format!("attach:{}", self.addr)
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }

    fn respawn(&mut self) -> Result<String, String> {
        Err(format!(
            "backend {} is attached, not owned; cannot respawn",
            self.addr
        ))
    }

    fn kill(&mut self) {}

    fn shutdown(&mut self) {}
}
