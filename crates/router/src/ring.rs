//! Consistent hash ring over session content keys.
//!
//! Each shard contributes `vnodes` points to the ring, hashed from
//! `"{shard}#{vnode}"` — a function of the shard *index*, not its
//! address, so a respawned backend (new port) keeps exactly the same
//! key ownership and the session journal replays onto the right shard.

use tbaa_server::session::content_hash;

/// A fixed-membership consistent hash ring.
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

/// FNV-1a clusters short same-shape strings (vnode labels, `src:` keys)
/// into narrow high-bit bands, which collapses ring ownership onto one
/// shard. The splitmix64 finalizer spreads those bands across the full
/// u64 space; both ring points and lookups go through it.
fn spread(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

impl Ring {
    /// A ring of `shards` members with `vnodes` points each.
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        assert!(shards >= 1, "a ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((spread(content_hash(format!("{shard}#{vnode}").as_bytes())), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Ring { points, shards }
    }

    /// Member count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (display form of a session content key):
    /// the first ring point at or after the key's hash, wrapping around.
    pub fn shard_of(&self, key: &str) -> usize {
        let h = spread(content_hash(key.as_bytes()));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_deterministic_and_total() {
        let a = Ring::new(3, 64);
        let b = Ring::new(3, 64);
        for i in 0..200 {
            let key = format!("bench:prog{i}@2");
            let shard = a.shard_of(&key);
            assert!(shard < 3);
            assert_eq!(shard, b.shard_of(&key), "ring must be a pure function");
        }
    }

    #[test]
    fn every_shard_owns_some_keys() {
        let ring = Ring::new(4, 64);
        let mut seen = [false; 4];
        for i in 0..500 {
            seen[ring.shard_of(&format!("src:{i:016x}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "owners: {seen:?}");
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let ring = Ring::new(3, 64);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            counts[ring.shard_of(&format!("bench:p{i}@1"))] += 1;
        }
        // With 64 vnodes the worst shard should still hold well under
        // 2/3 of the keyspace.
        assert!(counts.iter().all(|&c| c < 2000), "skewed: {counts:?}");
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1, 8);
        assert_eq!(ring.shard_of("bench:ktree@1"), 0);
        assert_eq!(ring.shard_of("src:0000000000000000"), 0);
    }
}
