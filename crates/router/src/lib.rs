//! tbaa-router: a session-sharded front tier over `tbaad` backends.
//!
//! The router speaks the same newline-delimited JSON protocol as a
//! single `tbaad` and fans sessions out across N backends by
//! consistently hashing each session's *content key* (`bench:NAME@SCALE`
//! or `src:HASH`). Clients keep using [`tbaa_server::Client`] —
//! unchanged — and get horizontal scale, per-backend connection
//! pooling, request pipelining, and transparent recovery (respawn +
//! journal re-`load`) when an owned backend dies.
//!
//! ```no_run
//! use tbaa_router::{BackendSpec, Router, RouterConfig};
//!
//! let config = RouterConfig::builder()
//!     .addr("127.0.0.1:0")
//!     .shards(3)
//!     .backend(BackendSpec::InProcess {
//!         config: tbaa_server::ServerConfig::default(),
//!     })
//!     .build();
//! let handle = Router::bind(config).unwrap().spawn();
//! let mut client = tbaa_server::Client::connect(handle.addr()).unwrap();
//! let loaded = client.load_bench("ktree", 2).unwrap();
//! let alias = client.alias(&loaded.session, None, None, &[]).unwrap();
//! assert!(alias.results.is_empty()); // empty batch, routed and answered
//! ```

mod backend;
mod ring;
mod router;

pub use backend::BackendSpec;
pub use ring::Ring;
pub use router::{Router, RouterConfig, RouterConfigBuilder, RouterHandle, RouterState};
