//! The front tier: accept loop, session table, shard proxying.
//!
//! The router speaks the exact `tbaad` wire protocol on its own
//! listener and owns a unified session-id space (`r1`, `r2`, …): a
//! `load` is hashed by content key to its owning shard, forwarded, and
//! the backend's session id is hidden behind a router id that stays
//! stable across backend respawns. Queries are rewritten to the
//! backend id on the way in and back to the router id on the way out —
//! and because the server echoes the *requested* id and the json
//! encoder is deterministic, a proxied reply is byte-identical to a
//! direct one.
//!
//! Failure model: any transport error on a backend exchange triggers
//! bounded retry-with-backoff. Between attempts the shard is probed;
//! if unreachable it is respawned and its sessions are re-`load`ed
//! from the journal (the stored `load` request lines), after which the
//! session table points at the fresh backend ids. Requests that
//! exhaust their retries return a structured
//! `{"ok":false,"error":{"kind":"unavailable",..}}` reply.

use std::borrow::Cow;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tbaa_server::json::{parse, Value};
use tbaa_server::metrics::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};
use tbaa_server::net::{self, Conn, DualListener, LineReader, LineService, ServeOptions};
use tbaa_server::proto::{self, decode_request, error_reply, ok_reply, ProtoError, Request};
use tbaa_server::session::{content_hash, SessionKey};

use crate::backend::{build_hosts, BackendHost, BackendSpec};
use crate::ring::Ring;

/// Router configuration. Prefer [`RouterConfig::builder`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Optional Unix-domain socket path (unix only; ignored elsewhere).
    pub unix_path: Option<std::path::PathBuf>,
    /// Worker count == maximum concurrently served client connections.
    pub workers: usize,
    /// Requested shard count (`Attach` specs override it with their
    /// address count).
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Per-exchange backend I/O timeout (and client I/O timeout).
    pub io_timeout: Duration,
    /// Post-shutdown drain window per client connection.
    pub drain_grace: Duration,
    /// Retries per request after the first failed exchange.
    pub max_retries: u32,
    /// Base backoff between retries (linearly increasing per attempt).
    pub retry_backoff: Duration,
    /// Backend shard source.
    pub backend: BackendSpec,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            unix_path: None,
            workers: 16,
            shards: 2,
            vnodes: 64,
            io_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_millis(500),
            max_retries: 4,
            retry_backoff: Duration::from_millis(50),
            backend: BackendSpec::InProcess {
                config: tbaa_server::ServerConfig::default(),
            },
        }
    }
}

impl RouterConfig {
    /// A builder starting from [`RouterConfig::default`].
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder {
            config: RouterConfig::default(),
        }
    }
}

/// Builder for [`RouterConfig`]; see [`RouterConfig::builder`].
#[derive(Debug, Clone)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// TCP bind address (port 0 for ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Unix-domain socket path (unix only; ignored elsewhere).
    pub fn unix_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.unix_path = Some(path.into());
        self
    }

    /// Worker count == maximum concurrently served client connections.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Requested shard count.
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Virtual nodes per shard on the hash ring.
    pub fn vnodes(mut self, n: usize) -> Self {
        self.config.vnodes = n;
        self
    }

    /// Per-exchange backend I/O timeout.
    pub fn io_timeout(mut self, d: Duration) -> Self {
        self.config.io_timeout = d;
        self
    }

    /// Post-shutdown drain window per client connection.
    pub fn drain_grace(mut self, d: Duration) -> Self {
        self.config.drain_grace = d;
        self
    }

    /// Retries per request after the first failed exchange.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.max_retries = n;
        self
    }

    /// Base backoff between retries.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.config.retry_backoff = d;
        self
    }

    /// Backend shard source.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.config.backend = spec;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> RouterConfig {
        self.config
    }
}

/// One live session as the router sees it.
#[derive(Debug, Clone)]
struct SessionEntry {
    shard: usize,
    backend_sid: String,
    key: String,
    /// The original `load` request line — the journal entry replayed
    /// into a respawned backend.
    load_line: String,
}

/// Router-owned session ids and the content journal.
#[derive(Default)]
struct SessionTable {
    next: u64,
    by_sid: HashMap<String, SessionEntry>,
    by_key: HashMap<String, String>,
}

/// A pooled backend connection, tagged with the shard generation it was
/// opened under so stale sockets never re-enter the pool after a
/// recovery.
struct BackendConn {
    writer: Conn,
    reader: LineReader,
    generation: u64,
}

/// One backend shard: its host, connection pool, and counters.
struct Shard {
    index: usize,
    host: Mutex<Box<dyn BackendHost>>,
    addr: Mutex<String>,
    pool: Mutex<Vec<BackendConn>>,
    /// Bumped on every completed recovery; observers that saw an older
    /// generation know someone else already recovered and just retry.
    generation: AtomicU64,
    requests: Arc<Counter>,
    request_us: Arc<Histogram>,
}

/// Shared router state.
pub struct RouterState {
    shards: Vec<Shard>,
    ring: Ring,
    sessions: Mutex<SessionTable>,
    metrics: Arc<Registry>,
    shutdown: AtomicBool,
    started: Instant,
    io_timeout: Duration,
    max_retries: u32,
    retry_backoff: Duration,
}

impl RouterState {
    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (same effect as the wire verb).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The router's own metrics registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a content key's display form (`bench:ktree@2`).
    pub fn shard_of(&self, key_display: &str) -> usize {
        self.ring.shard_of(key_display)
    }

    /// Forcibly kills shard `idx`'s backend (fault injection for tests
    /// and the load harness); the next request owned by it triggers
    /// recovery.
    pub fn kill_backend(&self, idx: usize) {
        let shard = &self.shards[idx];
        shard.host.lock().expect("host poisoned").kill();
        shard.pool.lock().expect("pool poisoned").clear();
    }

    /// Total respawns performed so far.
    pub fn respawns(&self) -> u64 {
        self.metrics.counter("router.respawns").get()
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    config: RouterConfig,
    state: Arc<RouterState>,
    listener: DualListener,
}

/// Handle to a router running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl RouterHandle {
    /// The TCP address the router is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state.
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Whether the router thread has exited.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Waits for the router to drain, shut its owned backends down, and
    /// exit.
    pub fn join(self) -> std::io::Result<()> {
        self.join.join().expect("router thread panicked")
    }
}

impl Router {
    /// Starts (or attaches to) the backends and binds the front
    /// listener.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        let started = Instant::now();
        let shard_count = config.backend.shard_count(config.shards);
        let hosts = build_hosts(&config.backend, shard_count)?;
        let metrics = Arc::new(Registry::new());
        let shards = hosts
            .into_iter()
            .enumerate()
            .map(|(index, host)| Shard {
                index,
                addr: Mutex::new(host.addr()),
                host: Mutex::new(host),
                pool: Mutex::new(Vec::new()),
                generation: AtomicU64::new(0),
                requests: metrics.counter(&format!("router.shard{index}.requests")),
                request_us: metrics
                    .histogram(&format!("router.shard{index}.request_us"), LATENCY_US_BUCKETS),
            })
            .collect();
        let listener = DualListener::bind(&config.addr, config.unix_path.as_deref())?;
        let state = Arc::new(RouterState {
            shards,
            ring: Ring::new(shard_count, config.vnodes),
            sessions: Mutex::new(SessionTable::default()),
            metrics,
            shutdown: AtomicBool::new(false),
            started,
            io_timeout: config.io_timeout,
            max_retries: config.max_retries,
            retry_backoff: config.retry_backoff,
        });
        Ok(Router {
            config,
            state,
            listener,
        })
    }

    /// The bound TCP address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// The shared state.
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Runs the router on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let addr = self.local_addr();
        let state = self.state.clone();
        let join = std::thread::Builder::new()
            .name("tbaa-router-accept".into())
            .spawn(move || self.run())
            .expect("spawn router thread");
        RouterHandle { addr, state, join }
    }

    /// Serves until a `shutdown` request arrives, drains client
    /// connections, then shuts owned backends down (a no-op for
    /// attached backends).
    pub fn run(self) -> std::io::Result<()> {
        let Router {
            config,
            state,
            listener,
        } = self;
        let opts = ServeOptions {
            workers: config.workers,
            io_timeout: config.io_timeout,
            drain_grace: config.drain_grace,
        };
        let result = net::serve(listener, opts, Arc::new(RouterService(state.clone())));
        for shard in &state.shards {
            shard.host.lock().expect("host poisoned").shutdown();
        }
        result
    }
}

/// Adapts routing to the generic serve loop.
struct RouterService(Arc<RouterState>);

impl LineService for RouterService {
    fn handle(&self, line: &str, out: &mut String) {
        route_line(&self.0, line, out);
    }

    fn handle_batch(&self, lines: &[String], out: &mut String) {
        route_batch(&self.0, lines, out);
    }

    fn draining(&self) -> bool {
        self.0.is_shutting_down()
    }

    fn on_connect(&self) {
        self.0.metrics.counter("router.connections.accepted").inc();
        self.0.metrics.gauge("router.connections.active").inc();
    }

    fn on_disconnect(&self) {
        self.0.metrics.gauge("router.connections.active").dec();
    }
}

/// The content key a `load` request addresses, mirroring the session
/// store's identity rules (the router never compiles anything).
fn load_key(source: &Option<Cow<'_, str>>, bench: &Option<Cow<'_, str>>, scale: u32) -> String {
    match (source, bench) {
        (Some(src), None) => SessionKey::Source {
            hash: content_hash(src.as_bytes()),
        }
        .display(),
        (None, Some(name)) => SessionKey::Bench {
            name: name.to_string(),
            scale,
        }
        .display(),
        _ => unreachable!("decode_request enforces exactly one"),
    }
}

/// Replaces the value of an existing `session` field in place,
/// preserving field order — the whole trick behind byte-identical
/// proxied replies.
fn set_session(v: &mut Value<'_>, sid: &str) {
    if let Value::Object(fields) = v {
        for (k, val) in fields.iter_mut() {
            if k.as_ref() == "session" {
                *val = Value::Str(sid.to_string().into());
            }
        }
    }
}

fn unavailable_reply(shard: usize, attempts: u32, out: &mut String) {
    error_reply(
        "unavailable",
        &format!("shard {shard} backend unavailable after {attempts} attempts"),
    )
    .encode_into(out);
}

fn route_line(state: &Arc<RouterState>, line: &str, out: &mut String) {
    let t0 = Instant::now();
    route_inner(state, line, out);
    state
        .metrics
        .histogram("router.request_us", LATENCY_US_BUCKETS)
        .observe_duration(t0.elapsed());
}

fn route_inner(state: &Arc<RouterState>, line: &str, out: &mut String) {
    let req = match decode_request(line) {
        Err(ProtoError::Json(e)) => {
            state.metrics.counter("router.requests.invalid").inc();
            error_reply("parse", &e.to_string()).encode_into(out);
            return;
        }
        Err(ProtoError::Invalid(m)) => {
            state.metrics.counter("router.requests.invalid").inc();
            error_reply("proto", &m).encode_into(out);
            return;
        }
        Ok(req) => req,
    };
    state
        .metrics
        .counter(&format!("router.requests.{}", proto::verb(&req)))
        .inc();
    match req {
        Request::Load {
            ref source,
            ref bench,
            scale,
            ..
        } => route_load(state, line, &load_key(source, bench, scale), out),
        Request::Alias { ref session, .. }
        | Request::Pairs { ref session, .. }
        | Request::Rle { ref session, .. } => route_query(state, line, session, out),
        Request::Unload { ref session } => route_unload(state, session, out),
        Request::Stats => route_stats(state, out),
        Request::Shutdown => {
            state.request_shutdown();
            ok_reply(vec![("draining", Value::Bool(true))]).encode_into(out);
        }
    }
}

fn route_load(state: &Arc<RouterState>, line: &str, key: &str, out: &mut String) {
    let shard = state.ring.shard_of(key);
    let owned_line = line.to_string();
    let raw = match call_shard(state, shard, &|| owned_line.clone()) {
        Ok(raw) => raw,
        Err(attempts) => return unavailable_reply(shard, attempts, out),
    };
    let Ok(mut v) = parse(&raw) else {
        out.push_str(&raw); // backend always emits valid JSON; pass through defensively
        return;
    };
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        out.push_str(&raw); // structured errors (compile, no_bench) pass through verbatim
        return;
    }
    let backend_sid = v
        .get("session")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let rsid = {
        let mut table = state.sessions.lock().expect("sessions poisoned");
        let rsid = match table.by_key.get(key) {
            Some(rsid) => rsid.clone(),
            None => {
                table.next += 1;
                let rsid = format!("r{}", table.next);
                table.by_key.insert(key.to_string(), rsid.clone());
                rsid
            }
        };
        table.by_sid.insert(
            rsid.clone(),
            SessionEntry {
                shard,
                backend_sid,
                key: key.to_string(),
                load_line: line.to_string(),
            },
        );
        rsid
    };
    set_session(&mut v, &rsid);
    v.encode_into(out);
}

fn route_query(state: &Arc<RouterState>, line: &str, rsid: &str, out: &mut String) {
    let known = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table.by_sid.contains_key(rsid)
    };
    if !known {
        // Match the backend's reply byte-for-byte so clients cannot tell
        // the router from a single daemon.
        error_reply("no_session", &format!("no live session `{rsid}`")).encode_into(out);
        return;
    }
    let parsed = match parse(line) {
        Ok(parsed) => parsed.into_owned(),
        Err(_) => {
            error_reply("parse", "unreadable request").encode_into(out);
            return;
        }
    };
    let Some((shard, make_line)) = query_line_maker(state, rsid, parsed) else {
        error_reply("no_session", &format!("no live session `{rsid}`")).encode_into(out);
        return;
    };
    let raw = match call_shard(state, shard, &make_line) {
        Ok(raw) => raw,
        Err(attempts) => return unavailable_reply(shard, attempts, out),
    };
    rewrite_reply_sid(raw, rsid, out);
}

/// Builds the per-attempt request-line closure for a query: every
/// attempt re-resolves the backend sid from the session table, because
/// a recovery between attempts re-loads the session under a fresh
/// backend id.
fn query_line_maker(
    state: &Arc<RouterState>,
    rsid: &str,
    parsed: Value<'static>,
) -> Option<(usize, impl Fn() -> String)> {
    let state = state.clone();
    let rsid = rsid.to_string();
    let shard = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table.by_sid.get(&rsid)?.shard
    };
    Some((shard, move || {
        let backend_sid = {
            let table = state.sessions.lock().expect("sessions poisoned");
            table
                .by_sid
                .get(&rsid)
                .map(|e| e.backend_sid.clone())
                .unwrap_or_else(|| rsid.clone())
        };
        let mut line = parsed.clone();
        set_session(&mut line, &backend_sid);
        line.encode()
    }))
}

/// Rewrites a reply's `session` field back to the router id, appending
/// the result to `out`. Error replies carry no `session` field and pass
/// through untouched.
fn rewrite_reply_sid(raw: String, rsid: &str, out: &mut String) {
    if let Ok(mut v) = parse(&raw) {
        if v.get("session").is_some() {
            set_session(&mut v, rsid);
            v.encode_into(out);
            return;
        }
    }
    out.push_str(&raw);
}

fn route_unload(state: &Arc<RouterState>, rsid: &str, out: &mut String) {
    let entry = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table.by_sid.get(rsid).cloned()
    };
    let Some(entry) = entry else {
        // The daemon answers unload of an unknown id with a calm false.
        ok_reply(vec![("unloaded", Value::Bool(false))]).encode_into(out);
        return;
    };
    let line = Value::object(vec![
        ("op", Value::Str("unload".into())),
        ("session", Value::Str(entry.backend_sid.as_str().into())),
    ])
    .encode();
    let raw = match call_shard(state, entry.shard, &|| line.clone()) {
        Ok(raw) => raw,
        Err(attempts) => return unavailable_reply(entry.shard, attempts, out),
    };
    if parse(&raw).ok().and_then(|v| v.get("ok").and_then(Value::as_bool)) == Some(true) {
        let mut table = state.sessions.lock().expect("sessions poisoned");
        table.by_sid.remove(rsid);
        table.by_key.remove(&entry.key);
    }
    out.push_str(&raw);
}

/// One request/reply exchange with bounded retry. On failure the shard
/// is probed and, when unreachable, respawned with its journal
/// replayed; `make_line` re-renders the request per attempt so a
/// post-recovery backend sid is picked up. Returns the attempt count on
/// exhaustion.
fn call_shard(
    state: &Arc<RouterState>,
    shard_idx: usize,
    make_line: &dyn Fn() -> String,
) -> Result<String, u32> {
    let shard = &state.shards[shard_idx];
    let mut attempt: u32 = 0;
    loop {
        let generation = shard.generation.load(Ordering::SeqCst);
        match exchange_once(state, shard, generation, &make_line()) {
            Ok(raw) => return Ok(raw),
            Err(_) if attempt < state.max_retries => {
                attempt += 1;
                state.metrics.counter("router.retries").inc();
                recover(state, shard_idx, generation);
                std::thread::sleep(state.retry_backoff * attempt);
            }
            Err(_) => return Err(attempt + 1),
        }
    }
}

/// Writes one line and strictly reads one reply over a pooled
/// connection. Any error poisons the connection (dropped, not
/// repooled).
fn exchange_once(
    state: &Arc<RouterState>,
    shard: &Shard,
    generation: u64,
    line: &str,
) -> std::io::Result<String> {
    let mut conn = checkout(state, shard, generation)?;
    let t0 = Instant::now();
    conn.writer.write_line(line)?;
    let reply = conn.reader.read_line_strict()?;
    shard.requests.inc();
    shard.request_us.observe_duration(t0.elapsed());
    repool(shard, conn);
    Ok(reply)
}

fn checkout(
    state: &Arc<RouterState>,
    shard: &Shard,
    generation: u64,
) -> std::io::Result<BackendConn> {
    if let Some(conn) = shard.pool.lock().expect("pool poisoned").pop() {
        if conn.generation == generation {
            return Ok(conn);
        }
        // Stale generation: the socket predates a recovery.
    }
    let addr = shard.addr.lock().expect("addr poisoned").clone();
    let writer = Conn::connect_tcp(&addr)?;
    writer.set_read_timeout(Some(state.io_timeout))?;
    writer.set_write_timeout(Some(state.io_timeout))?;
    let reader = LineReader::new(writer.try_clone()?);
    Ok(BackendConn {
        writer,
        reader,
        generation,
    })
}

fn repool(shard: &Shard, conn: BackendConn) {
    if conn.generation == shard.generation.load(Ordering::SeqCst) {
        shard.pool.lock().expect("pool poisoned").push(conn);
    }
}

/// Post-failure recovery, serialized on the shard's host lock. The
/// generation observed at exchange time decides whether this thread
/// does the work or a concurrent failure already did it.
fn recover(state: &Arc<RouterState>, shard_idx: usize, observed_generation: u64) {
    let shard = &state.shards[shard_idx];
    let mut host = shard.host.lock().expect("host poisoned");
    if shard.generation.load(Ordering::SeqCst) != observed_generation {
        return; // someone recovered while we waited for the lock
    }
    shard.pool.lock().expect("pool poisoned").clear();
    let addr = shard.addr.lock().expect("addr poisoned").clone();
    let probe_timeout = state.io_timeout.min(Duration::from_secs(2));
    if !probe(&addr, probe_timeout) {
        match host.respawn() {
            Ok(new_addr) => {
                state.metrics.counter("router.respawns").inc();
                // A backend with a durable journal recovers its own
                // sessions — with the *same* backend sids — before it
                // accepts connections. Attaching to it is both cheaper
                // and cleaner than re-sending every load line; the
                // in-memory replay is the fallback for journal-less
                // (or torn-journal) backends.
                if backend_self_recovered(state, shard_idx, &new_addr) {
                    state.metrics.counter("router.recoveries.attached").inc();
                } else {
                    state.metrics.counter("router.recoveries.replayed").inc();
                    replay_journal(state, shard_idx, &new_addr);
                }
                *shard.addr.lock().expect("addr poisoned") = new_addr;
            }
            Err(_) => {
                // Attached backend: nothing we can do; retries will keep
                // probing until the operator brings it back.
            }
        }
    }
    shard.generation.fetch_add(1, Ordering::SeqCst);
}

/// Whether the freshly respawned backend at `addr` already recovered
/// this shard's sessions from its own durable journal
/// (`tbaad --journal-dir`). The backend replays *before* it accepts
/// connections, and its journal guarantees the recovered sessions keep
/// their pre-crash backend sids — so the router checks each mapped
/// backend sid individually against the `engines` table of one `stats`
/// reply (keyed by live session id) and attaches only when every one
/// survived. A count heuristic is not enough: a journal that recovered
/// a same-sized but *different* session set (say, a replay failure
/// offset by an extra live session) would leave dangling sid mappings.
/// Any missing sid, or an unreadable `stats` reply, falls back to the
/// in-memory replay path.
fn backend_self_recovered(state: &Arc<RouterState>, shard_idx: usize, addr: &str) -> bool {
    let expected: Vec<String> = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table
            .by_sid
            .values()
            .filter(|e| e.shard == shard_idx)
            .map(|e| e.backend_sid.clone())
            .collect()
    };
    if expected.is_empty() {
        return true; // nothing to replay either way
    }
    let Some(stats) = fetch_stats(addr, state.io_timeout.min(Duration::from_secs(2))) else {
        return false;
    };
    let Some(engines) = stats.get("engines") else {
        return false;
    };
    expected.iter().all(|sid| engines.get(sid).is_some())
}

/// One `stats` round trip against a raw backend address, parsed.
fn fetch_stats(addr: &str, timeout: Duration) -> Option<Value<'static>> {
    let mut conn = Conn::connect_tcp(addr).ok()?;
    conn.set_read_timeout(Some(timeout)).ok()?;
    conn.set_write_timeout(Some(timeout)).ok()?;
    conn.write_line(r#"{"op":"stats"}"#).ok()?;
    let read_half = conn.try_clone().ok()?;
    let raw = LineReader::new(read_half).read_line_strict().ok()?;
    Some(parse(&raw).ok()?.into_owned())
}

/// Whether a backend answers a `stats` round trip within `timeout`.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut conn) = Conn::connect_tcp(addr) else {
        return false;
    };
    if conn.set_read_timeout(Some(timeout)).is_err()
        || conn.set_write_timeout(Some(timeout)).is_err()
        || conn.write_line(r#"{"op":"stats"}"#).is_err()
    {
        return false;
    }
    let Ok(read_half) = conn.try_clone() else {
        return false;
    };
    LineReader::new(read_half).read_line_strict().is_ok()
}

/// Re-`load`s every journaled session owned by `shard_idx` into the
/// fresh backend at `addr`, updating the table's backend sids.
fn replay_journal(state: &Arc<RouterState>, shard_idx: usize, addr: &str) {
    let entries: Vec<(String, String)> = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table
            .by_sid
            .iter()
            .filter(|(_, e)| e.shard == shard_idx)
            .map(|(rsid, e)| (rsid.clone(), e.load_line.clone()))
            .collect()
    };
    if entries.is_empty() {
        return;
    }
    let Ok(writer) = Conn::connect_tcp(addr) else {
        return; // next retry probes again
    };
    let _ = writer.set_read_timeout(Some(state.io_timeout));
    let _ = writer.set_write_timeout(Some(state.io_timeout));
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = LineReader::new(read_half);
    for (rsid, load_line) in entries {
        if writer.write_line(&load_line).is_err() {
            return;
        }
        let Ok(raw) = reader.read_line_strict() else {
            return;
        };
        let Ok(v) = parse(&raw) else { continue };
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            continue; // it compiled once; a failure here is not actionable
        }
        if let Some(backend_sid) = v.get("session").and_then(Value::as_str) {
            state.metrics.counter("router.journal_loads_replayed").inc();
            let mut table = state.sessions.lock().expect("sessions poisoned");
            if let Some(entry) = table.by_sid.get_mut(&rsid) {
                entry.backend_sid = backend_sid.to_string();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pipelined batches
// ---------------------------------------------------------------------

/// A query ready to pipeline: its router sid and parsed request.
struct PreppedQuery {
    verb: &'static str,
    rsid: String,
    parsed: Value<'static>,
}

/// Classifies a line as a pipelineable query (alias/pairs/rle on a
/// known session) and names its owning shard.
fn prep_query(state: &Arc<RouterState>, line: &str) -> Option<(usize, PreppedQuery)> {
    let req = decode_request(line).ok()?;
    let (verb, rsid) = match &req {
        Request::Alias { session, .. } => ("alias", session.to_string()),
        Request::Pairs { session, .. } => ("pairs", session.to_string()),
        Request::Rle { session, .. } => ("rle", session.to_string()),
        _ => return None,
    };
    let shard = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table.by_sid.get(&rsid)?.shard
    };
    let parsed = parse(line).ok()?.into_owned();
    Some((
        shard,
        PreppedQuery {
            verb,
            rsid,
            parsed,
        },
    ))
}

/// Forwards a same-shard run of queries in one pipelined exchange:
/// write all rewritten lines, then strictly read the replies in order,
/// appending newline-terminated replies to `out`. `batch` is the
/// rewritten-request scratch buffer, owned by the caller and reused
/// across runs (and shards) so steady-state proxying allocates nothing.
/// Any error rolls `out` back and fails the whole run (the caller falls
/// back to the per-line path, which retries and recovers).
fn pipeline_run(
    state: &Arc<RouterState>,
    shard_idx: usize,
    run: &[PreppedQuery],
    batch: &mut String,
    out: &mut String,
) -> Result<(), ()> {
    let shard = &state.shards[shard_idx];
    let generation = shard.generation.load(Ordering::SeqCst);
    let mut conn = checkout(state, shard, generation).map_err(|_| ())?;
    let t0 = Instant::now();
    batch.clear();
    for q in run {
        let backend_sid = {
            let table = state.sessions.lock().expect("sessions poisoned");
            table
                .by_sid
                .get(&q.rsid)
                .map(|e| e.backend_sid.clone())
                .unwrap_or_else(|| q.rsid.clone())
        };
        let mut line = q.parsed.clone();
        set_session(&mut line, &backend_sid);
        line.encode_into(batch);
        batch.push('\n');
    }
    {
        use std::io::Write;
        conn.writer
            .write_all(batch.as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|_| ())?;
    }
    let start = out.len();
    for q in run {
        let raw = match conn.reader.read_line_strict() {
            Ok(raw) => raw,
            Err(_) => {
                out.truncate(start);
                return Err(());
            }
        };
        shard.requests.inc();
        shard.request_us.observe_duration(t0.elapsed());
        state
            .metrics
            .counter(&format!("router.requests.{}", q.verb))
            .inc();
        state
            .metrics
            .histogram("router.request_us", LATENCY_US_BUCKETS)
            .observe_duration(t0.elapsed());
        rewrite_reply_sid(raw, &q.rsid, out);
        out.push('\n');
    }
    repool(shard, conn);
    Ok(())
}

fn route_batch(state: &Arc<RouterState>, lines: &[String], out: &mut String) {
    // Scratch buffer for rewritten backend request lines, reused across
    // every pipelined run in the batch regardless of destination shard.
    let mut batch = String::new();
    let mut i = 0;
    while i < lines.len() {
        if let Some((shard, first)) = prep_query(state, &lines[i]) {
            let mut run = vec![first];
            let mut j = i + 1;
            while j < lines.len() {
                match prep_query(state, &lines[j]) {
                    Some((s, q)) if s == shard => {
                        run.push(q);
                        j += 1;
                    }
                    _ => break,
                }
            }
            if run.len() >= 2 && pipeline_run(state, shard, &run, &mut batch, out).is_ok() {
                i = j;
                continue;
            }
            // Failed mid-pipeline (or a singleton run): route the line
            // individually — queries are idempotent reads, and the
            // poisoned connection was dropped with its half-read
            // replies.
        }
        route_line(state, &lines[i], out);
        out.push('\n');
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Aggregated stats
// ---------------------------------------------------------------------

/// `inf` sorts after every finite bucket bound.
const INF_KEY: i64 = i64::MAX;

#[derive(Default)]
struct MergedStats {
    counters: std::collections::BTreeMap<String, i64>,
    gauges: std::collections::BTreeMap<String, i64>,
    /// name → (count, sum, le → n)
    histograms: std::collections::BTreeMap<String, (i64, i64, std::collections::BTreeMap<i64, i64>)>,
}

impl MergedStats {
    fn absorb(&mut self, snapshot: &Value<'_>) {
        if let Some(Value::Object(items)) = snapshot.get("counters") {
            for (name, v) in items {
                if let Some(n) = v.as_i64() {
                    *self.counters.entry(name.to_string()).or_insert(0) += n;
                }
            }
        }
        if let Some(Value::Object(items)) = snapshot.get("gauges") {
            for (name, v) in items {
                if let Some(n) = v.as_i64() {
                    *self.gauges.entry(name.to_string()).or_insert(0) += n;
                }
            }
        }
        if let Some(Value::Object(items)) = snapshot.get("histograms") {
            for (name, h) in items {
                let entry = self.histograms.entry(name.to_string()).or_default();
                entry.0 += h.get("count").and_then(Value::as_i64).unwrap_or(0);
                entry.1 += h.get("sum").and_then(Value::as_i64).unwrap_or(0);
                if let Some(buckets) = h.get("buckets").and_then(Value::as_array) {
                    for b in buckets {
                        let Some(pair) = b.as_array() else { continue };
                        let (Some(le), Some(n)) = (pair.first(), pair.get(1)) else {
                            continue;
                        };
                        let key = le.as_i64().unwrap_or(INF_KEY);
                        *entry.2.entry(key).or_insert(0) += n.as_i64().unwrap_or(0);
                    }
                }
            }
        }
    }

    fn render(&self) -> Value<'static> {
        let counters: Vec<(Cow<'static, str>, Value<'static>)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone().into(), Value::Int(*v)))
            .collect();
        let gauges: Vec<(Cow<'static, str>, Value<'static>)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone().into(), Value::Int(*v)))
            .collect();
        let histograms: Vec<(Cow<'static, str>, Value<'static>)> = self
            .histograms
            .iter()
            .map(|(name, (count, sum, buckets))| {
                let mean = if *count == 0 {
                    0.0
                } else {
                    *sum as f64 / *count as f64
                };
                let rendered: Vec<Value<'static>> = buckets
                    .iter()
                    .map(|(le, n)| {
                        let le = if *le == INF_KEY {
                            Value::Str("inf".into())
                        } else {
                            Value::Int(*le)
                        };
                        Value::Array(vec![le, Value::Int(*n)])
                    })
                    .collect();
                (
                    name.clone().into(),
                    Value::object(vec![
                        ("count", Value::Int(*count)),
                        ("sum", Value::Int(*sum)),
                        ("mean", Value::Float((mean * 1000.0).round() / 1000.0)),
                        ("buckets", Value::Array(rendered)),
                    ]),
                )
            })
            .collect();
        Value::object(vec![
            ("counters", Value::Object(counters)),
            ("gauges", Value::Object(gauges)),
            ("histograms", Value::Object(histograms)),
        ])
    }
}

fn route_stats(state: &Arc<RouterState>, out: &mut String) {
    let mut merged = MergedStats::default();
    let mut live = 0i64;
    let mut capacity = 0i64;
    let mut engines: Vec<(Cow<'static, str>, Value<'static>)> = Vec::new();
    let mut per_shard: Vec<Value<'static>> = Vec::new();

    // Backend sid → router sid, for the engines table.
    let reverse: HashMap<(usize, String), String> = {
        let table = state.sessions.lock().expect("sessions poisoned");
        table
            .by_sid
            .iter()
            .map(|(rsid, e)| ((e.shard, e.backend_sid.clone()), rsid.clone()))
            .collect()
    };

    for shard in &state.shards {
        let addr = shard.addr.lock().expect("addr poisoned").clone();
        let label = shard.host.lock().expect("host poisoned").label();
        let line = r#"{"op":"stats"}"#.to_string();
        let reachable = match call_shard(state, shard.index, &|| line.clone()) {
            Ok(raw) => match parse(&raw) {
                Ok(v) => {
                    if let Some(snapshot) = v.get("stats") {
                        merged.absorb(snapshot);
                    }
                    if let Some(sessions) = v.get("sessions") {
                        live += sessions.get("live").and_then(Value::as_i64).unwrap_or(0);
                        capacity += sessions.get("capacity").and_then(Value::as_i64).unwrap_or(0);
                    }
                    if let Some(Value::Object(items)) = v.get("engines") {
                        for (backend_sid, engine) in items {
                            if let Some(rsid) =
                                reverse.get(&(shard.index, backend_sid.to_string()))
                            {
                                engines.push((rsid.clone().into(), engine.clone().into_owned()));
                            }
                        }
                    }
                    true
                }
                Err(_) => false,
            },
            Err(_) => false,
        };
        per_shard.push(Value::object(vec![
            ("index", Value::Int(shard.index as i64)),
            ("backend", Value::Str(label.into())),
            ("addr", Value::Str(addr.into())),
            ("reachable", Value::Bool(reachable)),
            ("requests", Value::Int(shard.requests.get() as i64)),
            ("request_us", shard.request_us.to_json()),
        ]));
    }
    engines.sort_by(|a, b| a.0.cmp(&b.0));

    // The imbalance gauge: spread between the busiest and idlest shard,
    // as a percentage of the busiest.
    let loads: Vec<u64> = state.shards.iter().map(|s| s.requests.get()).collect();
    let max = loads.iter().copied().max().unwrap_or(0);
    let min = loads.iter().copied().min().unwrap_or(0);
    let imbalance = ((max - min) * 100).checked_div(max).unwrap_or(0) as i64;
    state.metrics.gauge("router.imbalance_pct").set(imbalance);

    // Fold the router's own instruments into the same merged snapshot
    // (names are `router.*`-prefixed, so nothing double-counts).
    merged.absorb(&state.metrics.snapshot());

    let router_section = Value::object(vec![
        ("shards", Value::Int(state.shards.len() as i64)),
        (
            "sessions",
            Value::Int(state.sessions.lock().expect("sessions poisoned").by_sid.len() as i64),
        ),
        (
            "retries",
            Value::Int(state.metrics.counter("router.retries").get() as i64),
        ),
        (
            "respawns",
            Value::Int(state.metrics.counter("router.respawns").get() as i64),
        ),
        (
            "recoveries",
            Value::object(vec![
                (
                    "attached",
                    Value::Int(state.metrics.counter("router.recoveries.attached").get() as i64),
                ),
                (
                    "replayed",
                    Value::Int(state.metrics.counter("router.recoveries.replayed").get() as i64),
                ),
                (
                    "journal_loads_replayed",
                    Value::Int(
                        state.metrics.counter("router.journal_loads_replayed").get() as i64
                    ),
                ),
            ]),
        ),
        ("imbalance_pct", Value::Int(imbalance)),
        ("per_shard", Value::Array(per_shard)),
    ]);

    ok_reply(vec![
        (
            "uptime_us",
            Value::Int((state.started.elapsed().as_micros() as i64).max(1)),
        ),
        ("stats", merged.render()),
        (
            "sessions",
            Value::object(vec![
                ("live", Value::Int(live)),
                ("capacity", Value::Int(capacity)),
            ]),
        ),
        ("engines", Value::Object(engines)),
        ("router", router_section),
    ])
    .encode_into(out);
}
