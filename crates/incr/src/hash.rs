//! Deterministic FNV-1a hashing for cache keys.
//!
//! The unit cache is keyed entirely by content hashes, so the hasher must
//! be deterministic across runs of the same binary — `std`'s default
//! `SipHasher` is randomly keyed per process and unusable here. This is
//! the same FNV-1a the session store uses for source keys
//! (`tbaa_server::session::content_hash`), wrapped in a
//! [`std::hash::Hasher`] impl so `#[derive(Hash)]` types (access paths,
//! merges, effect records) can be folded in directly.
//!
//! The integer `write_*` methods feed native-endian bytes, which is fine:
//! keys never leave the process.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`].
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl FnvHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a string followed by a separator byte, so that adjacent
    /// strings hash unambiguously (`"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write_u8(0xFF);
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes any `Hash` value with FNV-1a.
pub fn fnv_hash(value: &impl Hash) -> u64 {
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Chains two hashes: the next context hash in a unit sequence.
pub fn chain(ctx: u64, effect: u64) -> u64 {
    let mut h = FnvHasher::new();
    h.write_u64(ctx);
    h.write_u64(effect);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        assert_eq!(fnv_hash(&"abc"), fnv_hash(&"abc"));
        assert_ne!(fnv_hash(&"abc"), fnv_hash(&"abd"));
    }

    #[test]
    fn str_separator_disambiguates() {
        let mut a = FnvHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = FnvHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn chain_is_order_sensitive() {
        assert_ne!(chain(1, 2), chain(2, 1));
        assert_eq!(chain(1, 2), chain(1, 2));
    }
}
