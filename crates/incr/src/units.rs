//! Splitting a checked module into hashable compilation units.
//!
//! A *unit* is one function's worth of source: the procedure header, its
//! local declarations, and its body (the module body is the `<main>`
//! unit). Lowering a unit reads two kinds of context besides the unit's
//! own text:
//!
//! * **header state** — the type table, global/const declarations, the
//!   procedure signature list (call resolution is by index), and the
//!   method-implementation map. Any change here can change what *any*
//!   unit lowers to, so it is hashed once per module and folded into the
//!   initial context hash.
//! * **shared lowering state** — the intern tables (access paths, field
//!   symbols, text literals) and fresh-id counters that earlier units
//!   mutate. This is covered by chaining each unit's *effect hash* into
//!   the context (see [`crate::IncrCompiler`]).
//!
//! Unit boundaries are *positional slices* of the source: unit `i` spans
//! from its procedure header to the next procedure's header (or the
//! module body), so every byte of the module is covered by exactly one
//! unit or the header. Over-inclusion (e.g. a TYPE decl between two
//! procedures landing in the preceding unit's slice) is conservative:
//! it can only cause a spurious miss, never a wrong hit.

use crate::hash::FnvHasher;
use mini_m3::check::{CheckedModule, VarKind};
use mini_m3::types::ParamMode;
use std::hash::Hasher;

/// Content hashes for one checked module: the shared header and one hash
/// per function, indexed like `checked.procs` (`<main>` included).
#[derive(Debug, Clone)]
pub struct UnitHashes {
    /// Hash of everything lowering reads that is not one function's text.
    pub header: u64,
    /// Per-function unit hashes, in `checked.procs` order.
    pub units: Vec<u64>,
}

/// Computes the header and per-unit hashes for `checked` + its source.
pub fn unit_hashes(checked: &CheckedModule, source: &str) -> UnitHashes {
    let n_ast = checked.ast.procs.len();
    let src_len = source.len();

    // Where the module body begins: the first body statement, or end of
    // source for an empty body. Everything from a procedure's header to
    // the next anchor belongs to that procedure's unit.
    let main_start = checked
        .ast
        .body
        .first()
        .map(|&s| checked.ast.stmt_span(s).start as usize)
        .unwrap_or(src_len)
        .min(src_len);

    // Procedure slice bounds, in source order.
    let mut order: Vec<usize> = (0..n_ast).collect();
    order.sort_by_key(|&i| checked.ast.procs[i].span.start);
    let mut bounds = vec![(0usize, 0usize); n_ast];
    for (k, &i) in order.iter().enumerate() {
        let start = (checked.ast.procs[i].span.start as usize).min(src_len);
        let end = if k + 1 < n_ast {
            (checked.ast.procs[order[k + 1]].span.start as usize).min(src_len)
        } else {
            main_start
        };
        bounds[i] = (start, end.max(start));
    }

    let units = (0..checked.procs.len())
        .map(|p| {
            let mut h = FnvHasher::new();
            h.write_u32(p as u32);
            if p == checked.main.0 as usize {
                // The module body, through the end of the source (the
                // `END Name.` trailer is re-parsed anyway; including it
                // costs nothing).
                h.write_str("<main>");
                h.write_str(&source[main_start..]);
            } else {
                h.write_str(&checked.procs[p].name);
                let (s, e) = bounds[p];
                h.write_str(&source[s..e]);
            }
            h.finish()
        })
        .collect();

    UnitHashes {
        header: header_hash(checked, source),
        units,
    }
}

/// Hashes the module-level context every unit's lowering depends on.
fn header_hash(checked: &CheckedModule, source: &str) -> u64 {
    let slice = |span: mini_m3::span::Span| {
        let s = (span.start as usize).min(source.len());
        let e = (span.end as usize).min(source.len()).max(s);
        &source[s..e]
    };
    let mut h = FnvHasher::new();

    // The entire type table, structurally. Anonymous types declared in
    // procedure locals get interleaved TypeIds, so the id↔structure
    // mapping — not just module-level TYPE decls — must match for cached
    // ids to stay meaningful.
    h.write_u64(checked.types.len() as u64);
    for id in checked.types.iter() {
        h.write_str(&format!("{:?}", checked.types.kind(id)));
    }

    // Globals: layout order, name, type, and the full declaration text —
    // initializer expressions live before the main-body anchor but lower
    // into `<main>`, so their text must participate here.
    h.write_u64(checked.globals.len() as u64);
    for g in &checked.globals {
        h.write_str(&g.name);
        h.write_u32(g.ty.0);
    }
    for d in &checked.ast.globals {
        h.write_str(slice(d.span));
    }

    // Constant declarations by source text: constant *values* are folded
    // into use sites at lowering time without appearing in unit slices.
    h.write_u64(checked.ast.consts.len() as u64);
    for c in &checked.ast.consts {
        h.write_str(slice(c.span));
    }

    // Procedure signatures, in index order: calls resolve to indices and
    // read the callee's parameter modes/types and return type, and
    // `FuncId`s are embedded in cached bodies — any reordering or
    // signature change must invalidate everything.
    h.write_u64(checked.procs.len() as u64);
    h.write_u32(checked.main.0);
    for p in &checked.procs {
        h.write_str(&p.name);
        h.write_u32(p.n_params);
        h.write_u32(p.ret.map(|t| t.0 + 1).unwrap_or(0));
        for l in p.locals.iter().take(p.n_params as usize) {
            h.write_u32(l.ty.0);
            h.write_u8(match l.kind {
                VarKind::Param(ParamMode::Var) => 2,
                VarKind::Param(ParamMode::Value) => 1,
                _ => 0,
            });
        }
    }

    // Method implementations (sorted: HashMap iteration order is not
    // deterministic), read during method-call lowering.
    let mut impls: Vec<(u32, &str, u32)> = checked
        .method_impls
        .iter()
        .map(|(&(t, ref m), &p)| (t.0, m.as_str(), p.0))
        .collect();
    impls.sort_unstable();
    h.write_u64(impls.len() as u64);
    for (t, m, p) in impls {
        h.write_u32(t);
        h.write_str(m);
        h.write_u32(p);
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(src: &str) -> UnitHashes {
        let checked = mini_m3::compile(src).expect("compiles");
        unit_hashes(&checked, src)
    }

    const TWO_PROCS: &str = "MODULE M;
        VAR g: INTEGER;
        PROCEDURE A (): INTEGER = BEGIN RETURN 1 END A;
        PROCEDURE B (): INTEGER = BEGIN RETURN 2 END B;
        BEGIN g := A() + B(); END M.";

    #[test]
    fn stable_across_recompiles() {
        let a = hashes(TWO_PROCS);
        let b = hashes(TWO_PROCS);
        assert_eq!(a.header, b.header);
        assert_eq!(a.units, b.units);
    }

    #[test]
    fn one_function_edit_changes_one_unit() {
        let base = hashes(TWO_PROCS);
        let edited = hashes(&TWO_PROCS.replace("RETURN 2", "RETURN 3"));
        assert_eq!(base.header, edited.header);
        assert_eq!(base.units.len(), edited.units.len());
        let changed: Vec<usize> = (0..base.units.len())
            .filter(|&i| base.units[i] != edited.units[i])
            .collect();
        assert_eq!(changed.len(), 1, "exactly one unit invalidated");
        // Unit 1 is PROCEDURE B.
        assert_eq!(changed, vec![1]);
    }

    #[test]
    fn main_body_edit_changes_only_main_unit() {
        let base = hashes(TWO_PROCS);
        let edited = hashes(&TWO_PROCS.replace("A() + B()", "B() + A()"));
        assert_eq!(base.header, edited.header);
        let main = base.units.len() - 1;
        assert_eq!(base.units[..main], edited.units[..main]);
        assert_ne!(base.units[main], edited.units[main]);
    }

    #[test]
    fn type_change_invalidates_header() {
        let base = hashes(TWO_PROCS);
        let edited = hashes(&TWO_PROCS.replace(
            "VAR g: INTEGER;",
            "TYPE T = OBJECT f: INTEGER; END; VAR g: INTEGER;",
        ));
        assert_ne!(base.header, edited.header);
    }

    #[test]
    fn global_init_edit_invalidates_header() {
        let a = hashes("MODULE M; VAR g: INTEGER := 1; BEGIN g := g END M.");
        let b = hashes("MODULE M; VAR g: INTEGER := 2; BEGIN g := g END M.");
        // The initializer text lives before the first body statement and
        // is covered by the main unit / globals; an init change must not
        // produce identical hashes everywhere.
        assert!(a.header != b.header || a.units != b.units);
    }

    #[test]
    fn const_value_edit_invalidates() {
        let a = hashes("MODULE M; CONST K = 1; VAR g: INTEGER; BEGIN g := K END M.");
        let b = hashes("MODULE M; CONST K = 2; VAR g: INTEGER; BEGIN g := K END M.");
        assert!(a.header != b.header || a.units != b.units);
    }

    #[test]
    fn proc_rename_changes_header() {
        let base = hashes(TWO_PROCS);
        let edited = hashes(
            &TWO_PROCS
                .replace("PROCEDURE B", "PROCEDURE C")
                .replace("END B;", "END C;")
                .replace("B()", "C()"),
        );
        assert_ne!(base.header, edited.header);
    }
}
