//! # tbaa-incr — incremental re-analysis via a function-granular cache
//!
//! The paper's pitch is that type-based alias analysis is nearly free;
//! recompiling a whole program because one function changed is not. This
//! crate makes superseding `load`s pay only for what changed: it splits a
//! module into per-function **units**, content-hashes each
//! ([`units::unit_hashes`]), and caches every unit's lowering together
//! with its **effect summary** ([`tbaa_ir::FuncEffects`]) — the access
//! paths, interned symbols/texts, fresh-id consumption, pointer-assignment
//! merges (§2.4), and `AddressTaken` facts (§2.3) that the unit
//! contributed to module-shared state.
//!
//! ## Context-hash chaining
//!
//! A cached unit is only reusable when the shared state it was lowered
//! under is reproduced exactly (interned ids are positional). The cache
//! key is therefore `(unit_hash, ctx)` where
//!
//! ```text
//! ctx₀ = header_hash          (types, globals, consts, signatures, impls)
//! ctxᵢ₊₁ = chain(ctxᵢ, effect_hashᵢ)
//! ```
//!
//! so unit *i* hits iff its own text is unchanged **and** every earlier
//! unit left the shared tables in the same state. A one-function edit
//! whose effects are unchanged (the common case: the edit touches only
//! that function's body) leaves every downstream context intact — `n−1`
//! of `n` units replay from cache.
//!
//! ## What is and is not reused
//!
//! Reused per hit: the lowered [`tbaa_ir::Function`] body and the
//! function's analysis summary (merge edges + address-taken facts),
//! spliced in by [`tbaa_ir::ModuleLowerer::replay_next`]. Recomputed
//! every load: parse/check (the source must be validated regardless),
//! and the global fixpoint — the type hierarchy and Steensgaard merge in
//! `tbaa` are whole-program unions over the summaries and are cheap
//! relative to lowering; recombining them fresh keeps the invariant that
//! **incremental output is byte-identical to a from-scratch compile**.
//!
//! ```
//! use tbaa_incr::IncrCompiler;
//!
//! let incr = IncrCompiler::new();
//! let base = "MODULE M;
//!     VAR g: INTEGER;
//!     PROCEDURE A (): INTEGER = BEGIN RETURN 1 END A;
//!     PROCEDURE B (): INTEGER = BEGIN RETURN 2 END B;
//!     BEGIN g := A() + B(); END M.";
//! let (p1, r1) = incr.compile(base);
//! assert!(p1.is_ok());
//! assert_eq!(r1.func_hits, 0); // cold
//! let (p2, r2) = incr.compile(&base.replace("RETURN 2", "RETURN 3"));
//! assert!(p2.is_ok());
//! assert_eq!(r2.func_hits, 2); // A and <main> replayed; only B re-lowered
//! ```

pub mod hash;
pub mod units;

use mini_m3::error::Diagnostics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tbaa_ir::lower::{FuncLowering, ModuleLowerer};
use tbaa_ir::Program;

/// Default bound on cached units. Units are single lowered functions —
/// small next to the `Arc<Program>`s the session store already retains —
/// so the bound exists to cap pathological churn, not memory pressure.
pub const DEFAULT_UNIT_CAPACITY: usize = 4096;

/// Per-compile reuse accounting, plus wall-clock stage timings so the
/// compile path is separately observable (`compile.analyze_us` /
/// `compile.lower_us` / `compile.merge_us` in the daemon's stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrReport {
    /// Functions replayed from cache.
    pub func_hits: u64,
    /// Functions lowered fresh.
    pub func_misses: u64,
    /// Parse/check plus unit hashing time (µs).
    pub analyze_us: u64,
    /// Time spent lowering units fresh — the scoped-thread fan-out on the
    /// parallel cold path, or the summed in-line lowerings otherwise (µs).
    pub lower_us: u64,
    /// Time spent replaying/absorbing units into the shared tables and
    /// assembling the final program (µs).
    pub merge_us: u64,
}

impl IncrReport {
    /// Total functions in the compiled module.
    pub fn funcs(&self) -> u64 {
        self.func_hits + self.func_misses
    }

    /// Fraction of functions replayed from cache (0 for an empty module).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.funcs();
        if total == 0 {
            0.0
        } else {
            self.func_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct UnitKey {
    unit: u64,
    ctx: u64,
}

struct CachedUnit {
    lowering: FuncLowering,
    effect_hash: u64,
}

struct Entry {
    unit: Arc<CachedUnit>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<UnitKey, Entry>,
    tick: u64,
    capacity: usize,
}

/// A concurrent, bounded, content-addressed cache of per-function
/// lowerings, usable as the compile function for any number of sessions.
///
/// Thread-safe: lookups and inserts take a short internal lock; the
/// lowering itself runs outside it. Two threads racing on the same unit
/// at worst lower it twice — the second insert wins, output is unaffected.
pub struct IncrCompiler {
    inner: Mutex<CacheInner>,
}

impl Default for IncrCompiler {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrCompiler {
    /// A compiler with the default unit capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_UNIT_CAPACITY)
    }

    /// A compiler caching at most `capacity` units (0 disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        IncrCompiler {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                capacity,
            }),
        }
    }

    /// Number of units currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no units.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compiles `source` to IR, replaying every unit whose content and
    /// shared-state context match a cached lowering.
    ///
    /// The result — including diagnostics on failure — is byte-identical
    /// to [`tbaa_ir::compile_to_ir`]; the report says how much was reused.
    pub fn compile(&self, source: &str) -> (Result<Program, Diagnostics>, IncrReport) {
        self.compile_with_threads(source, 1)
    }

    /// [`compile`](Self::compile) with up to `threads` lowering workers on
    /// the cold path.
    ///
    /// `threads` is an exact worker count (clamped only to the unit
    /// count) so tests can force the fan-out on single-core hosts;
    /// production callers should pass it through
    /// [`tbaa_ir::effective_workers`] first. The fan-out engages only when
    /// the cache is empty: a warm cache replays most units, and lowering
    /// them detached first would be wasted work. Output is byte-identical
    /// to the serial path either way, and a subsequent edit replays the
    /// same n−1/1 hit/miss walk whether the cold compile was parallel or
    /// serial.
    pub fn compile_with_threads(
        &self,
        source: &str,
        threads: usize,
    ) -> (Result<Program, Diagnostics>, IncrReport) {
        let mut report = IncrReport::default();
        let t_analyze = Instant::now();
        let checked = match mini_m3::compile(source) {
            Ok(c) => c,
            Err(e) => return (Err(e), report),
        };
        let hashes = units::unit_hashes(&checked, source);
        report.analyze_us = t_analyze.elapsed().as_micros() as u64;

        let workers = threads.clamp(1, checked.procs.len().max(1));
        if workers > 1 && self.is_empty() {
            let checked = Arc::new(checked);
            let t_lower = Instant::now();
            let units = tbaa_ir::lower_units_detached(&checked, workers);
            report.lower_us = t_lower.elapsed().as_micros() as u64;

            let t_merge = Instant::now();
            let mut ml = ModuleLowerer::new_shared(checked);
            let mut ctx = hashes.header;
            for (i, unit) in units.into_iter().enumerate() {
                let key = UnitKey {
                    unit: hashes.units[i],
                    ctx,
                };
                // Still consult the cache per unit (another session may
                // have populated it since the emptiness check) so the
                // hit/miss counters stay truthful.
                if let Some(cached) = self.lookup(key) {
                    ml.replay_next(&cached.lowering);
                    ctx = hash::chain(ctx, cached.effect_hash);
                    report.func_hits += 1;
                } else {
                    let fl = ml.absorb_next_captured(unit);
                    let effect_hash = hash::fnv_hash(&fl.effects);
                    ctx = hash::chain(ctx, effect_hash);
                    if fl.clean {
                        self.insert(
                            key,
                            CachedUnit {
                                lowering: fl,
                                effect_hash,
                            },
                        );
                    }
                    report.func_misses += 1;
                }
            }
            let out = ml.finish();
            report.merge_us = t_merge.elapsed().as_micros() as u64;
            return (out, report);
        }

        let mut ml = ModuleLowerer::new_shared(Arc::new(checked));
        let mut ctx = hashes.header;
        for i in 0..ml.num_procs() {
            let key = UnitKey {
                unit: hashes.units[i],
                ctx,
            };
            if let Some(cached) = self.lookup(key) {
                let t = Instant::now();
                ml.replay_next(&cached.lowering);
                report.merge_us += t.elapsed().as_micros() as u64;
                ctx = hash::chain(ctx, cached.effect_hash);
                report.func_hits += 1;
            } else {
                let t = Instant::now();
                let fl = ml.lower_next();
                report.lower_us += t.elapsed().as_micros() as u64;
                let effect_hash = hash::fnv_hash(&fl.effects);
                ctx = hash::chain(ctx, effect_hash);
                // Units whose lowering emitted diagnostics are never
                // cached: the diagnostics are observable output and must
                // be re-emitted by re-lowering.
                if fl.clean {
                    self.insert(
                        key,
                        CachedUnit {
                            lowering: fl,
                            effect_hash,
                        },
                    );
                }
                report.func_misses += 1;
            }
        }
        let t = Instant::now();
        let out = ml.finish();
        report.merge_us += t.elapsed().as_micros() as u64;
        (out, report)
    }

    fn lookup(&self, key: UnitKey) -> Option<Arc<CachedUnit>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.unit)
        })
    }

    fn insert(&self, key: UnitKey, unit: CachedUnit) {
        let mut inner = self.inner.lock().unwrap();
        if inner.capacity == 0 {
            return;
        }
        while inner.map.len() >= inner.capacity && !inner.map.contains_key(&key) {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                unit: Arc::new(unit),
                last_used: tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structural fingerprint: the full pretty-printed program, which
    /// covers functions, blocks, access paths, merges, and tables.
    fn fingerprint(p: &Program) -> String {
        tbaa_ir::pretty::program(p)
    }

    fn fresh(src: &str) -> Program {
        tbaa_ir::compile_to_ir(src).expect("fresh compile")
    }

    const CORPUS: &[&str] = &[
        "MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2 END M.",
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; g: T; END;
         PROCEDURE Get (t: T): INTEGER = BEGIN RETURN t.f END Get;
         PROCEDURE Hop (t: T): T = BEGIN RETURN t.g END Hop;
         VAR t: T; x: INTEGER;
         BEGIN t := NEW(T); x := Get(Hop(t)); END M.",
        "MODULE M;
         TYPE A = ARRAY OF INTEGER;
         PROCEDURE Sum (a: A): INTEGER =
           VAR s: INTEGER;
           BEGIN FOR i := 0 TO NUMBER(a) - 1 DO s := s + a[i] END; RETURN s END Sum;
         VAR a: A; n: INTEGER;
         BEGIN a := NEW(A, 8); n := Sum(a); END M.",
        "MODULE M;
         TYPE T = OBJECT END; S = T OBJECT END;
         PROCEDURE F (x: T) = BEGIN END F;
         VAR s: S; t: T;
         BEGIN s := NEW(S); t := s; F(s); END M.",
        "MODULE M;
         TYPE T = OBJECT v: INTEGER; METHODS get (): INTEGER := Get; END;
         PROCEDURE Get (self: T): INTEGER = BEGIN RETURN self.v END Get;
         PROCEDURE Bump (VAR x: INTEGER) = BEGIN x := x + 1 END Bump;
         VAR t: T; x: INTEGER;
         BEGIN t := NEW(T); Bump(t.v); x := t.get(); END M.",
    ];

    #[test]
    fn cold_compile_matches_fresh_compile() {
        for src in CORPUS {
            let incr = IncrCompiler::new();
            let (p, r) = incr.compile(src);
            assert_eq!(r.func_hits, 0);
            assert!(r.func_misses >= 1);
            assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
        }
    }

    #[test]
    fn warm_recompile_is_all_hits_and_identical() {
        for src in CORPUS {
            let incr = IncrCompiler::new();
            let (_, r1) = incr.compile(src);
            let (p, r2) = incr.compile(src);
            assert_eq!(r2.func_misses, 0, "identical source re-lowered: {src}");
            assert_eq!(r2.func_hits, r1.funcs());
            assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
        }
    }

    #[test]
    fn single_function_edit_reuses_all_others() {
        let base = "MODULE M;
            TYPE T = OBJECT f: INTEGER; END;
            PROCEDURE A (t: T): INTEGER = BEGIN RETURN t.f END A;
            PROCEDURE B (t: T): INTEGER = BEGIN RETURN t.f + 1 END B;
            PROCEDURE C (t: T): INTEGER = BEGIN RETURN t.f + 2 END C;
            VAR t: T; x: INTEGER;
            BEGIN t := NEW(T); x := A(t) + B(t) + C(t); END M.";
        let edited = base.replace("RETURN t.f + 1", "RETURN t.f + 100");
        let incr = IncrCompiler::new();
        let (_, r1) = incr.compile(base);
        assert_eq!(r1.funcs(), 4); // A, B, C, <main>
        let (p, r2) = incr.compile(&edited);
        assert_eq!(r2.func_misses, 1, "only B re-lowered");
        assert_eq!(r2.func_hits, 3);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(&edited)));
    }

    #[test]
    fn effect_changing_edit_invalidates_downstream() {
        // A introduces a *new* access path shape; editing it shifts the
        // shared intern tables, so B (lowered after A, using paths A
        // first interned) must not replay against stale ids.
        let base = "MODULE M;
            TYPE T = OBJECT f: INTEGER; g: INTEGER; END;
            PROCEDURE A (t: T): INTEGER = BEGIN RETURN t.f END A;
            PROCEDURE B (t: T): INTEGER = BEGIN RETURN t.f END B;
            VAR t: T; x: INTEGER;
            BEGIN t := NEW(T); x := A(t) + B(t); END M.";
        let edited = base.replace("RETURN t.f END A", "RETURN t.g END A");
        let incr = IncrCompiler::new();
        let _ = incr.compile(base);
        let (p, r) = incr.compile(&edited);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(&edited)));
        // B's unit text is unchanged but its context changed; it may only
        // hit if A's effects happened to hash identically — they do not.
        assert!(r.func_misses >= 2, "A and downstream units re-lowered");
    }

    #[test]
    fn compile_errors_match_fresh_diagnostics() {
        let bad = "MODULE M;
            PROCEDURE A (): INTEGER = BEGIN RETURN 1 END A;
            VAR a: INTEGER;
            BEGIN FOR i := 0 TO 9 BY a DO a := a + i END; END M.";
        let incr = IncrCompiler::new();
        let (r1, _) = incr.compile(bad);
        let fresh_err = tbaa_ir::compile_to_ir(bad).unwrap_err();
        let incr_err = r1.unwrap_err();
        assert_eq!(format!("{incr_err:?}"), format!("{fresh_err:?}"));
        // And again warm: the erroring unit is never cached, so the
        // diagnostics are re-emitted identically.
        let (r2, _) = incr.compile(bad);
        assert_eq!(format!("{:?}", r2.unwrap_err()), format!("{fresh_err:?}"));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let incr = IncrCompiler::with_capacity(0);
        let src = CORPUS[1];
        let _ = incr.compile(src);
        assert_eq!(incr.len(), 0);
        let (p, r) = incr.compile(src);
        assert_eq!(r.func_hits, 0);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
    }

    #[test]
    fn eviction_keeps_output_correct() {
        let incr = IncrCompiler::with_capacity(2);
        for src in CORPUS {
            let (p, _) = incr.compile(src);
            assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
        }
        assert!(incr.len() <= 2);
        // Churned units are gone, but recompiles stay correct.
        let (p, _) = incr.compile(CORPUS[0]);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(CORPUS[0])));
    }

    #[test]
    fn distinct_procs_with_identical_bodies_do_not_share_entries() {
        // A and B have byte-identical bodies; FuncIds differ, so reusing
        // one for the other would corrupt local roots.
        let src = "MODULE M;
            VAR g: INTEGER;
            PROCEDURE A () = BEGIN g := g + 1 END A;
            PROCEDURE B () = BEGIN g := g + 1 END B;
            BEGIN A(); B(); END M.";
        let incr = IncrCompiler::new();
        let (p, _) = incr.compile(src);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
        let (p2, r2) = incr.compile(src);
        assert_eq!(r2.func_misses, 0);
        assert_eq!(fingerprint(&p2.unwrap()), fingerprint(&fresh(src)));
    }

    #[test]
    fn parallel_cold_compile_matches_fresh_compile() {
        for src in CORPUS {
            for workers in [2, 4] {
                let incr = IncrCompiler::new();
                let (p, r) = incr.compile_with_threads(src, workers);
                assert_eq!(r.func_hits, 0);
                assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
            }
        }
    }

    #[test]
    fn parallel_cold_compile_then_edit_walks_n_minus_one() {
        let base = "MODULE M;
            TYPE T = OBJECT f: INTEGER; END;
            PROCEDURE A (t: T): INTEGER = BEGIN RETURN t.f END A;
            PROCEDURE B (t: T): INTEGER = BEGIN RETURN t.f + 1 END B;
            PROCEDURE C (t: T): INTEGER = BEGIN RETURN t.f + 2 END C;
            VAR t: T; x: INTEGER;
            BEGIN t := NEW(T); x := A(t) + B(t) + C(t); END M.";
        let edited = base.replace("RETURN t.f + 1", "RETURN t.f + 100");
        let incr = IncrCompiler::new();
        // Parallel cold compile caches the same (unit, ctx) entries a
        // serial one would...
        let (_, r1) = incr.compile_with_threads(base, 4);
        assert_eq!(r1.func_misses, 4);
        // ...so a one-function edit replays exactly n−1 units.
        let (p, r2) = incr.compile(&edited);
        assert_eq!(r2.func_misses, 1, "only B re-lowered");
        assert_eq!(r2.func_hits, 3);
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(&edited)));
    }

    #[test]
    fn warm_cache_skips_the_fan_out() {
        let src = CORPUS[1];
        let incr = IncrCompiler::new();
        let (_, r1) = incr.compile_with_threads(src, 4);
        let (p, r2) = incr.compile_with_threads(src, 4);
        assert_eq!(r2.func_misses, 0);
        assert_eq!(r2.func_hits, r1.funcs());
        assert_eq!(fingerprint(&p.unwrap()), fingerprint(&fresh(src)));
    }

    #[test]
    fn report_reuse_ratio() {
        let r = IncrReport {
            func_hits: 3,
            func_misses: 1,
            ..IncrReport::default()
        };
        assert_eq!(r.funcs(), 4);
        assert!((r.reuse_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(IncrReport::default().reuse_ratio(), 0.0);
    }
}
