//! Procedure inlining (the second half of Figure 11's Minv+Inlining).
//!
//! Direct calls to small, non-(mutually-)recursive procedures are spliced
//! into the caller: callee blocks, registers, and frame slots are
//! renumbered, parameters become slot stores, and returns become jumps to
//! a continuation block. Access paths rooted at callee locals are
//! re-interned with their new roots so the alias analyses and RLE keep
//! working on inlined code.

use std::collections::{HashMap, HashSet};
use tbaa_ir::ir::{
    Block, BlockId, Instr, MemAddr, Operand, Program, Reg, SlotAddr, SlotBase, Terminator,
};
use tbaa_ir::path::{ApId, ApIndex, ApRoot, ApTable, FuncId, VarId};

/// What inlining did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Call sites inlined.
    pub inlined: usize,
}

/// Inlines direct calls whose callee has at most `max_callee_instrs`
/// instructions. Runs until no more sites qualify (growth is bounded by
/// `max_caller_instrs`).
pub fn inline_small(
    prog: &mut Program,
    max_callee_instrs: usize,
    max_caller_instrs: usize,
) -> InlineStats {
    let mut stats = InlineStats::default();
    for caller_idx in 0..prog.funcs.len() {
        let caller = FuncId(caller_idx as u32);
        // Bounded rescanning: inlined bodies may contain further calls.
        for _round in 0..32 {
            let Some((b, i, callee)) =
                find_site(prog, caller, max_callee_instrs, max_caller_instrs)
            else {
                break;
            };
            inline_site(prog, caller, b, i, callee);
            stats.inlined += 1;
        }
    }
    stats
}

fn find_site(
    prog: &Program,
    caller: FuncId,
    max_callee: usize,
    max_caller: usize,
) -> Option<(BlockId, usize, FuncId)> {
    let f = prog.func(caller);
    if f.instr_count() > max_caller {
        return None;
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, instr) in b.instrs.iter().enumerate() {
            if let Instr::Call { func, .. } = instr {
                let callee = *func;
                if callee == caller {
                    continue;
                }
                if prog.func(callee).instr_count() > max_callee {
                    continue;
                }
                if reaches(prog, callee, caller) || reaches(prog, callee, callee) {
                    continue; // recursion: inlining would never terminate
                }
                return Some((BlockId(bi as u32), ii, callee));
            }
        }
    }
    None
}

/// Whether `from`'s body can (transitively) call `to`. `from == to` is
/// not trivially true: it holds only if `from` is actually recursive.
fn reaches(prog: &Program, from: FuncId, to: FuncId) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![(from, true)];
    while let Some((f, is_start)) = stack.pop() {
        if f == to && !is_start {
            return true;
        }
        if !seen.insert(f) && !is_start {
            continue;
        }
        for b in &prog.func(f).blocks {
            for instr in &b.instrs {
                match instr {
                    Instr::Call { func, .. } => stack.push((*func, false)),
                    Instr::CallMethod {
                        method, recv_ty, ..
                    } => {
                        stack.extend(
                            crate::modref::method_targets(prog, *recv_ty, method)
                                .into_iter()
                                .map(|t| (t, false)),
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    false
}

struct Remap {
    reg_off: u32,
    var_off: u32,
    block_off: u32,
    ap_map: HashMap<ApId, ApId>,
}

impl Remap {
    fn reg(&self, r: Reg) -> Reg {
        Reg(r.0 + self.reg_off)
    }
    fn op(&self, o: Operand) -> Operand {
        match o {
            Operand::Reg(r) => Operand::Reg(self.reg(r)),
            other => other,
        }
    }
    fn var(&self, v: VarId) -> VarId {
        VarId(v.0 + self.var_off)
    }
    fn slot_base(&self, b: SlotBase) -> SlotBase {
        match b {
            SlotBase::Local(v) => SlotBase::Local(self.var(v)),
            g => g,
        }
    }
    fn slot_addr(&self, a: &SlotAddr) -> SlotAddr {
        SlotAddr {
            base: self.slot_base(a.base),
            offset: a.offset,
            indices: a
                .indices
                .iter()
                .map(|(o, lo, s)| (self.op(*o), *lo, *s))
                .collect(),
        }
    }
    fn mem_addr(&self, a: &MemAddr) -> MemAddr {
        MemAddr {
            base: self.op(a.base),
            offset: a.offset,
            indices: a
                .indices
                .iter()
                .map(|(o, lo, s)| (self.op(*o), *lo, *s))
                .collect(),
        }
    }
    fn block(&self, b: BlockId) -> BlockId {
        BlockId(b.0 + self.block_off)
    }
    fn ap(&self, a: ApId) -> ApId {
        *self.ap_map.get(&a).unwrap_or(&a)
    }
}

/// Builds the AP remapping for every path rooted in the callee's frame.
fn build_ap_map(
    aps: &mut ApTable,
    callee_body_aps: &[ApId],
    callee: FuncId,
    caller: FuncId,
    var_off: u32,
) -> HashMap<ApId, ApId> {
    fn remap_index(idx: &ApIndex, callee: FuncId, var_off: u32) -> ApIndex {
        let _ = callee;
        match idx {
            ApIndex::Var(v) => ApIndex::Var(VarId(v.0 + var_off)),
            ApIndex::Bin(op, l, r) => ApIndex::Bin(
                *op,
                Box::new(remap_index(l, callee, var_off)),
                Box::new(remap_index(r, callee, var_off)),
            ),
            other => other.clone(),
        }
    }
    let mut map = HashMap::new();
    for &ap in callee_body_aps {
        let mut p = aps.path(ap).clone();
        let mut changed = false;
        if let ApRoot::Local { func, var } = p.root {
            if func == callee {
                p.root = ApRoot::Local {
                    func: caller,
                    var: VarId(var.0 + var_off),
                };
                changed = true;
            }
        }
        for s in &mut p.steps {
            if let tbaa_ir::path::ApStep::Index { index, .. } = s {
                let n = remap_index(index, callee, var_off);
                if *index != n {
                    *index = n;
                    changed = true;
                }
            }
        }
        if changed {
            let nid = aps.intern(p);
            map.insert(ap, nid);
        }
    }
    map
}

fn remap_instr(instr: &Instr, m: &Remap) -> Instr {
    match instr {
        Instr::ConstText { dst, text } => Instr::ConstText {
            dst: m.reg(*dst),
            text: *text,
        },
        Instr::Copy { dst, src } => Instr::Copy {
            dst: m.reg(*dst),
            src: m.op(*src),
        },
        Instr::Un { dst, op, src } => Instr::Un {
            dst: m.reg(*dst),
            op: *op,
            src: m.op(*src),
        },
        Instr::Bin { dst, op, lhs, rhs } => Instr::Bin {
            dst: m.reg(*dst),
            op: *op,
            lhs: m.op(*lhs),
            rhs: m.op(*rhs),
        },
        Instr::LoadSlot { dst, addr } => Instr::LoadSlot {
            dst: m.reg(*dst),
            addr: m.slot_addr(addr),
        },
        Instr::StoreSlot { addr, src } => Instr::StoreSlot {
            addr: m.slot_addr(addr),
            src: m.op(*src),
        },
        Instr::LoadMem {
            dst,
            addr,
            ap,
            hidden,
        } => Instr::LoadMem {
            dst: m.reg(*dst),
            addr: m.mem_addr(addr),
            ap: m.ap(*ap),
            hidden: *hidden,
        },
        Instr::StoreMem { addr, src, ap } => Instr::StoreMem {
            addr: m.mem_addr(addr),
            src: m.op(*src),
            ap: m.ap(*ap),
        },
        Instr::LoadInd { dst, loc } => Instr::LoadInd {
            dst: m.reg(*dst),
            loc: m.op(*loc),
        },
        Instr::StoreInd { loc, src } => Instr::StoreInd {
            loc: m.op(*loc),
            src: m.op(*src),
        },
        Instr::TakeAddrSlot { dst, addr } => Instr::TakeAddrSlot {
            dst: m.reg(*dst),
            addr: m.slot_addr(addr),
        },
        Instr::TakeAddrMem { dst, addr, ap } => Instr::TakeAddrMem {
            dst: m.reg(*dst),
            addr: m.mem_addr(addr),
            ap: m.ap(*ap),
        },
        Instr::New { dst, ty } => Instr::New {
            dst: m.reg(*dst),
            ty: *ty,
        },
        Instr::NewArray { dst, ty, len } => Instr::NewArray {
            dst: m.reg(*dst),
            ty: *ty,
            len: m.op(*len),
        },
        Instr::Call {
            dst,
            func,
            args,
            addr_aps,
            addr_slots,
        } => Instr::Call {
            dst: dst.map(|d| m.reg(d)),
            func: *func,
            args: args.iter().map(|a| m.op(*a)).collect(),
            addr_aps: addr_aps.iter().map(|a| m.ap(*a)).collect(),
            addr_slots: addr_slots.iter().map(|s| m.slot_base(*s)).collect(),
        },
        Instr::CallMethod {
            dst,
            method,
            recv_ty,
            args,
            addr_aps,
            addr_slots,
        } => Instr::CallMethod {
            dst: dst.map(|d| m.reg(d)),
            method: method.clone(),
            recv_ty: *recv_ty,
            args: args.iter().map(|a| m.op(*a)).collect(),
            addr_aps: addr_aps.iter().map(|a| m.ap(*a)).collect(),
            addr_slots: addr_slots.iter().map(|s| m.slot_base(*s)).collect(),
        },
        Instr::Intrinsic { dst, op, args } => Instr::Intrinsic {
            dst: dst.map(|d| m.reg(d)),
            op: *op,
            args: args.iter().map(|a| m.op(*a)).collect(),
        },
        Instr::TypeTest { dst, src, ty } => Instr::TypeTest {
            dst: m.reg(*dst),
            src: m.op(*src),
            ty: *ty,
        },
        Instr::NarrowTo { dst, src, ty } => Instr::NarrowTo {
            dst: m.reg(*dst),
            src: m.op(*src),
            ty: *ty,
        },
    }
}

fn inline_site(prog: &mut Program, caller: FuncId, b: BlockId, idx: usize, callee_id: FuncId) {
    let callee = prog.func(callee_id).clone();
    // Collect every AP mentioned in the callee body.
    let mut callee_aps: Vec<ApId> = Vec::new();
    {
        let mut seen = HashSet::new();
        for blk in &callee.blocks {
            for instr in &blk.instrs {
                let mut push = |ap: ApId| {
                    if seen.insert(ap) {
                        callee_aps.push(ap);
                    }
                };
                match instr {
                    Instr::LoadMem { ap, .. }
                    | Instr::StoreMem { ap, .. }
                    | Instr::TakeAddrMem { ap, .. } => push(*ap),
                    Instr::Call { addr_aps, .. } | Instr::CallMethod { addr_aps, .. } => {
                        for &a in addr_aps {
                            push(a);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    let (reg_off, var_off, block_off, call_instr, trailing, old_term);
    {
        let f = prog.func_mut(caller);
        reg_off = f.n_regs;
        var_off = f.vars.len() as u32;
        block_off = f.blocks.len() as u32;
        // Split block b after the call.
        let blk = &mut f.blocks[b.0 as usize];
        call_instr = blk.instrs[idx].clone();
        trailing = blk.instrs.split_off(idx + 1);
        blk.instrs.pop(); // remove the call itself
        old_term = blk.term.clone();
    }
    let ap_map = build_ap_map(&mut prog.aps, &callee_aps, callee_id, caller, var_off);
    let cont = BlockId(block_off + callee.blocks.len() as u32);
    let m = Remap {
        reg_off,
        var_off,
        block_off,
        ap_map,
    };

    let Instr::Call {
        dst: call_dst,
        args,
        ..
    } = call_instr
    else {
        unreachable!("inline_site called on a direct call");
    };

    let f = prog.func_mut(caller);
    // Append renamed callee vars.
    f.n_regs += callee.n_regs;
    for v in &callee.vars {
        let mut nv = v.clone();
        nv.name = format!("$in.{}", v.name);
        f.vars.push(nv);
    }
    // Parameter stores + jump to the callee entry.
    {
        let blk = &mut f.blocks[b.0 as usize];
        for (i, a) in args.iter().enumerate() {
            blk.instrs.push(Instr::StoreSlot {
                addr: SlotAddr::var(SlotBase::Local(VarId(i as u32 + var_off))),
                src: *a,
            });
        }
        blk.term = Terminator::Jump(BlockId(block_off));
    }
    // Splice remapped callee blocks.
    for cb in &callee.blocks {
        let mut instrs: Vec<Instr> = cb.instrs.iter().map(|i| remap_instr(i, &m)).collect();
        let term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(m.block(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: m.op(*cond),
                then_bb: m.block(*then_bb),
                else_bb: m.block(*else_bb),
            },
            Terminator::Return(val) => {
                if let (Some(d), Some(v)) = (call_dst, val) {
                    instrs.push(Instr::Copy {
                        dst: d,
                        src: m.op(*v),
                    });
                }
                Terminator::Jump(cont)
            }
        };
        f.blocks.push(Block { instrs, term });
    }
    // Continuation block.
    f.blocks.push(Block {
        instrs: trailing,
        term: old_term,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;

    fn count_calls(p: &Program) -> usize {
        p.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count()
    }

    #[test]
    fn small_callee_is_inlined() {
        let mut p = compile_to_ir(
            "MODULE M;
             PROCEDURE Add (a, b: INTEGER): INTEGER = BEGIN RETURN a + b END Add;
             VAR x: INTEGER;
             BEGIN x := Add(1, 2); END M.",
        )
        .unwrap();
        let before = count_calls(&p);
        let stats = inline_small(&mut p, 50, 100_000);
        assert_eq!(before, 1);
        assert_eq!(stats.inlined, 1);
        assert_eq!(count_calls(&p), 0);
    }

    #[test]
    fn recursive_callee_not_inlined() {
        let mut p = compile_to_ir(
            "MODULE M;
             PROCEDURE Fact (n: INTEGER): INTEGER =
             BEGIN
               IF n <= 1 THEN RETURN 1 END;
               RETURN n * Fact(n - 1);
             END Fact;
             VAR x: INTEGER;
             BEGIN x := Fact(5); END M.",
        )
        .unwrap();
        let stats = inline_small(&mut p, 1000, 100_000);
        assert_eq!(stats.inlined, 0);
    }

    #[test]
    fn inlined_heap_paths_are_rerooted() {
        let mut p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE GetF (t: T): INTEGER = BEGIN RETURN t.f END GetF;
             VAR t: T; x: INTEGER;
             BEGIN t := NEW(T); x := GetF(t); END M.",
        )
        .unwrap();
        let stats = inline_small(&mut p, 50, 100_000);
        assert_eq!(stats.inlined, 1);
        // The load of t.f now lives in <main> and its AP root must point
        // at a <main> variable.
        let main = p.func(p.main);
        let mut found = false;
        for blk in &main.blocks {
            for instr in &blk.instrs {
                if let Instr::LoadMem {
                    ap, hidden: false, ..
                } = instr
                {
                    let path = p.aps.path(*ap);
                    if let ApRoot::Local { func, .. } = path.root {
                        assert_eq!(func, p.main, "AP rerooted into the caller");
                        found = true;
                    }
                }
            }
        }
        assert!(found, "inlined load present in main");
    }

    #[test]
    fn execution_semantics_preserved_structurally() {
        // The callee writes through a VAR param; after inlining the store
        // must still target the caller's variable.
        let mut p = compile_to_ir(
            "MODULE M;
             PROCEDURE Set (VAR v: INTEGER) = BEGIN v := 42 END Set;
             VAR g: INTEGER;
             BEGIN Set(g); END M.",
        )
        .unwrap();
        let stats = inline_small(&mut p, 50, 100_000);
        assert_eq!(stats.inlined, 1);
        // StoreInd survives, with the loc coming from a TakeAddrSlot of g.
        let main = p.func(p.main);
        let has_store_ind = main
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .any(|i| matches!(i, Instr::StoreInd { .. }));
        assert!(has_store_ind);
    }

    #[test]
    fn caller_growth_is_bounded() {
        let mut p = compile_to_ir(
            "MODULE M;
             PROCEDURE Add (a, b: INTEGER): INTEGER = BEGIN RETURN a + b END Add;
             VAR x: INTEGER;
             BEGIN
               x := Add(1, 2) + Add(3, 4) + Add(5, 6);
             END M.",
        )
        .unwrap();
        let stats = inline_small(&mut p, 50, 100_000);
        assert_eq!(stats.inlined, 3);
        assert_eq!(count_calls(&p), 0);
    }
}
