//! Method invocation resolution (the paper's "Minv" client, §3.7).
//!
//! Uses TBAA's `TypeRefsTable` (plus the set of types the program actually
//! allocates) to compute the feasible dynamic types of a method receiver.
//! When every feasible type binds the same implementation, the dynamic
//! dispatch is replaced by a direct call — which both removes dispatch
//! overhead and exposes the call to inlining (Figure 11's Minv+Inlining
//! configuration).

use std::collections::HashSet;
use tbaa::analysis::Tbaa;
use tbaa_ir::ir::{Instr, Program};
use tbaa_ir::path::FuncId;

/// What devirtualization did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevirtStats {
    /// Method call sites inspected.
    pub sites: usize,
    /// Sites rewritten to direct calls.
    pub resolved: usize,
}

/// Resolves method invocations to direct calls where the analysis allows.
pub fn devirtualize(prog: &mut Program, analysis: &Tbaa) -> DevirtStats {
    let mut stats = DevirtStats::default();
    let allocated = prog.allocated_types.clone();
    for fi in 0..prog.funcs.len() {
        let fid = FuncId(fi as u32);
        for bi in 0..prog.func(fid).blocks.len() {
            for ii in 0..prog.func(fid).blocks[bi].instrs.len() {
                let Instr::CallMethod {
                    dst,
                    method,
                    recv_ty,
                    args,
                    addr_aps,
                    addr_slots,
                } = &prog.func(fid).blocks[bi].instrs[ii]
                else {
                    continue;
                };
                stats.sites += 1;
                let mut targets: HashSet<FuncId> = HashSet::new();
                for t in analysis
                    .possible_types(*recv_ty)
                    .iter()
                    .filter(|t| allocated.contains(t))
                {
                    if let Some(&f) = prog.method_impls.get(&(t, method.clone())) {
                        targets.insert(f);
                    }
                }
                if targets.len() == 1 {
                    let target = *targets.iter().next().expect("len checked");
                    let new_instr = Instr::Call {
                        dst: *dst,
                        func: target,
                        args: args.clone(),
                        addr_aps: addr_aps.clone(),
                        addr_slots: addr_slots.clone(),
                    };
                    prog.func_mut(fid).blocks[bi].instrs[ii] = new_instr;
                    stats.resolved += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::Level;
    use tbaa::World;
    use tbaa_ir::compile_to_ir;

    fn count_method_calls(p: &Program) -> usize {
        p.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i, Instr::CallMethod { .. }))
            .count()
    }

    #[test]
    fn monomorphic_site_is_resolved() {
        let mut p = compile_to_ir(
            "MODULE M;
             TYPE A = OBJECT v: INTEGER; METHODS m (): INTEGER := MA; END;
             PROCEDURE MA (self: A): INTEGER = BEGIN RETURN self.v END MA;
             VAR a: A; x: INTEGER;
             BEGIN a := NEW(A); x := a.m(); END M.",
        )
        .unwrap();
        let an = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let stats = devirtualize(&mut p, &an);
        assert_eq!(stats.sites, 1);
        assert_eq!(stats.resolved, 1);
        assert_eq!(count_method_calls(&p), 0);
    }

    #[test]
    fn polymorphic_site_stays_dynamic() {
        let mut p = compile_to_ir(
            "MODULE M;
             TYPE
               A = OBJECT METHODS m (): INTEGER := MA; END;
               B = A OBJECT OVERRIDES m := MB; END;
             PROCEDURE MA (self: A): INTEGER = BEGIN RETURN 1 END MA;
             PROCEDURE MB (self: B): INTEGER = BEGIN RETURN 2 END MB;
             VAR a: A; c: BOOLEAN; x: INTEGER;
             BEGIN
               IF c THEN a := NEW(A) ELSE a := NEW(B) END;
               x := a.m();
             END M.",
        )
        .unwrap();
        let an = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let stats = devirtualize(&mut p, &an);
        assert_eq!(stats.sites, 1);
        assert_eq!(stats.resolved, 0);
        assert_eq!(count_method_calls(&p), 1);
    }

    #[test]
    fn smtyperefs_beats_subtyping_for_resolution() {
        // Both A and B are allocated, but nothing of type B ever flows
        // into the receiver variable's type group — SMFieldTypeRefs can
        // prove the receiver is an A.
        let mut p = compile_to_ir(
            "MODULE M;
             TYPE
               A = OBJECT METHODS m (): INTEGER := MA; END;
               B = A OBJECT OVERRIDES m := MB; END;
             PROCEDURE MA (self: A): INTEGER = BEGIN RETURN 1 END MA;
             PROCEDURE MB (self: B): INTEGER = BEGIN RETURN 2 END MB;
             VAR a: A; b: B; x: INTEGER;
             BEGIN
               a := NEW(A);
               b := NEW(B);
               x := a.m() + b.m();
             END M.",
        )
        .unwrap();
        let sm = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let stats = devirtualize(&mut p, &sm);
        assert_eq!(stats.resolved, 2, "both sites monomorphic under SM");
    }
}
