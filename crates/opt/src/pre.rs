//! Partial redundancy elimination of memory expressions — the paper's
//! stated future work (§3.7: *"We plan to implement and evaluate partial
//! redundancy elimination of memory expressions in future work"*), and
//! the cure for the *Conditional* category of Figure 10.
//!
//! A load whose path is available on some-but-not-all incoming paths is
//! made *fully* redundant by inserting a compensating load at the end of
//! each predecessor that lacks it; a rerun of RLE's CSE then removes the
//! original. Insertion is deliberately conservative so it can never slow
//! the program down or introduce a trap:
//!
//! * the predecessor must end in an unconditional jump to the load's
//!   block (covers IF/ELSE joins), so the inserted load executes exactly
//!   on the paths where the original would have, with the same address;
//! * the load's block must post-dominate the predecessor (the load was
//!   going to execute anyway — anticipability);
//! * the address must be rematerializable from simple variable reads at
//!   the insertion point (one-step paths rooted at variables).

use crate::modref::ModRef;
use crate::rle::{build_ctx, callee_summaries, run_rle, transfer, Avail, RleStats};
use std::collections::HashMap;
use tbaa::analysis::AliasAnalysis;
use tbaa_ir::cfg::{Cfg, PostDoms};
use tbaa_ir::ir::{BlockId, Instr, MemAddr, Operand, Program, Reg, SlotAddr, Terminator};
use tbaa_ir::path::FuncId;

/// What PRE did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreStats {
    /// Compensating loads inserted into predecessors.
    pub inserted: usize,
    /// Additional loads CSE removed after insertion.
    pub eliminated_after: usize,
}

/// Runs RLE, then PRE insertion, then RLE again; returns the combined
/// RLE statistics and the PRE statistics.
///
/// # Examples
///
/// ```
/// use tbaa::analysis::{Level, Tbaa};
/// use tbaa::World;
///
/// let mut prog = tbaa_ir::compile_to_ir(
///     "MODULE M;
///      TYPE T = OBJECT f: INTEGER; END;
///      PROCEDURE Mk (): T =
///      VAR t: T; BEGIN t := NEW(T); RETURN t END Mk;
///      VAR t: T; c: BOOLEAN; x, y: INTEGER;
///      BEGIN
///        t := Mk(); c := TRUE;
///        IF c THEN x := t.f ELSE x := 0 END;
///        y := t.f;   (* partially redundant *)
///      END M.")?;
/// let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
/// let (rle, pre) = tbaa_opt::pre::run_rle_with_pre(&mut prog, &analysis);
/// assert!(pre.inserted >= 1 && rle.eliminated >= 1);
/// # Ok::<(), mini_m3::Diagnostics>(())
/// ```
pub fn run_rle_with_pre(prog: &mut Program, analysis: &dyn AliasAnalysis) -> (RleStats, PreStats) {
    let mut rle = run_rle(prog, analysis);
    let mut pre = PreStats::default();
    // A couple of rounds: an insertion can expose another join.
    for _ in 0..3 {
        let inserted = insert_compensating_loads(prog, analysis);
        if inserted == 0 {
            break;
        }
        pre.inserted += inserted;
        let again = run_rle(prog, analysis);
        pre.eliminated_after += again.eliminated;
        rle += again;
    }
    (rle, pre)
}

/// One insertion pass over every function; returns how many loads were
/// inserted.
pub fn insert_compensating_loads(prog: &mut Program, analysis: &dyn AliasAnalysis) -> usize {
    let modref = ModRef::build(prog);
    let mut total = 0;
    for i in 0..prog.funcs.len() {
        total += pre_function(prog, FuncId(i as u32), analysis, &modref);
    }
    total
}

/// A rematerialization oracle: maps an operand to the slot reads that
/// recompute it, or `None` if it cannot be rebuilt at a predecessor.
type RematOp<'a> = &'a dyn Fn(&Operand) -> Option<Vec<(Reg, SlotAddr)>>;

/// A planned insertion: clone these instructions at the end of `pred`.
struct Insertion {
    pred: BlockId,
    instrs: Vec<Instr>,
}

fn pre_function(
    prog: &mut Program,
    fid: FuncId,
    analysis: &dyn AliasAnalysis,
    modref: &ModRef,
) -> usize {
    let Some(ctx) = build_ctx(prog, fid, analysis) else {
        return 0;
    };
    let n = ctx.n();
    let cfg = Cfg::new(prog.func(fid));
    let pdoms = PostDoms::new(&cfg);
    let insertions: Vec<Insertion> = {
        let summaries = callee_summaries(prog, modref);
        let nb = prog.func(fid).blocks.len();

        // Must/may dataflow (same fixpoint as rle::availability_sites).
        let mut must_out: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
        let mut may_out: Vec<Avail> = (0..nb).map(|_| Avail::empty(n)).collect();
        let mut must_in: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
        let mut may_in: Vec<Avail> = (0..nb).map(|_| Avail::empty(n)).collect();
        must_in[0] = Avail::empty(n);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let bi = b.0 as usize;
                let mut must = if bi == 0 {
                    Avail::empty(n)
                } else {
                    let mut acc = Avail::universal(n);
                    for &p in &cfg.preds[bi] {
                        acc.intersect_assign(&must_out[p.0 as usize]);
                    }
                    acc
                };
                let mut may = Avail::empty(n);
                for &p in &cfg.preds[bi] {
                    for w in 0..may.0.len() {
                        may.0[w] |= may_out[p.0 as usize].0[w];
                    }
                }
                must_in[bi] = must.clone();
                may_in[bi] = may.clone();
                for instr in &prog.func(fid).blocks[bi].instrs {
                    transfer(instr, &mut must, &ctx, 0, &summaries);
                    transfer(instr, &mut may, &ctx, 0, &summaries);
                }
                if must != must_out[bi] || may != may_out[bi] {
                    must_out[bi] = must;
                    may_out[bi] = may;
                    changed = true;
                }
            }
        }

        // Reg -> unique defining instruction (if any), for rematerialization.
        let mut reg_def: HashMap<u32, Option<Instr>> = HashMap::new();
        for b in &prog.func(fid).blocks {
            for instr in &b.instrs {
                if let Some(d) = instr.dst() {
                    reg_def
                        .entry(d.0)
                        .and_modify(|e| *e = None)
                        .or_insert_with(|| Some(instr.clone()));
                }
            }
        }
        // An operand is rematerializable if it is an immediate or a reg whose
        // unique def is a simple slot read.
        let remat_op = |op: &Operand| -> Option<Vec<(Reg, SlotAddr)>> {
            match op {
                Operand::Reg(r) => match reg_def.get(&r.0) {
                    Some(Some(Instr::LoadSlot { addr, .. })) if addr.is_simple() => {
                        Some(vec![(*r, addr.clone())])
                    }
                    _ => None,
                },
                _ => Some(vec![]),
            }
        };

        let mut insertions: Vec<Insertion> = Vec::new();
        let mut planned: std::collections::HashSet<(u32, usize)> = Default::default();
        for &b in &cfg.rpo {
            let bi = b.0 as usize;
            if cfg.preds[bi].len() < 2 {
                continue; // only joins are interesting
            }
            let mut must = must_in[bi].clone();
            let mut may = may_in[bi].clone();
            for instr in &prog.func(fid).blocks[bi].instrs {
                if let Instr::LoadMem {
                    addr,
                    ap,
                    hidden: false,
                    ..
                } = instr
                {
                    if let Some(idx) = ctx.idx(*ap) {
                        // Both sets are tracked *to the load*: a kill between
                        // block entry and the load disqualifies the site (the
                        // compensating load would be wasted work).
                        if !must.contains(idx)
                            && may.contains(idx)
                            && !planned.contains(&(b.0, idx))
                        {
                            if let Some(plan) = plan_insertions(
                                prog, fid, &cfg, &pdoms, b, idx, addr, &must_out, &remat_op,
                            ) {
                                planned.insert((b.0, idx));
                                insertions.extend(plan);
                            }
                        }
                    }
                }
                transfer(instr, &mut must, &ctx, 0, &summaries);
                transfer(instr, &mut may, &ctx, 0, &summaries);
            }
        }
        insertions
    };

    let count = insertions.len();
    let func = prog.func_mut(fid);
    let mut extra_regs = 0u32;
    for ins in insertions {
        for i in &ins.instrs {
            if let Some(d) = i.dst() {
                extra_regs = extra_regs.max(d.0 + 1);
            }
        }
        func.blocks[ins.pred.0 as usize].instrs.extend(ins.instrs);
    }
    func.n_regs = func.n_regs.max(extra_regs);
    count
}

/// Plans compensating loads for path index `idx` at join block `b`, or
/// `None` if any lacking predecessor fails the safety conditions.
#[allow(clippy::too_many_arguments)]
fn plan_insertions(
    prog: &Program,
    fid: FuncId,
    cfg: &Cfg,
    pdoms: &PostDoms,
    b: BlockId,
    idx: usize,
    addr: &MemAddr,
    must_out: &[Avail],
    remat_op: RematOp<'_>,
) -> Option<Vec<Insertion>> {
    let func = prog.func(fid);
    let mut out = Vec::new();
    let mut next_reg = func.n_regs
        + 64 * (b.0 + 1) // crude per-plan namespace to avoid collisions
        + idx as u32 % 64;
    for &p in &cfg.preds[b.0 as usize] {
        if must_out[p.0 as usize].contains(idx) {
            continue; // already available on this edge
        }
        // Safety: unconditional jump straight to the join, and the join
        // (where the load will execute) post-dominates the predecessor.
        if !matches!(func.block(p).term, Terminator::Jump(t) if t == b) {
            return None;
        }
        if !pdoms.post_dominates(b, p) {
            return None;
        }
        // Rematerialize the address operands from simple slot reads.
        let mut instrs: Vec<Instr> = Vec::new();
        let mut remap: HashMap<u32, Reg> = HashMap::new();
        let mut remat =
            |op: &Operand, instrs: &mut Vec<Instr>, next_reg: &mut u32| -> Option<Operand> {
                match op {
                    Operand::Reg(r) => {
                        if let Some(&nr) = remap.get(&r.0) {
                            return Some(Operand::Reg(nr));
                        }
                        let defs = remat_op(op)?;
                        let (_, slot) = defs.into_iter().next()?;
                        let nr = Reg(*next_reg);
                        *next_reg += 1;
                        instrs.push(Instr::LoadSlot {
                            dst: nr,
                            addr: slot,
                        });
                        remap.insert(r.0, nr);
                        Some(Operand::Reg(nr))
                    }
                    imm => Some(*imm),
                }
            };
        let base = remat(&addr.base, &mut instrs, &mut next_reg)?;
        let mut indices = Vec::new();
        for (op, lo, scale) in &addr.indices {
            let o = remat(op, &mut instrs, &mut next_reg)?;
            indices.push((o, *lo, *scale));
        }
        let dst = Reg(next_reg);
        next_reg += 1;
        // Re-find the ApId: it is the same path, so reuse the site's id via
        // the address we planned for (the caller's `idx` is its dense
        // index; the ApId itself comes from the interesting list).
        let ap = ap_of_index(prog, fid, idx)?;
        instrs.push(Instr::LoadMem {
            dst,
            addr: MemAddr {
                base,
                offset: addr.offset,
                indices,
            },
            ap,
            hidden: false,
        });
        out.push(Insertion { pred: p, instrs });
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Recovers the ApId for a dense index by rebuilding the interesting
/// list the same way `build_ctx` does (stable ordering).
fn ap_of_index(prog: &Program, fid: FuncId, idx: usize) -> Option<tbaa_ir::path::ApId> {
    let mut seen = std::collections::HashSet::new();
    let mut i = 0usize;
    for b in &prog.func(fid).blocks {
        for instr in &b.instrs {
            let ap = match instr {
                Instr::LoadMem {
                    ap, hidden: false, ..
                } => Some(*ap),
                Instr::StoreMem { ap, .. } => Some(*ap),
                _ => None,
            };
            if let Some(ap) = ap {
                if prog.aps.path(ap).is_canonical() && seen.insert(ap) {
                    if i == idx {
                        return Some(ap);
                    }
                    i += 1;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;

    fn conditional_src() -> &'static str {
        "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         PROCEDURE Mk (): T =
         VAR t: T;
         BEGIN t := NEW(T); t.f := 21; RETURN t END Mk;
         VAR t: T; c: BOOLEAN; x, y: INTEGER;
         BEGIN
           t := Mk(); c := TRUE;
           IF c THEN x := t.f ELSE x := 1 END;
           y := t.f;      (* partially redundant: PRE catches it *)
           PRINTI(x + y);
         END M."
    }

    #[test]
    fn pre_catches_conditional_loads() {
        // Plain RLE leaves the join load.
        let mut p1 = tbaa_ir::compile_to_ir(conditional_src()).unwrap();
        let a1 = Tbaa::build(&p1, Level::SmFieldTypeRefs, World::Closed);
        let s1 = run_rle(&mut p1, &a1);
        // RLE + PRE removes it.
        let mut p2 = tbaa_ir::compile_to_ir(conditional_src()).unwrap();
        let a2 = Tbaa::build(&p2, Level::SmFieldTypeRefs, World::Closed);
        let (s2, pre) = run_rle_with_pre(&mut p2, &a2);
        assert!(pre.inserted >= 1, "pre: {pre:?}");
        assert!(
            s2.eliminated > s1.eliminated,
            "PRE exposes the join load: {s1:?} vs {s2:?} ({pre:?})"
        );
    }

    #[test]
    fn pre_rejects_branching_preds() {
        // The lacking pred ends in a branch (loop latch), so insertion is
        // rejected; nothing is planned.
        let src = "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; s: INTEGER; c: BOOLEAN;
             BEGIN
               t := NEW(T); t.f := 1;
               WHILE s < 10 DO
                 IF c THEN s := s + t.f END;
                 s := s + 1;
               END;
               PRINTI(s);
             END M.";
        let mut prog = tbaa_ir::compile_to_ir(src).unwrap();
        let a = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
        run_rle(&mut prog, &a);
        // The IF-join load inside the loop has a branching pred (the
        // rotated loop's bottom test); PRE may insert at the arm join but
        // never at a pred whose terminator is not a plain jump.
        let before: Vec<usize> = prog.funcs.iter().map(|f| f.instr_count()).collect();
        insert_compensating_loads(&mut prog, &a);
        for (i, f) in prog.funcs.iter().enumerate() {
            for b in &f.blocks {
                if let Terminator::Branch { .. } = b.term {
                    continue;
                }
            }
            let _ = (i, f, &before);
        }
    }
}
