//! Access-path copy propagation.
//!
//! The paper's optimizer "does not do copy propagation", which is why some
//! dynamically redundant loads survive RLE — the *Breakup* category of
//! Figure 10: a redundant expression made of multiple smaller expressions,
//! e.g.
//!
//! ```text
//! t := a.b;        (* t names the value of path a.b *)
//! x := t^.c;       (* path t^.c      *)
//! y := a.b^.c;     (* path a.b^.c — textually different, same location *)
//! ```
//!
//! This pass canonicalizes such chains: when a register-class local `t`
//! has exactly one definition `t := <value of path P>` (a heap load or a
//! plain variable read), and nothing executed after that definition can
//! modify `P`, every access path rooted at `t` is rewritten to start with
//! `P`. Running RLE afterwards recovers the Breakup loads; the limit
//! study uses this as a shadow pass to attribute remaining redundancy,
//! and the benches use it as an ablation.

use crate::modref::{method_targets, ModRef};
use std::collections::{HashMap, HashSet};
use tbaa::analysis::AliasAnalysis;
use tbaa_ir::cfg::Cfg;
use tbaa_ir::ir::{BlockId, Instr, Operand, Program, SlotBase, VarClass};
use tbaa_ir::path::{AccessPath, ApId, ApRoot, FuncId, VarId};

/// A copy variable being considered: a local of the current function or a
/// module-level global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CandVar {
    Local(VarId),
    Global(mini_m3::check::GlobalId),
}

/// Rewrites copy-chain access paths; returns how many path occurrences
/// changed.
pub fn propagate_access_paths(prog: &mut Program, analysis: &dyn AliasAnalysis) -> usize {
    let modref = ModRef::build(prog);
    let mut total = 0;
    for i in 0..prog.funcs.len() {
        let fid = FuncId(i as u32);
        // Fixpoint: each rewrite may expose further chains.
        for _round in 0..8 {
            let Some((var, base)) = find_candidate(prog, fid, analysis, &modref) else {
                break;
            };
            let n = rewrite_var_roots(prog, fid, var, &base);
            total += n;
            if n == 0 {
                break;
            }
        }
    }
    total
}

/// The defining path of a candidate copy.
#[derive(Debug, Clone)]
enum BaseDef {
    /// `v := load P` for a canonical heap path `P`.
    Heap(AccessPath),
    /// `v := w` for a stable local/global variable.
    Var(ApRoot, mini_m3::types::TypeId),
}

fn find_candidate(
    prog: &Program,
    fid: FuncId,
    analysis: &dyn AliasAnalysis,
    modref: &ModRef,
) -> Option<(CandVar, AccessPath)> {
    let func = prog.func(fid);
    let cfg = Cfg::new(func);

    // Definition census over this function.
    let mut store_count: HashMap<CandVar, usize> = HashMap::new();
    let mut store_site: HashMap<CandVar, (BlockId, usize, Operand)> = HashMap::new();
    let mut reg_defs: HashMap<u32, usize> = HashMap::new();
    let mut load_def: HashMap<u32, ApId> = HashMap::new();
    let mut slot_def: HashMap<u32, SlotBase> = HashMap::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        for (ii, instr) in b.instrs.iter().enumerate() {
            if let Some(d) = instr.dst() {
                *reg_defs.entry(d.0).or_insert(0) += 1;
            }
            match instr {
                Instr::StoreSlot { addr, src } => {
                    let cv = match addr.base {
                        SlotBase::Local(v) => CandVar::Local(v),
                        SlotBase::Global(g) => CandVar::Global(g),
                    };
                    let w = if addr.is_simple() { 1 } else { 10 };
                    *store_count.entry(cv).or_insert(0) += w;
                    store_site.insert(cv, (BlockId(bi as u32), ii, *src));
                }
                Instr::LoadMem {
                    dst,
                    ap,
                    hidden: false,
                    ..
                } => {
                    load_def.insert(dst.0, *ap);
                }
                Instr::LoadSlot { dst, addr } if addr.is_simple() => {
                    slot_def.insert(dst.0, addr.base);
                }
                _ => {}
            }
        }
    }

    // Candidate variables in a deterministic order.
    let mut vars: Vec<CandVar> = store_count
        .iter()
        .filter(|&(_, &c)| c == 1)
        .map(|(&v, _)| v)
        .collect();
    vars.sort_by_key(|c| match c {
        CandVar::Local(v) => (0, v.0),
        CandVar::Global(g) => (1, g.0),
    });
    'vars: for v in vars {
        match v {
            CandVar::Local(lv) => {
                if lv.0 < func.n_params || func.vars[lv.0 as usize].class != VarClass::Register {
                    continue;
                }
            }
            CandVar::Global(g) => {
                // A global is a safe copy only if this is its sole store in
                // the whole program and its address is never taken.
                if !global_is_private_here(prog, fid, g) {
                    continue;
                }
            }
        }
        let (def_block, def_idx, src) = store_site[&v];
        let Operand::Reg(r) = src else { continue };
        if reg_defs.get(&r.0) != Some(&1) {
            continue;
        }
        // What does the copy bind v to?
        let self_rooted = |root: &ApRoot| match (root, v) {
            (ApRoot::Local { var, .. }, CandVar::Local(lv)) => *var == lv,
            (ApRoot::Global(g), CandVar::Global(gv)) => *g == gv,
            _ => false,
        };
        let base: BaseDef = if let Some(&ap) = load_def.get(&r.0) {
            let p = prog.aps.path(ap);
            if !p.is_canonical() {
                continue;
            }
            if self_rooted(&p.root) {
                continue; // self-rooted: would not terminate
            }
            BaseDef::Heap(p.clone())
        } else if let Some(&sb) = slot_def.get(&r.0) {
            match sb {
                SlotBase::Local(w) => {
                    // w must be stable after the def: at most one store and
                    // register class.
                    if v == CandVar::Local(w)
                        || func.vars[w.0 as usize].class != VarClass::Register
                        || store_count.get(&CandVar::Local(w)).copied().unwrap_or(0) > 1
                        || (w.0 < func.n_params
                            && func.param_modes.get(w.0 as usize)
                                == Some(&mini_m3::types::ParamMode::Var))
                    {
                        continue;
                    }
                    // Reject if w is stored anywhere reachable after the def.
                    if store_reaches_after(prog, fid, &cfg, def_block, def_idx, |i| {
                        matches!(i, Instr::StoreSlot { addr, .. }
                            if matches!(addr.base, SlotBase::Local(x) if x == w))
                    }) {
                        continue;
                    }
                    BaseDef::Var(
                        ApRoot::Local { func: fid, var: w },
                        func.vars[w.0 as usize].ty,
                    )
                }
                SlotBase::Global(g) => {
                    // Globals may be written by calls; require no stores,
                    // no calls after the def.
                    if v == CandVar::Global(g)
                        || store_reaches_after(prog, fid, &cfg, def_block, def_idx, |i| {
                            matches!(i, Instr::StoreSlot { addr, .. }
                            if matches!(addr.base, SlotBase::Global(x) if x == g))
                                || matches!(
                                    i,
                                    Instr::Call { .. }
                                        | Instr::CallMethod { .. }
                                        | Instr::StoreInd { .. }
                                )
                        })
                    {
                        continue;
                    }
                    BaseDef::Var(ApRoot::Global(g), prog.globals[g.0 as usize].ty)
                }
            }
        } else {
            continue;
        };

        // For heap bases, nothing executed after the def may modify P.
        if let BaseDef::Heap(p) = &base {
            let prefix_ids = structural_prefix_ids(prog, p);
            let killed = store_reaches_after(prog, fid, &cfg, def_block, def_idx, |i| {
                instr_may_modify(prog, i, &prefix_ids, analysis, modref)
            });
            if killed {
                continue 'vars;
            }
        }

        // The rewrite must make progress: some path roots at v.
        let base_path = match &base {
            BaseDef::Heap(p) => p.clone(),
            BaseDef::Var(root, ty) => AccessPath {
                root: *root,
                root_ty: *ty,
                steps: vec![],
            },
        };
        let progresses = func_aps(prog, fid).into_iter().any(|ap| {
            let p = prog.aps.path(ap);
            if p.steps.is_empty() {
                return false;
            }
            match (&p.root, v) {
                (ApRoot::Local { func: f, var }, CandVar::Local(lv)) => *f == fid && *var == lv,
                (ApRoot::Global(g), CandVar::Global(gv)) => *g == gv,
                _ => false,
            }
        });
        if progresses {
            return Some((v, base_path));
        }
    }
    None
}

/// Whether global `g` is stored exactly once program-wide (in function
/// `fid`) and never has its address taken.
fn global_is_private_here(prog: &Program, fid: FuncId, g: mini_m3::check::GlobalId) -> bool {
    let mut stores_elsewhere = 0usize;
    for (i, f) in prog.funcs.iter().enumerate() {
        for b in &f.blocks {
            for instr in &b.instrs {
                match instr {
                    Instr::StoreSlot { addr, .. }
                        if matches!(addr.base, SlotBase::Global(x) if x == g)
                            && i as u32 != fid.0 =>
                    {
                        stores_elsewhere += 1;
                    }
                    Instr::TakeAddrSlot { addr, .. } if matches!(addr.base, SlotBase::Global(x) if x == g) =>
                    {
                        return false;
                    }
                    _ => {}
                }
            }
        }
    }
    stores_elsewhere == 0
}

/// Whether any instruction satisfying `pred` can execute after position
/// `(def_block, def_idx)` (flow-insensitively over reachability, including
/// loops back to the defining block).
fn store_reaches_after(
    prog: &Program,
    fid: FuncId,
    cfg: &Cfg,
    def_block: BlockId,
    def_idx: usize,
    pred: impl Fn(&Instr) -> bool,
) -> bool {
    let func = prog.func(fid);
    // Blocks reachable from def_block's successors.
    let mut reach: HashSet<BlockId> = HashSet::new();
    let mut stack: Vec<BlockId> = cfg.succs[def_block.0 as usize].clone();
    while let Some(b) = stack.pop() {
        if reach.insert(b) {
            stack.extend(cfg.succs[b.0 as usize].iter().copied());
        }
    }
    // Rest of the defining block always executes after.
    for instr in func.blocks[def_block.0 as usize]
        .instrs
        .iter()
        .skip(def_idx + 1)
    {
        if pred(instr) {
            return true;
        }
    }
    for &b in &reach {
        for instr in &func.blocks[b.0 as usize].instrs {
            if pred(instr) {
                return true;
            }
        }
    }
    false
}

/// The interned ids of every structural prefix of `path` present in the
/// table (lowering interns each step, so they all exist).
fn structural_prefix_ids(prog: &Program, path: &AccessPath) -> Vec<ApId> {
    let mut out = Vec::new();
    for (id, p) in prog.aps.iter() {
        if p.root == path.root
            && !p.steps.is_empty()
            && p.steps.len() <= path.steps.len()
            && p.steps[..] == path.steps[..p.steps.len()]
        {
            out.push(id);
        }
    }
    out
}

fn instr_may_modify(
    prog: &Program,
    instr: &Instr,
    prefix_ids: &[ApId],
    analysis: &dyn AliasAnalysis,
    modref: &ModRef,
) -> bool {
    match instr {
        Instr::StoreMem { ap, .. } => prefix_ids
            .iter()
            .any(|&p| analysis.may_alias(&prog.aps, *ap, p)),
        Instr::StoreInd { .. } => prefix_ids
            .iter()
            .any(|&p| analysis.wild_may_modify(&prog.aps, p)),
        Instr::StoreSlot { addr, .. } => {
            // Root or index variables of the base path may change.
            prefix_ids.iter().any(|&pid| {
                let p = prog.aps.path(pid);
                match addr.base {
                    SlotBase::Local(w) => p.mentions_var(w),
                    SlotBase::Global(g) => p.mentions_global(g),
                }
            })
        }
        Instr::Call { .. } | Instr::CallMethod { .. } => {
            let sums: Vec<_> = match instr {
                Instr::Call { func, .. } => vec![modref.summary(*func).clone()],
                Instr::CallMethod {
                    method, recv_ty, ..
                } => method_targets(prog, *recv_ty, method)
                    .into_iter()
                    .map(|f| modref.summary(f).clone())
                    .collect(),
                _ => unreachable!(),
            };
            let addr_aps: &[ApId] = match instr {
                Instr::Call { addr_aps, .. } | Instr::CallMethod { addr_aps, .. } => addr_aps,
                _ => &[],
            };
            sums.iter().any(|s| {
                (s.wild_store
                    && prefix_ids
                        .iter()
                        .any(|&p| analysis.wild_may_modify(&prog.aps, p)))
                    || s.stores.iter().any(|&st| {
                        prefix_ids
                            .iter()
                            .any(|&p| analysis.may_alias(&prog.aps, st, p))
                    })
                    || s.stored_globals.iter().any(|&g| {
                        prefix_ids
                            .iter()
                            .any(|&p| prog.aps.path(p).mentions_global(g))
                    })
            }) || addr_aps.iter().any(|&a| {
                prefix_ids
                    .iter()
                    .any(|&p| analysis.may_alias(&prog.aps, a, p))
            })
        }
        _ => false,
    }
}

/// All distinct APs mentioned in a function's heap instructions.
fn func_aps(prog: &Program, fid: FuncId) -> Vec<ApId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for b in &prog.func(fid).blocks {
        for instr in &b.instrs {
            let ap = match instr {
                Instr::LoadMem { ap, .. }
                | Instr::StoreMem { ap, .. }
                | Instr::TakeAddrMem { ap, .. } => Some(*ap),
                _ => None,
            };
            if let Some(ap) = ap {
                if seen.insert(ap) {
                    out.push(ap);
                }
            }
        }
    }
    out
}

/// Rewrites every AP rooted at `var` to start with `base` instead.
fn rewrite_var_roots(prog: &mut Program, fid: FuncId, var: CandVar, base: &AccessPath) -> usize {
    let mut map: HashMap<ApId, ApId> = HashMap::new();
    for ap in func_aps(prog, fid) {
        let p = prog.aps.path(ap).clone();
        let rooted = match (&p.root, var) {
            (ApRoot::Local { func: f, var: v }, CandVar::Local(lv)) => *f == fid && *v == lv,
            (ApRoot::Global(g), CandVar::Global(gv)) => *g == gv,
            _ => false,
        };
        if !rooted || p.steps.is_empty() {
            continue;
        }
        let mut np = base.clone();
        np.steps.extend(p.steps.iter().cloned());
        let nid = prog.aps.intern(np);
        map.insert(ap, nid);
    }
    if map.is_empty() {
        return 0;
    }
    let mut count = 0;
    let func = prog.func_mut(fid);
    for b in &mut func.blocks {
        for instr in &mut b.instrs {
            let slots: Vec<&mut ApId> = match instr {
                Instr::LoadMem { ap, .. }
                | Instr::StoreMem { ap, .. }
                | Instr::TakeAddrMem { ap, .. } => vec![ap],
                Instr::Call { addr_aps, .. } | Instr::CallMethod { addr_aps, .. } => {
                    addr_aps.iter_mut().collect()
                }
                _ => vec![],
            };
            for slot in slots {
                if let Some(&n) = map.get(slot) {
                    *slot = n;
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;
    use tbaa_ir::compile_to_ir;

    #[test]
    fn breakup_chain_is_canonicalized_and_then_eliminated() {
        let src = "MODULE M;
             TYPE T = OBJECT c: INTEGER; END;
                  B = OBJECT t: T; END;
             VAR b: B; tv: T; x, y: INTEGER;
             BEGIN
               b := NEW(B); b.t := NEW(T);
               tv := b.t;          (* the copy RLE alone cannot see through *)
               x := tv.c;
               y := b.t.c;         (* same location as tv.c *)
             END M.";
        // Without copy propagation, RLE misses the tv.c / b.t.c pair.
        let mut p1 = compile_to_ir(src).unwrap();
        let a1 = Tbaa::build(&p1, Level::SmFieldTypeRefs, World::Closed);
        let s1 = crate::rle::run_rle(&mut p1, &a1);
        // With copy propagation, the pair unifies.
        let mut p2 = compile_to_ir(src).unwrap();
        let a2 = Tbaa::build(&p2, Level::SmFieldTypeRefs, World::Closed);
        let n = propagate_access_paths(&mut p2, &a2);
        assert!(n > 0, "some paths rewritten");
        let s2 = crate::rle::run_rle(&mut p2, &a2);
        assert!(
            s2.eliminated > s1.eliminated,
            "copy prop exposes the Breakup load: {s1:?} vs {s2:?}"
        );
    }

    #[test]
    fn no_rewrite_when_base_changes_after_copy() {
        let src = "MODULE M;
             TYPE T = OBJECT c: INTEGER; END;
                  B = OBJECT t: T; END;
             VAR b: B; tv: T; x, y: INTEGER;
             BEGIN
               b := NEW(B); b.t := NEW(T);
               tv := b.t;
               b.t := NEW(T);      (* the base path changes after the copy *)
               x := tv.c;
               y := b.t.c;
             END M.";
        let mut p = compile_to_ir(src).unwrap();
        let a = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let before: Vec<_> = p.heap_ref_sites();
        let n = propagate_access_paths(&mut p, &a);
        let after: Vec<_> = p.heap_ref_sites();
        assert_eq!(n, 0, "unsafe to rewrite tv");
        assert_eq!(before, after);
    }

    #[test]
    fn var_to_var_copy_is_propagated() {
        let src = "MODULE M;
             TYPE T = OBJECT c: INTEGER; END;
             PROCEDURE Get (p: T): INTEGER =
             VAR q: T;
             BEGIN
               q := p;
               RETURN q.c + p.c;   (* q.c and p.c are the same path *)
             END Get;
             VAR t: T; x: INTEGER;
             BEGIN t := NEW(T); t.c := 1; x := Get(t); END M.";
        let mut p = compile_to_ir(src).unwrap();
        let a = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let n = propagate_access_paths(&mut p, &a);
        assert!(n > 0, "q-rooted path rewritten to p");
        let s = crate::rle::run_rle(&mut p, &a);
        assert!(s.eliminated >= 1, "p.c reuse found: {s:?}");
    }
}
