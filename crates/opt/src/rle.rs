//! Redundant load elimination (§3.4.1, Figures 6 and 7 of the paper).
//!
//! RLE combines two transformations over access paths:
//!
//! * **loop-invariant load motion** — a load executed on every iteration
//!   whose path cannot be modified inside the loop is hoisted to the loop
//!   preheader (Figure 6);
//! * **available-load CSE** — a load whose path is available on every
//!   incoming path (computed or stored, and not killed since) is replaced
//!   by a register reference (Figure 7).
//!
//! Both are parameterized by an [`AliasAnalysis`]: a store kills an
//! available path iff it may alias the path *or any of its prefixes*; a
//! call kills through the interprocedural [`ModRef`] summaries; an
//! indirect store kills every path whose address may be taken. Hidden
//! dope-vector loads are left untouched — they are implicit in the
//! high-level IR (the paper's Encapsulation category).
//!
//! Eliminated loads become reads of compiler scratch variables, which are
//! scalar locals and therefore modeled as registers by the machine model —
//! "leaving it up to the back end to place the hoisted memory reference in
//! a register", as the paper puts it.

use crate::modref::{method_targets, ModRef, Summary};
use mini_m3::check::GlobalId;
use std::collections::{HashMap, HashSet};
use tbaa::analysis::AliasAnalysis;
use tbaa_ir::cfg::{ensure_preheader, Cfg, NaturalLoop};
use tbaa_ir::ir::BlockId;
use tbaa_ir::ir::{Instr, Operand, Program, SlotAddr, SlotBase, VarClass, VarDecl};
use tbaa_ir::path::{ApId, ApTable, FuncId, VarId};

/// Static counts of what RLE did (Table 6 reports their sum).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RleStats {
    /// Loads hoisted out of loops.
    pub hoisted: usize,
    /// Loads replaced by register references.
    pub eliminated: usize,
}

impl RleStats {
    /// Total loads removed statically — the Table 6 metric.
    pub fn removed(&self) -> usize {
        self.hoisted + self.eliminated
    }
}

impl std::ops::AddAssign for RleStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hoisted += rhs.hoisted;
        self.eliminated += rhs.eliminated;
    }
}

/// A load site: `(function, block, instruction index)`.
pub type Site = (FuncId, BlockId, usize);

/// Availability of a load's access path just before the load executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteAvail {
    /// Available on **every** incoming path — RLE can eliminate it.
    pub must: bool,
    /// Available on **some** incoming path — partially redundant; the
    /// paper's *Conditional* category (PRE would catch it, RLE cannot).
    pub may: bool,
}

/// Computes must/may availability for every visible canonical load site
/// without transforming the program. The limit study (Figure 10) uses
/// this to attribute remaining dynamic redundancy.
pub fn availability_sites(
    prog: &mut Program,
    analysis: &dyn AliasAnalysis,
) -> HashMap<Site, SiteAvail> {
    let modref = ModRef::build(prog);
    let mut out = HashMap::new();
    for i in 0..prog.funcs.len() {
        let fid = FuncId(i as u32);
        let Some(ctx) = build_ctx(prog, fid, analysis) else {
            continue;
        };
        let n = ctx.n();
        let cfg = Cfg::new(prog.func(fid));
        let summaries = callee_summaries(prog, &modref);
        let nb = prog.func(fid).blocks.len();
        // MUST: intersection meet, universal init; MAY: union meet, empty init.
        let mut must_in: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
        let mut must_out: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
        let mut may_in: Vec<Avail> = (0..nb).map(|_| Avail::empty(n)).collect();
        let mut may_out: Vec<Avail> = (0..nb).map(|_| Avail::empty(n)).collect();
        must_in[0] = Avail::empty(n);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let bi = b.0 as usize;
                let mut must = if bi == 0 {
                    Avail::empty(n)
                } else {
                    let mut acc = Avail::universal(n);
                    for &p in &cfg.preds[bi] {
                        acc.intersect_assign(&must_out[p.0 as usize]);
                    }
                    acc
                };
                let mut may = Avail::empty(n);
                for &p in &cfg.preds[bi] {
                    for w in 0..may.0.len() {
                        may.0[w] |= may_out[p.0 as usize].0[w];
                    }
                }
                must_in[bi] = must.clone();
                may_in[bi] = may.clone();
                for instr in &prog.func(fid).blocks[bi].instrs {
                    transfer(instr, &mut must, &ctx, 0, &summaries);
                    transfer(instr, &mut may, &ctx, 0, &summaries);
                }
                if must != must_out[bi] || may != may_out[bi] {
                    must_out[bi] = must;
                    may_out[bi] = may;
                    changed = true;
                }
            }
        }
        for &b in &cfg.rpo {
            let bi = b.0 as usize;
            let mut must = must_in[bi].clone();
            let mut may = may_in[bi].clone();
            for (ii, instr) in prog.func(fid).blocks[bi].instrs.iter().enumerate() {
                if let Instr::LoadMem {
                    ap, hidden: false, ..
                } = instr
                {
                    if let Some(i) = ctx.idx(*ap) {
                        out.insert(
                            (fid, b, ii),
                            SiteAvail {
                                must: must.contains(i),
                                may: may.contains(i),
                            },
                        );
                    }
                }
                transfer(instr, &mut must, &ctx, 0, &summaries);
                transfer(instr, &mut may, &ctx, 0, &summaries);
            }
        }
    }
    out
}

/// Runs RLE over every function of the program.
pub fn run_rle(prog: &mut Program, analysis: &dyn AliasAnalysis) -> RleStats {
    let modref = ModRef::build(prog);
    let mut total = RleStats::default();
    for i in 0..prog.funcs.len() {
        total += rle_function(prog, FuncId(i as u32), analysis, &modref);
    }
    total
}

/// A dense bit vector over the function's interesting access paths.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Avail(pub(crate) Vec<u64>);

impl Avail {
    pub(crate) fn empty(n: usize) -> Self {
        Avail(vec![0; n.div_ceil(64)])
    }
    pub(crate) fn universal(n: usize) -> Self {
        let mut v = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = v.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        Avail(v)
    }
    pub(crate) fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    pub(crate) fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    pub(crate) fn intersect_assign(&mut self, o: &Avail) {
        for (a, b) in self.0.iter_mut().zip(o.0.iter()) {
            *a &= b;
        }
    }
    pub(crate) fn iter_set(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (0..n).filter(move |&i| self.contains(i))
    }
}

/// Per-function alias/kill context with memoized queries.
pub(crate) struct KillCtx<'a> {
    analysis: &'a dyn AliasAnalysis,
    aps: ApTable,
    /// Interesting APs in dense order.
    interesting: Vec<ApId>,
    index: HashMap<ApId, usize>,
    /// For each interesting AP, its prefixes (1..=len steps), self last.
    prefixes: Vec<Vec<ApId>>,
    /// Memo: does a store to `s` kill interesting AP `i`?
    store_kill_memo: std::cell::RefCell<HashMap<(ApId, usize), bool>>,
    /// Memo: does a wild store kill interesting AP `i`?
    wild_kill_memo: std::cell::RefCell<HashMap<usize, bool>>,
}

impl<'a> KillCtx<'a> {
    pub(crate) fn n(&self) -> usize {
        self.interesting.len()
    }

    pub(crate) fn idx(&self, ap: ApId) -> Option<usize> {
        self.index.get(&ap).copied()
    }

    pub(crate) fn store_kills(&self, stored: ApId, i: usize) -> bool {
        if let Some(&v) = self.store_kill_memo.borrow().get(&(stored, i)) {
            return v;
        }
        let v = self.prefixes[i]
            .iter()
            .any(|&p| self.analysis.may_alias(&self.aps, stored, p));
        self.store_kill_memo.borrow_mut().insert((stored, i), v);
        v
    }

    pub(crate) fn wild_kills(&self, i: usize) -> bool {
        if let Some(&v) = self.wild_kill_memo.borrow().get(&i) {
            return v;
        }
        let path = self.aps.path(self.interesting[i]);
        let rooted_shared = matches!(path.root, tbaa_ir::path::ApRoot::Global(_));
        let v = rooted_shared
            || self.prefixes[i]
                .iter()
                .any(|&p| self.analysis.wild_may_modify(&self.aps, p));
        self.wild_kill_memo.borrow_mut().insert(i, v);
        v
    }

    /// Raw may-alias between an arbitrary path and an interesting one.
    pub(crate) fn analysis_may_alias(&self, a: ApId, i: usize) -> bool {
        self.analysis.may_alias(&self.aps, a, self.interesting[i])
    }

    pub(crate) fn mentions_var(&self, i: usize, v: VarId) -> bool {
        self.aps.path(self.interesting[i]).mentions_var(v)
    }

    pub(crate) fn mentions_global(&self, i: usize, g: GlobalId) -> bool {
        self.aps.path(self.interesting[i]).mentions_global(g)
    }
}

/// Applies the availability transfer function of one instruction.
pub(crate) fn transfer(
    instr: &Instr,
    avail: &mut Avail,
    ctx: &KillCtx<'_>,
    prog_types_len: usize,
    summaries: &dyn Fn(&Instr) -> Vec<Summary>,
) {
    let _ = prog_types_len;
    let n = ctx.n();
    match instr {
        Instr::LoadMem { ap, hidden, .. } if !hidden => {
            if let Some(i) = ctx.idx(*ap) {
                avail.set(i);
            }
        }
        Instr::StoreMem { ap, .. } => {
            let killed: Vec<usize> = avail
                .iter_set(n)
                .filter(|&i| ctx.store_kills(*ap, i))
                .collect();
            for i in killed {
                avail.clear(i);
            }
            if let Some(i) = ctx.idx(*ap) {
                avail.set(i);
            }
        }
        Instr::StoreSlot { addr, .. } => match addr.base {
            SlotBase::Local(v) => {
                let killed: Vec<usize> = avail
                    .iter_set(n)
                    .filter(|&i| ctx.mentions_var(i, v))
                    .collect();
                for i in killed {
                    avail.clear(i);
                }
            }
            SlotBase::Global(g) => {
                let killed: Vec<usize> = avail
                    .iter_set(n)
                    .filter(|&i| ctx.mentions_global(i, g))
                    .collect();
                for i in killed {
                    avail.clear(i);
                }
            }
        },
        Instr::StoreInd { .. } => {
            let killed: Vec<usize> = avail.iter_set(n).filter(|&i| ctx.wild_kills(i)).collect();
            for i in killed {
                avail.clear(i);
            }
        }
        Instr::Call {
            addr_aps,
            addr_slots,
            ..
        }
        | Instr::CallMethod {
            addr_aps,
            addr_slots,
            ..
        } => {
            let sums = summaries(instr);
            let mut kill_idx: HashSet<usize> = HashSet::new();
            for s in &sums {
                for &stored in &s.stores {
                    for i in avail.iter_set(n) {
                        if ctx.store_kills(stored, i) {
                            kill_idx.insert(i);
                        }
                    }
                }
                for &g in &s.stored_globals {
                    for i in avail.iter_set(n) {
                        if ctx.mentions_global(i, g) {
                            kill_idx.insert(i);
                        }
                    }
                }
                if s.wild_store {
                    for i in avail.iter_set(n) {
                        if ctx.wild_kills(i) {
                            kill_idx.insert(i);
                        }
                    }
                }
            }
            for &ap in addr_aps {
                for i in avail.iter_set(n) {
                    if ctx.store_kills(ap, i) {
                        kill_idx.insert(i);
                    }
                }
            }
            for sb in addr_slots {
                for i in avail.iter_set(n) {
                    let hit = match sb {
                        SlotBase::Local(v) => ctx.mentions_var(i, *v),
                        SlotBase::Global(g) => ctx.mentions_global(i, *g),
                    };
                    if hit {
                        kill_idx.insert(i);
                    }
                }
            }
            for i in kill_idx {
                avail.clear(i);
            }
        }
        _ => {}
    }
}

pub(crate) fn callee_summaries<'a>(
    prog: &'a Program,
    modref: &'a ModRef,
) -> impl Fn(&Instr) -> Vec<Summary> + 'a {
    move |instr: &Instr| match instr {
        Instr::Call { func, .. } => vec![modref.summary(*func).clone()],
        Instr::CallMethod {
            method, recv_ty, ..
        } => method_targets(prog, *recv_ty, method)
            .into_iter()
            .map(|f| modref.summary(f).clone())
            .collect(),
        _ => Vec::new(),
    }
}

/// Collects the interesting (canonical, visible) access paths of one
/// function, interns their prefixes, and builds the kill context.
pub(crate) fn build_ctx<'a>(
    prog: &mut Program,
    fid: FuncId,
    analysis: &'a dyn AliasAnalysis,
) -> Option<KillCtx<'a>> {
    let mut interesting: Vec<ApId> = Vec::new();
    {
        let mut seen = HashSet::new();
        let f = prog.func(fid);
        for b in &f.blocks {
            for instr in &b.instrs {
                let ap = match instr {
                    Instr::LoadMem {
                        ap, hidden: false, ..
                    } => Some(*ap),
                    Instr::StoreMem { ap, .. } => Some(*ap),
                    _ => None,
                };
                if let Some(ap) = ap {
                    if prog.aps.path(ap).is_canonical() && seen.insert(ap) {
                        interesting.push(ap);
                    }
                }
            }
        }
    }
    if interesting.is_empty() {
        return None;
    }
    let mut prefixes = Vec::with_capacity(interesting.len());
    for &ap in &interesting {
        let path = prog.aps.path(ap).clone();
        let mut pvec = Vec::new();
        for k in 1..=path.steps.len() {
            let mut p = path.clone();
            p.steps.truncate(k);
            pvec.push(prog.aps.intern(p));
        }
        prefixes.push(pvec);
    }
    let index: HashMap<ApId, usize> = interesting
        .iter()
        .enumerate()
        .map(|(i, &ap)| (ap, i))
        .collect();
    Some(KillCtx {
        analysis,
        aps: prog.aps.clone(),
        interesting,
        index,
        prefixes,
        store_kill_memo: Default::default(),
        wild_kill_memo: Default::default(),
    })
}

fn rle_function(
    prog: &mut Program,
    fid: FuncId,
    analysis: &dyn AliasAnalysis,
    modref: &ModRef,
) -> RleStats {
    let Some(ctx) = build_ctx(prog, fid, analysis) else {
        return RleStats::default();
    };
    let mut stats = RleStats::default();
    stats.hoisted += licm(prog, fid, &ctx, modref);
    stats.eliminated += cse(prog, fid, &ctx, modref);
    stats
}

// ---- loop-invariant load motion --------------------------------------------

fn licm(prog: &mut Program, fid: FuncId, ctx: &KillCtx<'_>, modref: &ModRef) -> usize {
    let mut hoisted_total = 0;
    // Re-run until no loop has hoistable loads (hoisting changes the CFG).
    for _round in 0..64 {
        let cfg = Cfg::new(prog.func(fid));
        let loops = cfg.natural_loops();
        let mut moved = false;
        for lp in &loops {
            let positions = hoistable_positions(prog, fid, &cfg, lp, ctx, modref);
            if positions.is_empty() {
                continue;
            }
            let func = prog.func_mut(fid);
            let ph = ensure_preheader(func, &cfg, lp);
            // Extract in original order, then remove from their blocks.
            let mut extracted: Vec<Instr> = Vec::new();
            let mut by_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
            for &(b, i) in &positions {
                by_block.entry(b).or_default().push(i);
            }
            for &(b, i) in &positions {
                let _ = (b, i);
            }
            // positions are already in dominance order (rpo, idx).
            for &(b, i) in &positions {
                extracted.push(func.blocks[b.0 as usize].instrs[i].clone());
            }
            for (b, mut idxs) in by_block {
                idxs.sort_unstable();
                for &i in idxs.iter().rev() {
                    func.blocks[b.0 as usize].instrs.remove(i);
                }
            }
            hoisted_total += extracted
                .iter()
                .filter(|i| matches!(i, Instr::LoadMem { hidden: false, .. }))
                .count();
            func.blocks[ph.0 as usize].instrs.extend(extracted);
            moved = true;
            break; // CFG changed: rebuild
        }
        if !moved {
            break;
        }
    }
    hoisted_total
}

/// Finds the backward slice of hoistable loop-invariant loads, in
/// dominance (rpo, index) order.
fn hoistable_positions(
    prog: &Program,
    fid: FuncId,
    cfg: &Cfg,
    lp: &NaturalLoop,
    ctx: &KillCtx<'_>,
    modref: &ModRef,
) -> Vec<(BlockId, usize)> {
    let func = prog.func(fid);
    let summaries = callee_summaries(prog, modref);

    // Gather loop-wide kill facts.
    let mut stored_aps: Vec<ApId> = Vec::new();
    let mut stored_locals: HashSet<VarId> = HashSet::new();
    let mut stored_globals: HashSet<GlobalId> = HashSet::new();
    let mut wild = false;
    let mut has_call = false;
    let mut defs_in_loop: HashMap<u32, usize> = HashMap::new();
    for &b in &lp.body {
        for instr in &func.blocks[b.0 as usize].instrs {
            if let Some(d) = instr.dst() {
                *defs_in_loop.entry(d.0).or_insert(0) += 1;
            }
            match instr {
                Instr::StoreMem { ap, .. } => stored_aps.push(*ap),
                Instr::StoreSlot { addr, .. } => match addr.base {
                    SlotBase::Local(v) => {
                        stored_locals.insert(v);
                    }
                    SlotBase::Global(g) => {
                        stored_globals.insert(g);
                    }
                },
                Instr::StoreInd { .. } => wild = true,
                Instr::Call {
                    addr_aps,
                    addr_slots,
                    ..
                }
                | Instr::CallMethod {
                    addr_aps,
                    addr_slots,
                    ..
                } => {
                    has_call = true;
                    stored_aps.extend(addr_aps.iter().copied());
                    for sb in addr_slots {
                        match sb {
                            SlotBase::Local(v) => {
                                stored_locals.insert(*v);
                            }
                            SlotBase::Global(g) => {
                                stored_globals.insert(*g);
                            }
                        }
                    }
                    for s in summaries(instr) {
                        stored_aps.extend(s.stores.iter().copied());
                        stored_globals.extend(s.stored_globals.iter().copied());
                        wild |= s.wild_store;
                    }
                }
                _ => {}
            }
        }
    }

    // Blocks that must be dominated: latches and in-loop exit sources.
    let mut must_dominate: Vec<BlockId> = lp.latches.clone();
    for &b in &lp.body {
        if cfg.succs[b.0 as usize].iter().any(|s| !lp.contains(*s)) && !must_dominate.contains(&b) {
            must_dominate.push(b);
        }
    }

    // Loop positions in dominance order.
    let mut order: Vec<(BlockId, usize)> = Vec::new();
    for &b in &cfg.rpo {
        if lp.contains(b) {
            for i in 0..func.blocks[b.0 as usize].instrs.len() {
                order.push((b, i));
            }
        }
    }

    // Fixpoint-mark hoistable instructions.
    let mut hoistable: HashSet<(BlockId, usize)> = HashSet::new();
    let mut hoisted_regs: HashSet<u32> = HashSet::new();
    let operand_ok =
        |op: &Operand, hoisted_regs: &HashSet<u32>, defs: &HashMap<u32, usize>| match op {
            Operand::Reg(r) => !defs.contains_key(&r.0) || hoisted_regs.contains(&r.0),
            _ => true,
        };
    loop {
        let mut changed = false;
        for &(b, i) in &order {
            if hoistable.contains(&(b, i)) {
                continue;
            }
            if !must_dominate.iter().all(|&m| cfg.dominates(b, m)) {
                continue;
            }
            let instr = &func.blocks[b.0 as usize].instrs[i];
            let ok = match instr {
                Instr::LoadSlot { addr, .. } if addr.is_simple() => match addr.base {
                    SlotBase::Local(v) => {
                        !stored_locals.contains(&v)
                            && (func.vars[v.0 as usize].class == VarClass::Register
                                || (!wild && !has_call))
                    }
                    SlotBase::Global(g) => {
                        !stored_globals.contains(&g) && !wild && {
                            // calls may store globals; summaries already added
                            // them to stored_globals
                            true
                        }
                    }
                },
                Instr::Copy { src, .. } => operand_ok(src, &hoisted_regs, &defs_in_loop),
                Instr::Un { src, .. } => operand_ok(src, &hoisted_regs, &defs_in_loop),
                Instr::Bin { lhs, rhs, .. } => {
                    operand_ok(lhs, &hoisted_regs, &defs_in_loop)
                        && operand_ok(rhs, &hoisted_regs, &defs_in_loop)
                }
                Instr::ConstText { .. } => true,
                Instr::LoadMem {
                    addr,
                    ap,
                    hidden: false,
                    ..
                } => {
                    let Some(idx) = ctx.idx(*ap) else {
                        continue;
                    };
                    operand_ok(&addr.base, &hoisted_regs, &defs_in_loop)
                        && addr
                            .indices
                            .iter()
                            .all(|(op, _, _)| operand_ok(op, &hoisted_regs, &defs_in_loop))
                        && !stored_aps.iter().any(|&s| ctx.store_kills(s, idx))
                        && !(wild && ctx.wild_kills(idx))
                }
                _ => false,
            };
            if ok {
                hoistable.insert((b, i));
                if let Some(d) = instr.dst() {
                    hoisted_regs.insert(d.0);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Backward slice from hoistable LoadMems.
    let load_positions: Vec<(BlockId, usize)> = order
        .iter()
        .copied()
        .filter(|pos| {
            hoistable.contains(pos)
                && matches!(
                    func.blocks[pos.0 .0 as usize].instrs[pos.1],
                    Instr::LoadMem { hidden: false, .. }
                )
        })
        .collect();
    if load_positions.is_empty() {
        return Vec::new();
    }
    // Map reg -> defining hoistable position (unique defs only matter).
    let mut def_pos: HashMap<u32, (BlockId, usize)> = HashMap::new();
    for &(b, i) in &order {
        if hoistable.contains(&(b, i)) {
            if let Some(d) = func.blocks[b.0 as usize].instrs[i].dst() {
                def_pos.insert(d.0, (b, i));
            }
        }
    }
    let mut needed: HashSet<(BlockId, usize)> = HashSet::new();
    let mut work: Vec<(BlockId, usize)> = load_positions.clone();
    while let Some(pos) = work.pop() {
        if !needed.insert(pos) {
            continue;
        }
        let instr = &func.blocks[pos.0 .0 as usize].instrs[pos.1];
        let mut uses: Vec<Operand> = Vec::new();
        match instr {
            Instr::Copy { src, .. } | Instr::Un { src, .. } => uses.push(*src),
            Instr::Bin { lhs, rhs, .. } => {
                uses.push(*lhs);
                uses.push(*rhs);
            }
            Instr::LoadMem { addr, .. } => {
                uses.push(addr.base);
                for (op, _, _) in &addr.indices {
                    uses.push(*op);
                }
            }
            _ => {}
        }
        for u in uses {
            if let Operand::Reg(r) = u {
                if defs_in_loop.contains_key(&r.0) {
                    if let Some(&dp) = def_pos.get(&r.0) {
                        work.push(dp);
                    }
                }
            }
        }
    }
    let mut out: Vec<(BlockId, usize)> = order.into_iter().filter(|p| needed.contains(p)).collect();
    out.dedup();
    out
}

// ---- available-load CSE -----------------------------------------------------

fn cse(prog: &mut Program, fid: FuncId, ctx: &KillCtx<'_>, modref: &ModRef) -> usize {
    let n = ctx.n();
    let cfg = Cfg::new(prog.func(fid));
    // Precompute method-call summaries so the transfer closure does not
    // borrow `prog` (which the rewrite pass mutates).
    let mut method_sums: HashMap<(u32, String), Vec<Summary>> = HashMap::new();
    for b in &prog.func(fid).blocks {
        for instr in &b.instrs {
            if let Instr::CallMethod {
                recv_ty, method, ..
            } = instr
            {
                method_sums
                    .entry((recv_ty.0, method.clone()))
                    .or_insert_with(|| {
                        method_targets(prog, *recv_ty, method)
                            .into_iter()
                            .map(|f| modref.summary(f).clone())
                            .collect()
                    });
            }
        }
    }
    let summaries = move |instr: &Instr| -> Vec<Summary> {
        match instr {
            Instr::Call { func, .. } => vec![modref.summary(*func).clone()],
            Instr::CallMethod {
                recv_ty, method, ..
            } => method_sums
                .get(&(recv_ty.0, method.clone()))
                .cloned()
                .unwrap_or_default(),
            _ => Vec::new(),
        }
    };
    let nb = prog.func(fid).blocks.len();

    // Forward dataflow: IN/OUT availability per block.
    let mut ins: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
    let mut outs: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
    ins[0] = Avail::empty(n);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let bi = b.0 as usize;
            let mut inset = if bi == 0 {
                Avail::empty(n)
            } else {
                let mut acc = Avail::universal(n);
                for &p in &cfg.preds[bi] {
                    acc.intersect_assign(&outs[p.0 as usize]);
                }
                acc
            };
            if inset != ins[bi] {
                ins[bi] = inset.clone();
            }
            for instr in &prog.func(fid).blocks[bi].instrs {
                transfer(instr, &mut inset, ctx, 0, &summaries);
            }
            if inset != outs[bi] {
                outs[bi] = inset;
                changed = true;
            }
        }
    }

    // Dry pass: which APs are ever reused?
    let mut reuse: HashSet<usize> = HashSet::new();
    for &b in &cfg.rpo {
        let bi = b.0 as usize;
        let mut avail = ins[bi].clone();
        for instr in &prog.func(fid).blocks[bi].instrs {
            if let Instr::LoadMem {
                ap, hidden: false, ..
            } = instr
            {
                if let Some(i) = ctx.idx(*ap) {
                    if avail.contains(i) {
                        reuse.insert(i);
                    }
                }
            }
            transfer(instr, &mut avail, ctx, 0, &summaries);
        }
    }
    if reuse.is_empty() {
        return 0;
    }

    // Allocate scratch slots for reused APs.
    let integer = prog.types.integer();
    let mut scratch: HashMap<usize, VarId> = HashMap::new();
    {
        let func = prog.func_mut(fid);
        for &i in &reuse {
            let ty = ctx.aps.path(ctx.interesting[i]).ty(integer);
            let v = VarId(func.vars.len() as u32);
            func.vars.push(VarDecl {
                name: format!("$rle{i}"),
                ty,
                size: 1,
                class: VarClass::Register,
            });
            scratch.insert(i, v);
        }
    }

    // Rewrite pass.
    let mut eliminated = 0usize;
    for &b in &cfg.rpo {
        let bi = b.0 as usize;
        let mut avail = ins[bi].clone();
        let old = std::mem::take(&mut prog.func_mut(fid).blocks[bi].instrs);
        let mut new_instrs = Vec::with_capacity(old.len());
        for instr in old {
            match &instr {
                Instr::LoadMem {
                    dst,
                    ap,
                    hidden: false,
                    ..
                } => {
                    let idx = ctx.idx(*ap);
                    if let Some(i) = idx {
                        if avail.contains(i) {
                            if let Some(&sv) = scratch.get(&i) {
                                new_instrs.push(Instr::LoadSlot {
                                    dst: *dst,
                                    addr: SlotAddr::var(SlotBase::Local(sv)),
                                });
                                eliminated += 1;
                                // AP remains available; no transfer needed
                                // (a scratch read generates/kills nothing).
                                continue;
                            }
                        }
                    }
                    let dst = *dst;
                    transfer(&instr, &mut avail, ctx, 0, &summaries);
                    new_instrs.push(instr);
                    if let Some(i) = idx {
                        if let Some(&sv) = scratch.get(&i) {
                            new_instrs.push(Instr::StoreSlot {
                                addr: SlotAddr::var(SlotBase::Local(sv)),
                                src: Operand::Reg(dst),
                            });
                        }
                    }
                }
                Instr::StoreMem { ap, src, .. } => {
                    let idx = ctx.idx(*ap);
                    let src = *src;
                    transfer(&instr, &mut avail, ctx, 0, &summaries);
                    new_instrs.push(instr);
                    if let Some(i) = idx {
                        if let Some(&sv) = scratch.get(&i) {
                            new_instrs.push(Instr::StoreSlot {
                                addr: SlotAddr::var(SlotBase::Local(sv)),
                                src,
                            });
                        }
                    }
                }
                _ => {
                    transfer(&instr, &mut avail, ctx, 0, &summaries);
                    new_instrs.push(instr);
                }
            }
        }
        prog.func_mut(fid).blocks[bi].instrs = new_instrs;
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;
    use tbaa_ir::compile_to_ir;

    fn count_visible_loads(p: &Program) -> usize {
        p.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i, Instr::LoadMem { hidden: false, .. }))
            .count()
    }

    fn rle_with(src: &str, level: Level) -> (Program, RleStats) {
        let mut p = compile_to_ir(src).unwrap();
        let a = Tbaa::build(&p, level, World::Closed);
        let stats = run_rle(&mut p, &a);
        (p, stats)
    }

    #[test]
    fn straightline_cse_eliminates_second_load() {
        let (p, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 5;
               x := t.f;
               y := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        // Store makes t.f available; both loads are redundant.
        assert_eq!(stats.eliminated, 2);
        assert_eq!(count_visible_loads(&p), 0);
    }

    #[test]
    fn intervening_may_alias_store_kills() {
        // Store to u.f may alias t.f (same field, compatible types), so the
        // second load survives.
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t, u: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               x := t.f;
               u.f := 9;
               y := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn intervening_different_field_does_not_kill() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t, u: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               x := t.f;
               u.g := 9;
               y := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.eliminated, 1, "t.f reloaded after unrelated store");
    }

    #[test]
    fn typedecl_vs_fieldtypedecl_opportunities() {
        // With TypeDecl the store to u.g kills t.f (all same-typed); with
        // FieldTypeDecl it does not — the Table 6 effect.
        let src = "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t, u: T; x, y: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               x := t.f;
               u.g := 9;
               y := t.f;
             END M.";
        let (_, td) = rle_with(src, Level::TypeDecl);
        let (_, ftd) = rle_with(src, Level::FieldTypeDecl);
        assert_eq!(td.eliminated, 0);
        assert_eq!(ftd.eliminated, 1);
    }

    #[test]
    fn loop_invariant_load_is_hoisted() {
        // Figure 6: a.b^ is loop invariant.
        let (p, stats) = rle_with(
            "MODULE M;
             TYPE Arr = ARRAY OF INTEGER; B = OBJECT data: Arr; END;
             VAR a: B; s: INTEGER;
             BEGIN
               a := NEW(B);
               a.data := NEW(Arr, 100);
               FOR i := 0 TO 99 DO
                 s := s + a.data[i];
               END;
             END M.",
            Level::SmFieldTypeRefs,
        );
        // a.data is hoisted out of the loop; a.data[i] stays (varying i).
        assert!(stats.hoisted >= 1, "stats: {stats:?}");
        let _ = p;
    }

    #[test]
    fn loop_with_aliasing_store_does_not_hoist() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t, u: T; s: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               t.f := 1;
               FOR i := 0 TO 9 DO
                 s := s + t.f;
                 u.f := i;
               END;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.hoisted, 0, "store to u.f may alias t.f");
    }

    #[test]
    fn call_with_store_kills_via_modref() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Clobber (u: T) = BEGIN u.f := 0 END Clobber;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               x := t.f;
               Clobber(t);
               y := t.f;
             END M.",
            Level::SmFieldTypeRefs,
        );
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn call_without_store_preserves_availability() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Pure (u: T): INTEGER = BEGIN RETURN u.f END Pure;
             VAR t: T; x, y, z: INTEGER;
             BEGIN
               t := NEW(T);
               x := t.f;
               z := Pure(t);
               y := t.f;
             END M.",
            Level::SmFieldTypeRefs,
        );
        assert_eq!(stats.eliminated, 1);
    }

    #[test]
    fn root_var_reassignment_kills() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               x := t.f;
               t := NEW(T);
               y := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.eliminated, 0, "t changed; t.f is a new location");
    }

    #[test]
    fn prefix_store_kills_longer_path() {
        let (p, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
                  H = OBJECT t: T; END;
             VAR h: H; x, y: INTEGER;
             BEGIN
               h := NEW(H);
               h.t := NEW(T);
               x := h.t.f;
               h.t := NEW(T);
               y := h.t.f;
             END M.",
            Level::SmFieldTypeRefs,
        );
        // Store-to-load forwarding removes both pointer loads of h.t, but
        // the store to the *prefix* h.t kills the availability of h.t.f,
        // so both .f loads must survive.
        assert_eq!(stats.eliminated, 2, "only the h.t pointer loads forward");
        assert_eq!(count_visible_loads(&p), 2, "both .f loads remain");
    }

    #[test]
    fn store_to_load_forwarding() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 41;
               x := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.eliminated, 1);
    }

    #[test]
    fn conditional_paths_not_eliminated() {
        // Partially redundant: load on one path only — RLE must not touch
        // it (the paper's Conditional category is exactly these).
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; c: BOOLEAN; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               IF c THEN x := t.f END;
               y := t.f;
             END M.",
            Level::FieldTypeDecl,
        );
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn var_param_wild_store_kills_taken_fields() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Sneak (VAR v: INTEGER) = BEGIN v := 7 END Sneak;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               x := t.f;
               Sneak(t.f);
               y := t.f;
             END M.",
            Level::SmFieldTypeRefs,
        );
        assert_eq!(stats.eliminated, 0, "address of t.f escapes to the call");
    }

    #[test]
    fn while_loop_invariant_hoists_in_rotated_form() {
        let (_, stats) = rle_with(
            "MODULE M;
             TYPE Node = OBJECT v: INTEGER; next: Node; END;
                  H = OBJECT lim: INTEGER; END;
             VAR n: Node; h: H; s: INTEGER;
             BEGIN
               h := NEW(H); h.lim := 10;
               n := NEW(Node);
               WHILE s < h.lim DO
                 s := s + 1;
               END;
             END M.",
            Level::SmFieldTypeRefs,
        );
        // h.lim is loaded in the guard and in the bottom test; the bottom
        // test load is inside the loop and invariant -> hoisted or CSE'd.
        assert!(stats.removed() >= 1, "stats: {stats:?}");
    }
}
