//! Interprocedural mod-ref analysis (§3.4.1).
//!
//! RLE is preceded by a mod-ref analysis that summarizes the access paths
//! referenced and modified by each call, so a loop-invariant load can be
//! hoisted across a call when the callee provably does not modify it.
//!
//! A summary is computed bottom-up to a fixpoint over the (possibly
//! cyclic) call graph. Method calls union the summaries of every
//! type-feasible target. A callee that stores through a VAR-parameter
//! location is *wild*: at each call site the paths actually passed by
//! address (`addr_aps`) are charged to the caller's summary, and any
//! location whose address may be taken is conservatively killed.

use mini_m3::check::GlobalId;
use mini_m3::types::TypeId;
use std::collections::HashSet;
use tbaa_ir::ir::{Instr, Program, SlotBase};
use tbaa_ir::path::{ApId, FuncId};

/// What one function (transitively) reads and writes.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Heap access paths possibly stored to.
    pub stores: HashSet<ApId>,
    /// Heap access paths possibly loaded from.
    pub loads: HashSet<ApId>,
    /// Globals possibly stored to.
    pub stored_globals: HashSet<GlobalId>,
    /// Whether the function (transitively) performs an indirect store
    /// through a VAR-parameter location.
    pub wild_store: bool,
    /// Whether the function (transitively) performs an indirect *load*
    /// through a VAR-parameter location (dead-store elimination needs
    /// this).
    pub wild_load: bool,
}

/// Mod-ref summaries for every function of a program.
#[derive(Debug, Clone)]
pub struct ModRef {
    summaries: Vec<Summary>,
}

impl ModRef {
    /// Computes summaries to a fixpoint.
    ///
    /// # Examples
    ///
    /// ```
    /// let prog = tbaa_ir::compile_to_ir(
    ///     "MODULE M;
    ///      TYPE T = OBJECT f: INTEGER; END;
    ///      PROCEDURE Set (t: T) = BEGIN t.f := 1 END Set;
    ///      VAR t: T;
    ///      BEGIN t := NEW(T); Set(t); END M.")?;
    /// let modref = tbaa_opt::ModRef::build(&prog);
    /// let set = prog.func_id("Set").unwrap();
    /// assert_eq!(modref.summary(set).stores.len(), 1);
    /// # Ok::<(), mini_m3::Diagnostics>(())
    /// ```
    pub fn build(prog: &Program) -> Self {
        let n = prog.funcs.len();
        let mut sums: Vec<Summary> = vec![Summary::default(); n];
        // Seed with local facts.
        for (i, f) in prog.funcs.iter().enumerate() {
            let s = &mut sums[i];
            for b in &f.blocks {
                for instr in &b.instrs {
                    match instr {
                        Instr::StoreMem { ap, .. } => {
                            s.stores.insert(*ap);
                        }
                        Instr::LoadMem { ap, .. } => {
                            s.loads.insert(*ap);
                        }
                        Instr::StoreSlot { addr, .. } => {
                            if let SlotBase::Global(g) = addr.base {
                                s.stored_globals.insert(g);
                            }
                        }
                        Instr::StoreInd { .. } => s.wild_store = true,
                        Instr::LoadInd { .. } => s.wild_load = true,
                        _ => {}
                    }
                }
            }
        }
        // Propagate through calls until stable.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, f) in prog.funcs.iter().enumerate() {
                for b in &f.blocks {
                    for instr in &b.instrs {
                        let (targets, addr_aps, addr_slots) = match instr {
                            Instr::Call {
                                func,
                                addr_aps,
                                addr_slots,
                                ..
                            } => (vec![*func], addr_aps, addr_slots),
                            Instr::CallMethod {
                                method,
                                recv_ty,
                                addr_aps,
                                addr_slots,
                                ..
                            } => (method_targets(prog, *recv_ty, method), addr_aps, addr_slots),
                            _ => continue,
                        };
                        // Merge every target's summary into ours.
                        let mut add_stores: Vec<ApId> = Vec::new();
                        let mut add_loads: Vec<ApId> = Vec::new();
                        let mut add_globals: Vec<GlobalId> = Vec::new();
                        let mut wild = false;
                        let mut wildl = false;
                        for t in targets {
                            let cs = &sums[t.0 as usize];
                            add_stores.extend(cs.stores.iter().copied());
                            add_loads.extend(cs.loads.iter().copied());
                            add_globals.extend(cs.stored_globals.iter().copied());
                            wild |= cs.wild_store;
                            wildl |= cs.wild_load;
                        }
                        if wild {
                            // The callee may store through the locations we
                            // pass it.
                            add_stores.extend(addr_aps.iter().copied());
                            for sb in addr_slots {
                                if let SlotBase::Global(g) = sb {
                                    add_globals.push(*g);
                                }
                            }
                        }
                        let s = &mut sums[i];
                        for ap in add_stores {
                            changed |= s.stores.insert(ap);
                        }
                        for ap in add_loads {
                            changed |= s.loads.insert(ap);
                        }
                        for g in add_globals {
                            changed |= s.stored_globals.insert(g);
                        }
                        if wild && !s.wild_store {
                            s.wild_store = true;
                            changed = true;
                        }
                        if wildl && !s.wild_load {
                            s.wild_load = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        ModRef { summaries: sums }
    }

    /// The summary for one function.
    pub fn summary(&self, f: FuncId) -> &Summary {
        &self.summaries[f.0 as usize]
    }
}

/// The set of functions a method call could dispatch to, by declared
/// receiver type (every subtype with a bound implementation).
pub fn method_targets(prog: &Program, recv_ty: TypeId, method: &str) -> Vec<FuncId> {
    let mut out = Vec::new();
    for t in prog.types.subtypes(recv_ty) {
        if let Some(&f) = prog.method_impls.get(&(t, method.to_string())) {
            if !out.contains(&f) {
                out.push(f);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa_ir::compile_to_ir;

    #[test]
    fn direct_stores_summarized() {
        let p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE SetF (t: T) = BEGIN t.f := 1 END SetF;
             VAR t: T;
             BEGIN t := NEW(T); SetF(t); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        let setf = p.func_id("SetF").unwrap();
        assert_eq!(mr.summary(setf).stores.len(), 1);
        assert!(!mr.summary(setf).wild_store);
        // Main inherits the callee's stores.
        assert_eq!(mr.summary(p.main).stores.len(), 1);
    }

    #[test]
    fn transitive_propagation() {
        let p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Inner (t: T) = BEGIN t.f := 1 END Inner;
             PROCEDURE Outer (t: T) = BEGIN Inner(t) END Outer;
             VAR t: T;
             BEGIN t := NEW(T); Outer(t); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        let outer = p.func_id("Outer").unwrap();
        assert_eq!(mr.summary(outer).stores.len(), 1);
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; n: T; END;
             PROCEDURE Walk (t: T) =
             BEGIN
               IF t # NIL THEN t.f := 1; Walk(t.n) END;
             END Walk;
             VAR t: T;
             BEGIN t := NEW(T); Walk(t); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        let walk = p.func_id("Walk").unwrap();
        assert!(!mr.summary(walk).stores.is_empty());
        assert!(!mr.summary(walk).loads.is_empty());
    }

    #[test]
    fn wild_store_via_var_param() {
        let p = compile_to_ir(
            "MODULE M;
             PROCEDURE Set (VAR x: INTEGER) = BEGIN x := 1 END Set;
             PROCEDURE Mid (VAR x: INTEGER) = BEGIN Set(x) END Mid;
             VAR g: INTEGER;
             BEGIN Mid(g); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        assert!(mr.summary(p.func_id("Set").unwrap()).wild_store);
        assert!(mr.summary(p.func_id("Mid").unwrap()).wild_store);
    }

    #[test]
    fn wild_callee_charges_addr_aps_to_caller() {
        let p = compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Set (VAR x: INTEGER) = BEGIN x := 1 END Set;
             PROCEDURE Caller (t: T) = BEGIN Set(t.f) END Caller;
             VAR t: T;
             BEGIN t := NEW(T); Caller(t); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        let caller = p.func_id("Caller").unwrap();
        // Caller passes &t.f to a wild callee, so t.f is in its stores.
        assert_eq!(mr.summary(caller).stores.len(), 1);
    }

    #[test]
    fn globals_stored_tracked() {
        let p = compile_to_ir(
            "MODULE M;
             VAR g: INTEGER;
             PROCEDURE Bump () = BEGIN g := g + 1 END Bump;
             BEGIN Bump(); END M.",
        )
        .unwrap();
        let mr = ModRef::build(&p);
        let bump = p.func_id("Bump").unwrap();
        assert_eq!(mr.summary(bump).stored_globals.len(), 1);
        assert_eq!(mr.summary(p.main).stored_globals.len(), 1);
    }

    #[test]
    fn method_targets_by_hierarchy() {
        let p = compile_to_ir(
            "MODULE M;
             TYPE
               A = OBJECT METHODS m () := MA; END;
               B = A OBJECT OVERRIDES m := MB; END;
             PROCEDURE MA (self: A) = BEGIN END MA;
             PROCEDURE MB (self: B) = BEGIN END MB;
             VAR a: A;
             BEGIN a := NEW(B); a.m(); END M.",
        )
        .unwrap();
        let a = p.types.by_name("A").unwrap();
        let b = p.types.by_name("B").unwrap();
        let ts = method_targets(&p, a, "m");
        assert_eq!(ts.len(), 2);
        let ts_b = method_targets(&p, b, "m");
        assert_eq!(ts_b.len(), 1);
    }
}
