//! # tbaa-opt — optimization clients of type-based alias analysis
//!
//! The paper evaluates TBAA through its clients. This crate implements
//! them over the `tbaa-ir` register IR:
//!
//! * [`rle`] — **redundant load elimination** (§3.4.1): loop-invariant
//!   load motion plus available-load CSE, parameterized by any
//!   [`tbaa::AliasAnalysis`];
//! * [`modref`] — the interprocedural **mod-ref** summaries RLE consults
//!   at call sites;
//! * [`devirt`] — **method invocation resolution** (Minv, §3.7) driven by
//!   the `TypeRefsTable`;
//! * [`inline`] — procedure **inlining** of resolved calls;
//! * [`copyprop`] — access-path **copy propagation**, the missing piece
//!   the paper blames for its *Breakup* category (used as a shadow pass
//!   in the limit study and as an ablation in the benches).
//!
//! [`optimize`] composes them in the paper's configurations.
//!
//! ## Example
//!
//! ```
//! use tbaa::analysis::{Level, Tbaa};
//! use tbaa::World;
//!
//! let mut prog = tbaa_ir::compile_to_ir(
//!     "MODULE M;
//!      TYPE T = OBJECT f: INTEGER; END;
//!      VAR t: T; x, y: INTEGER;
//!      BEGIN t := NEW(T); t.f := 1; x := t.f; y := t.f; END M.")?;
//! let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
//! let stats = tbaa_opt::rle::run_rle(&mut prog, &analysis);
//! assert_eq!(stats.eliminated, 2);
//! # Ok::<(), mini_m3::Diagnostics>(())
//! ```

pub mod copyprop;
pub mod devirt;
pub mod dse;
pub mod inline;
pub mod modref;
pub mod pre;
pub mod rle;

pub use devirt::DevirtStats;
pub use inline::InlineStats;
pub use modref::ModRef;
pub use rle::{run_rle, RleStats};

use tbaa::analysis::{Level, Tbaa};
use tbaa::{CompiledAliasEngine, World};
use tbaa_ir::ir::Program;

/// Which optimizations to run, mirroring the paper's configurations.
///
/// `Hash` makes an options value usable as a cache key (the evaluation
/// engine memoizes optimized program variants per configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// Run redundant load elimination.
    pub rle: bool,
    /// Resolve method invocations (Minv) and inline.
    pub devirt_inline: bool,
    /// Run access-path copy propagation before RLE (an extension the
    /// paper's optimizer lacks).
    pub copy_propagation: bool,
    /// Run dead store elimination after RLE (a second analysis client).
    pub dead_store_elimination: bool,
    /// Alias analysis level used by all clients.
    pub level: Level,
    /// Closed- or open-world assumption (§4).
    pub world: World,
}

impl OptOptions {
    /// A builder starting from the empty configuration (no passes, most
    /// precise analysis level, closed world):
    ///
    /// ```
    /// use tbaa_opt::OptOptions;
    /// use tbaa::analysis::Level;
    ///
    /// let opts = OptOptions::builder().rle(true).inline(true).build();
    /// assert_eq!(opts, OptOptions::full(Level::SmFieldTypeRefs));
    /// ```
    pub fn builder() -> OptOptionsBuilder {
        OptOptionsBuilder {
            opts: OptOptions {
                rle: false,
                devirt_inline: false,
                copy_propagation: false,
                dead_store_elimination: false,
                level: Level::SmFieldTypeRefs,
                world: World::Closed,
            },
        }
    }

    /// The paper's headline configuration: RLE at the given level,
    /// closed world.
    pub fn rle_only(level: Level) -> Self {
        Self::builder().rle(true).level(level).build()
    }

    /// Figure 11's full configuration.
    pub fn full(level: Level) -> Self {
        Self::builder().rle(true).inline(true).level(level).build()
    }
}

/// Builds an [`OptOptions`] pass by pass; see [`OptOptions::builder`].
#[derive(Debug, Clone, Copy)]
pub struct OptOptionsBuilder {
    opts: OptOptions,
}

impl OptOptionsBuilder {
    /// Enable or disable redundant load elimination.
    pub fn rle(mut self, on: bool) -> Self {
        self.opts.rle = on;
        self
    }

    /// Enable or disable method resolution (Minv) plus inlining.
    pub fn inline(mut self, on: bool) -> Self {
        self.opts.devirt_inline = on;
        self
    }

    /// Enable or disable access-path copy propagation.
    pub fn copy_propagation(mut self, on: bool) -> Self {
        self.opts.copy_propagation = on;
        self
    }

    /// Enable or disable dead store elimination.
    pub fn dead_store_elimination(mut self, on: bool) -> Self {
        self.opts.dead_store_elimination = on;
        self
    }

    /// Set the alias-analysis precision level.
    pub fn level(mut self, level: Level) -> Self {
        self.opts.level = level;
        self
    }

    /// Set the closed- or open-world assumption.
    pub fn world(mut self, world: World) -> Self {
        self.opts.world = world;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> OptOptions {
        self.opts
    }
}

/// What an [`optimize`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// RLE statistics (Table 6's metric is `rle.removed()`).
    pub rle: RleStats,
    /// Devirtualization statistics.
    pub devirt: DevirtStats,
    /// Inlining statistics.
    pub inline: InlineStats,
    /// Access paths rewritten by copy propagation.
    pub copy_propagated: usize,
    /// Heap stores removed by dead store elimination.
    pub dse: dse::DseStats,
}

/// Runs the selected optimizations in the paper's order: method
/// resolution, inlining, (optional copy propagation), then RLE.
///
/// The alias-query-heavy passes (copy propagation, RLE, DSE) run
/// against a [`CompiledAliasEngine`] so their per-store kill scans hit
/// precomputed node chains and the pair memo instead of re-walking raw
/// paths. Each pass still compiles a fresh engine because the previous
/// pass may have rewritten the program (and interned new paths).
pub fn optimize(prog: &mut Program, opts: &OptOptions) -> OptReport {
    let mut report = OptReport::default();
    if opts.devirt_inline {
        let analysis = Tbaa::build(prog, opts.level, opts.world);
        report.devirt = devirt::devirtualize(prog, &analysis);
        report.inline = inline::inline_small(prog, 60, 20_000);
    }
    if opts.copy_propagation {
        let engine = CompiledAliasEngine::build(prog, opts.level, opts.world);
        report.copy_propagated = copyprop::propagate_access_paths(prog, &engine);
    }
    if opts.rle {
        let engine = CompiledAliasEngine::build(prog, opts.level, opts.world);
        report.rle = rle::run_rle(prog, &engine);
    }
    if opts.dead_store_elimination {
        let engine = CompiledAliasEngine::build(prog, opts.level, opts.world);
        report.dse = dse::run_dse(prog, &engine);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_full_pipeline_smoke() {
        let mut prog = tbaa_ir::compile_to_ir(
            "MODULE M;
             TYPE T = OBJECT v: INTEGER; METHODS get (): INTEGER := Get; END;
             PROCEDURE Get (self: T): INTEGER = BEGIN RETURN self.v END Get;
             VAR t: T; x, y: INTEGER;
             BEGIN
               t := NEW(T);
               t.v := 3;
               x := t.get();
               y := t.get();
             END M.",
        )
        .unwrap();
        let mut opts = OptOptions::full(Level::SmFieldTypeRefs);
        // Copy propagation re-roots the inlined `self`-based paths at `t`,
        // letting RLE see both loads as the same path.
        opts.copy_propagation = true;
        let report = optimize(&mut prog, &opts);
        assert_eq!(report.devirt.resolved, 2);
        assert_eq!(report.inline.inlined, 2);
        assert!(report.copy_propagated > 0, "report: {report:?}");
        assert!(report.rle.removed() >= 2, "report: {report:?}");
    }
}
