//! Dead store elimination — a second client of the alias analysis.
//!
//! The paper notes that "RLE is just one of many optimizations that
//! benefits from alias analysis"; DSE is the natural dual. A heap store
//! is dead when, on **every** path forward, the same access path is
//! stored again before anything that might *read* the location:
//!
//! * overwrite detection uses *path identity* (the only must-alias
//!   relation the type-based framework offers);
//! * read detection uses the alias analysis's may-alias (any load,
//!   callee summary load, indirect load through a VAR location, or
//!   function return kills deadness);
//! * an assignment to a root or index variable of a pending path stops
//!   the overwrite from counting (it would target a different location).
//!
//! This is a backward all-paths dataflow over the same interned path
//! universe RLE uses.

use crate::modref::{method_targets, ModRef, Summary};
use crate::rle::{build_ctx, Avail, KillCtx};
use std::collections::HashMap;
use tbaa::analysis::AliasAnalysis;
use tbaa_ir::cfg::Cfg;
use tbaa_ir::ir::{BlockId, Instr, Program, SlotBase};
use tbaa_ir::path::FuncId;

/// What DSE did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Heap stores removed.
    pub removed: usize,
}

/// Runs dead store elimination over every function.
///
/// # Examples
///
/// ```
/// use tbaa::analysis::{Level, Tbaa};
/// use tbaa::World;
///
/// let mut prog = tbaa_ir::compile_to_ir(
///     "MODULE M;
///      TYPE T = OBJECT f: INTEGER; END;
///      VAR t: T; x: INTEGER;
///      BEGIN t := NEW(T); t.f := 1; t.f := 2; x := t.f; END M.")?;
/// let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
/// let stats = tbaa_opt::dse::run_dse(&mut prog, &analysis);
/// assert_eq!(stats.removed, 1); // `t.f := 1` was overwritten unread
/// # Ok::<(), mini_m3::Diagnostics>(())
/// ```
pub fn run_dse(prog: &mut Program, analysis: &dyn AliasAnalysis) -> DseStats {
    let modref = ModRef::build(prog);
    let mut stats = DseStats::default();
    for i in 0..prog.funcs.len() {
        stats.removed += dse_function(prog, FuncId(i as u32), analysis, &modref);
    }
    stats
}

/// Backward transfer: `dead` holds path indices that will definitely be
/// overwritten before any potential read.
fn transfer_back(
    instr: &Instr,
    dead: &mut Avail,
    ctx: &KillCtx<'_>,
    summaries: &dyn Fn(&Instr) -> Vec<Summary>,
) {
    let n = ctx.n();
    match instr {
        Instr::StoreMem { ap, .. } => {
            if let Some(i) = ctx.idx(*ap) {
                dead.set(i);
            }
        }
        Instr::LoadMem { ap, .. } => {
            // Any may-aliased read revives the location. (Hidden dope
            // loads read the dope slot, which is never stored, but go
            // through the same may-alias test for uniformity.)
            let revived: Vec<usize> = dead
                .iter_set(n)
                .filter(|&i| ctx.analysis_may_alias(*ap, i))
                .collect();
            for i in revived {
                dead.clear(i);
            }
        }
        Instr::LoadInd { .. } => {
            let revived: Vec<usize> = dead.iter_set(n).filter(|&i| ctx.wild_kills(i)).collect();
            for i in revived {
                dead.clear(i);
            }
        }
        Instr::StoreSlot { addr, .. } => {
            // A root/index variable changes: pending overwrites above this
            // point would hit a different location.
            let dropped: Vec<usize> = dead
                .iter_set(n)
                .filter(|&i| match addr.base {
                    SlotBase::Local(v) => ctx.mentions_var(i, v),
                    SlotBase::Global(g) => ctx.mentions_global(i, g),
                })
                .collect();
            for i in dropped {
                dead.clear(i);
            }
        }
        Instr::StoreInd { .. } => {
            // An indirect store may target the same location through an
            // alias; treating it as an overwrite would need must-alias,
            // and it may also be *read* downstream through the location —
            // drop everything addressable.
            let dropped: Vec<usize> = dead.iter_set(n).filter(|&i| ctx.wild_kills(i)).collect();
            for i in dropped {
                dead.clear(i);
            }
        }
        Instr::Call { .. } | Instr::CallMethod { .. } => {
            let sums = summaries(instr);
            let mut drop_idx: Vec<usize> = Vec::new();
            for i in dead.iter_set(n) {
                let mut revived = false;
                for s in &sums {
                    if (s.wild_load || s.wild_store) && ctx.wild_kills(i) {
                        revived = true;
                        break;
                    }
                    if s.loads.iter().any(|&l| ctx.analysis_may_alias(l, i)) {
                        revived = true;
                        break;
                    }
                    // Callee stores are may-stores, not must-overwrites:
                    // they do not make anything dead, and a store the
                    // callee performs may also be to a *different* object
                    // of the same path shape, so conservatively drop
                    // deadness for may-aliased paths too.
                    if s.stores.iter().any(|&st| ctx.analysis_may_alias(st, i)) {
                        revived = true;
                        break;
                    }
                }
                if revived {
                    drop_idx.push(i);
                }
            }
            // Also: location values passed by address may be read inside.
            if let Instr::Call { addr_aps, .. } | Instr::CallMethod { addr_aps, .. } = instr {
                for &a in addr_aps {
                    for i in dead.iter_set(n) {
                        if ctx.analysis_may_alias(a, i) {
                            drop_idx.push(i);
                        }
                    }
                }
            }
            for i in drop_idx {
                dead.clear(i);
            }
        }
        _ => {}
    }
}

fn dse_function(
    prog: &mut Program,
    fid: FuncId,
    analysis: &dyn AliasAnalysis,
    modref: &ModRef,
) -> usize {
    let Some(ctx) = build_ctx(prog, fid, analysis) else {
        return 0;
    };
    let n = ctx.n();
    let cfg = Cfg::new(prog.func(fid));
    let nb = prog.func(fid).blocks.len();
    let dead_sites: Vec<(BlockId, usize)> = {
        // Precompute method summaries without borrowing prog inside the
        // rewrite phase.
        let mut method_sums: HashMap<(u32, String), Vec<Summary>> = HashMap::new();
        for b in &prog.func(fid).blocks {
            for instr in &b.instrs {
                if let Instr::CallMethod {
                    recv_ty, method, ..
                } = instr
                {
                    method_sums
                        .entry((recv_ty.0, method.clone()))
                        .or_insert_with(|| {
                            method_targets(prog, *recv_ty, method)
                                .into_iter()
                                .map(|f| modref.summary(f).clone())
                                .collect()
                        });
                }
            }
        }
        let summaries = move |instr: &Instr| -> Vec<Summary> {
            match instr {
                Instr::Call { func, .. } => vec![modref.summary(*func).clone()],
                Instr::CallMethod {
                    recv_ty, method, ..
                } => method_sums
                    .get(&(recv_ty.0, method.clone()))
                    .cloned()
                    .unwrap_or_default(),
                _ => Vec::new(),
            }
        };

        // Backward dataflow: OUT(exit) = ∅; meet over successors is
        // intersection; unknown blocks start universal.
        let mut ins: Vec<Avail> = (0..nb).map(|_| Avail::universal(n)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().rev() {
                let bi = b.0 as usize;
                let succs = &cfg.succs[bi];
                let mut dead = if succs.is_empty() {
                    Avail::empty(n)
                } else {
                    let mut acc = Avail::universal(n);
                    for &s in succs {
                        acc.intersect_assign(&ins[s.0 as usize]);
                    }
                    acc
                };
                for instr in prog.func(fid).blocks[bi].instrs.iter().rev() {
                    transfer_back(instr, &mut dead, &ctx, &summaries);
                }
                if dead != ins[bi] {
                    ins[bi] = dead;
                    changed = true;
                }
            }
        }

        // Identify dead stores: re-walk each block backward with the
        // converged successor state.
        let mut sites = Vec::new();
        for &b in &cfg.rpo {
            let bi = b.0 as usize;
            let succs = &cfg.succs[bi];
            let mut dead = if succs.is_empty() {
                Avail::empty(n)
            } else {
                let mut acc = Avail::universal(n);
                for &s in succs {
                    acc.intersect_assign(&ins[s.0 as usize]);
                }
                acc
            };
            for (ii, instr) in prog.func(fid).blocks[bi].instrs.iter().enumerate().rev() {
                if let Instr::StoreMem { ap, .. } = instr {
                    if let Some(i) = ctx.idx(*ap) {
                        if dead.contains(i) {
                            sites.push((b, ii));
                        }
                    }
                }
                transfer_back(instr, &mut dead, &ctx, &summaries);
            }
        }
        sites
    };

    let count = dead_sites.len();
    let func = prog.func_mut(fid);
    let mut by_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (b, i) in dead_sites {
        by_block.entry(b).or_default().push(i);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable();
        for &i in idxs.iter().rev() {
            func.blocks[b.0 as usize].instrs.remove(i);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::analysis::{Level, Tbaa};
    use tbaa::World;

    fn dse_with(src: &str) -> (Program, DseStats) {
        let mut p = tbaa_ir::compile_to_ir(src).unwrap();
        let a = Tbaa::build(&p, Level::SmFieldTypeRefs, World::Closed);
        let stats = run_dse(&mut p, &a);
        (p, stats)
    }

    fn count_heap_stores(p: &Program) -> usize {
        p.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i, Instr::StoreMem { .. }))
            .count()
    }

    #[test]
    fn overwritten_store_is_removed() {
        let (p, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;      (* dead: overwritten before any read *)
               t.f := 2;
               x := t.f;
             END M.",
        );
        assert_eq!(stats.removed, 1);
        assert_eq!(count_heap_stores(&p), 1);
    }

    #[test]
    fn read_between_keeps_store() {
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;
               x := t.f;      (* read revives *)
               t.f := 2;
             END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn may_aliased_read_keeps_store() {
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t, u: T; x: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               t := u;        (* merge: u.f may read t's cell *)
               t.f := 1;
               x := u.f;
               t.f := 2;
             END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn root_change_between_stores_keeps_first() {
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T;
             BEGIN
               t := NEW(T);
               t.f := 1;      (* NOT dead: t changes, second store hits a
                                 different object; the first object might
                                 still be reachable elsewhere *)
               t := NEW(T);
               t.f := 2;
             END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn call_reading_field_keeps_store() {
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Peek (t: T): INTEGER = BEGIN RETURN t.f END Peek;
             VAR t: T; x: INTEGER;
             BEGIN
               t := NEW(T);
               t.f := 1;
               x := Peek(t);
               t.f := 2;
             END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn conditional_overwrite_not_dead() {
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T; c: BOOLEAN;
             BEGIN
               t := NEW(T);
               t.f := 1;      (* only one path overwrites: live *)
               IF c THEN t.f := 2 END;
             END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn store_before_return_is_live() {
        // The object may be observed by the caller or later code.
        let (_, stats) = dse_with(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             PROCEDURE Mk (): T =
             VAR t: T;
             BEGIN t := NEW(T); t.f := 7; RETURN t END Mk;
             VAR g: T; x: INTEGER;
             BEGIN g := Mk(); x := g.f; END M.",
        );
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn precision_depends_on_analysis_level() {
        // Under TypeDecl the intervening load of u.g may alias t.f
        // (both INTEGER); FieldTypeDecl knows better and kills the store.
        let src = "MODULE M;
             TYPE T = OBJECT f, g: INTEGER; END;
             VAR t, u: T; x: INTEGER;
             BEGIN
               t := NEW(T); u := NEW(T);
               t.f := 1;
               x := u.g;
               t.f := 2;
               x := x + t.f;
             END M.";
        let mut p1 = tbaa_ir::compile_to_ir(src).unwrap();
        let td = Tbaa::build(&p1, Level::TypeDecl, World::Closed);
        let s1 = run_dse(&mut p1, &td);
        let mut p2 = tbaa_ir::compile_to_ir(src).unwrap();
        let ftd = Tbaa::build(&p2, Level::FieldTypeDecl, World::Closed);
        let s2 = run_dse(&mut p2, &ftd);
        assert_eq!(s1.removed, 0, "TypeDecl cannot prove the store dead");
        assert_eq!(s2.removed, 1, "FieldTypeDecl can");
    }
}
