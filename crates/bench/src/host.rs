//! Host provenance stamping for benchmark artifacts.
//!
//! Every committed `BENCH_*.json` needs to say *where it was measured*:
//! the repeated ROADMAP caveat that thread-scaling curves from a 1-CPU
//! container are necessarily flat used to be tribal knowledge. The
//! [`host_stamp`] object makes it machine-readable — downstream tooling
//! can gate on `single_cpu` instead of guessing from the numbers.

use std::time::{SystemTime, UNIX_EPOCH};
use tbaa_server::json::Value;

/// A JSON object describing the measuring host: degree of parallelism,
/// a target triple, a UNIX timestamp, and the explicit single-CPU flag.
pub fn host_stamp() -> Value<'static> {
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timestamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut fields = vec![
        ("available_parallelism", Value::Int(parallelism as i64)),
        (
            "triple",
            Value::Str(
                format!(
                    "{}-{}-{}",
                    std::env::consts::ARCH,
                    std::env::consts::FAMILY,
                    std::env::consts::OS
                )
                .into(),
            ),
        ),
        ("timestamp_unix", Value::Int(timestamp as i64)),
        ("single_cpu", Value::Bool(parallelism == 1)),
    ];
    if parallelism == 1 {
        fields.push((
            "caveat",
            Value::Str(
                "measured on a 1-CPU host: thread-scaling and shard-parallelism \
                 numbers in this artifact cannot show a speedup"
                    .into(),
            ),
        ));
    }
    Value::object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_has_required_fields() {
        let v = host_stamp();
        let s = v.encode();
        assert!(s.contains("\"available_parallelism\""));
        assert!(s.contains("\"triple\""));
        assert!(s.contains("\"timestamp_unix\""));
        assert!(s.contains("\"single_cpu\""));
    }
}
