//! # tbaa-bench — regenerating every table and figure of the paper
//!
//! Each public function computes the data behind one table or figure of
//! *Type-Based Alias Analysis* over the `tbaa-benchsuite` programs:
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`table4`] | Table 4 — benchmark description (lines, instructions, load mix) |
//! | [`table5`] | Table 5 — static alias pairs per analysis |
//! | [`table6`] | Table 6 — redundant loads removed statically |
//! | [`fig8`]   | Figure 8 — simulated run time of RLE per analysis |
//! | [`fig9`]   | Figure 9 — dynamic redundancy before/after RLE |
//! | [`fig10`]  | Figure 10 — sources of remaining redundancy |
//! | [`fig11`]  | Figure 11 — cumulative RLE / Minv+Inlining impact |
//! | [`fig12`]  | Figure 12 — open- vs closed-world RLE |
//!
//! The `paper-tables` binary prints them; the Criterion benches in
//! `benches/` time the underlying analyses and regenerate the artifacts.
//!
//! All of the computation lives in the [`Engine`]: it compiles each
//! benchmark once, memoizes analyses and optimized variants, and fans
//! rows out across worker threads. The free functions below are
//! single-table conveniences that spin up a throwaway engine; callers
//! producing several tables (like `paper-tables`) should build one
//! [`Engine`] and reuse it so the compile/analysis/simulation caches are
//! shared across all of them.

pub mod engine;
pub mod host;
pub mod jsonout;
pub mod load;
pub mod rng;

pub use engine::{Engine, EngineStats};

use tbaa::AliasPairCounts;
use tbaa_sim::{Breakdown, LimitResult};

/// The default workload scale for the printed tables.
pub const DEFAULT_SCALE: u32 = 2;

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-comment, non-blank source lines.
    pub lines: usize,
    /// Executed instructions (`None` for the interactive programs).
    pub instructions: Option<u64>,
    /// Percent of instructions that are heap loads.
    pub heap_load_pct: Option<f64>,
    /// Percent of instructions that are other loads.
    pub other_load_pct: Option<f64>,
    /// Description.
    pub about: &'static str,
}

/// Computes Table 4 with a throwaway [`Engine`].
pub fn table4(scale: u32) -> Vec<Table4Row> {
    Engine::new(scale).table4()
}

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Heap reference expressions in the program.
    pub references: usize,
    /// Pair counts for TypeDecl, FieldTypeDecl, SMFieldTypeRefs.
    pub by_level: [AliasPairCounts; 3],
}

/// Computes Table 5 (static alias pairs; all ten programs) with a
/// throwaway [`Engine`].
pub fn table5(scale: u32) -> Vec<Table5Row> {
    Engine::new(scale).table5()
}

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Loads removed statically per analysis level.
    pub removed: [usize; 3],
}

/// Computes Table 6 (redundant loads removed statically; the paper lists
/// the seven non-interactive programs) with a throwaway [`Engine`].
pub fn table6(scale: u32) -> Vec<Table6Row> {
    Engine::new(scale).table6()
}

/// One bar group of Figure 8 (or 12): percent of the original simulated
/// running time.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Percent of base cycles per configuration.
    pub pct: Vec<f64>,
    /// Configuration labels, parallel to `pct`.
    pub labels: Vec<&'static str>,
}

/// Computes Figure 8: simulated run time of RLE under each analysis,
/// normalized to the unoptimized program (100). Throwaway [`Engine`].
pub fn fig8(scale: u32) -> Vec<RuntimeRow> {
    Engine::new(scale).fig8()
}

/// One pair of bars in Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// The limit-study counters.
    pub limit: LimitResult,
}

/// Computes Figure 9: the fraction of heap references that are
/// dynamically redundant, originally and after TBAA+RLE. Throwaway
/// [`Engine`].
pub fn fig9(scale: u32) -> Vec<Fig9Row> {
    Engine::new(scale).fig9()
}

/// One stacked bar of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Dynamic redundant-load counts by category.
    pub breakdown: Breakdown,
    /// Heap loads of the *original* program (the figure's denominator).
    pub original_heap_loads: u64,
}

/// Computes Figure 10: where the redundancy remaining after RLE comes
/// from. Throwaway [`Engine`].
pub fn fig10(scale: u32) -> Vec<Fig10Row> {
    Engine::new(scale).fig10()
}

/// Computes Figure 11: cumulative impact of RLE, Minv+Inlining, and both.
/// Throwaway [`Engine`].
pub fn fig11(scale: u32) -> Vec<RuntimeRow> {
    Engine::new(scale).fig11()
}

/// Computes Figure 12: RLE under the closed- vs open-world assumption.
/// Throwaway [`Engine`].
pub fn fig12(scale: u32) -> Vec<RuntimeRow> {
    Engine::new(scale).fig12()
}

/// Static alias-pair counts for the open-world variant (the §4 static
/// comparison around Figure 12). Throwaway [`Engine`].
pub fn open_world_pairs(scale: u32) -> Vec<(String, AliasPairCounts, AliasPairCounts)> {
    Engine::new(scale).open_world_pairs()
}

// ---- rendering -------------------------------------------------------------

/// Renders Table 4 as aligned text.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut s = String::from(
        "Table 4: Description of Benchmark Programs\n\
         Name          Lines  Instructions  %Heap loads  %Other loads  Description\n",
    );
    for r in rows {
        let (i, h, o) = match (r.instructions, r.heap_load_pct, r.other_load_pct) {
            (Some(i), Some(h), Some(o)) => (i.to_string(), format!("{h:.0}"), format!("{o:.0}")),
            _ => ("-".into(), "-".into(), "-".into()),
        };
        s.push_str(&format!(
            "{:<13} {:>5}  {:>12}  {:>11}  {:>12}  {}\n",
            r.name, r.lines, i, h, o, r.about
        ));
    }
    s
}

/// Renders Table 5.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut s = String::from(
        "Table 5: Alias Pairs\n                        \
         TypeDecl          FieldTypeDecl     SMFieldTypeRefs\n\
         Program       Refs   L Alias  G Alias   L Alias  G Alias   L Alias  G Alias\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<13} {:>5}  {:>8} {:>8}  {:>8} {:>8}  {:>8} {:>8}\n",
            r.name,
            r.references,
            r.by_level[0].local_pairs,
            r.by_level[0].global_pairs,
            r.by_level[1].local_pairs,
            r.by_level[1].global_pairs,
            r.by_level[2].local_pairs,
            r.by_level[2].global_pairs,
        ));
    }
    s
}

/// Renders Table 6.
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut s = String::from(
        "Table 6: Number of Redundant Loads Removed Statically\n\
         Program       TypeDecl  FieldTypeDecl  SMFieldTypeRefs\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<13} {:>8}  {:>13}  {:>15}\n",
            r.name, r.removed[0], r.removed[1], r.removed[2]
        ));
    }
    s
}

/// Renders a runtime figure (8, 11, or 12).
pub fn render_runtime(title: &str, rows: &[RuntimeRow]) -> String {
    let mut s = format!("{title}\n");
    if let Some(first) = rows.first() {
        s.push_str(&format!("{:<13} {:>6}", "Program", "Base"));
        for l in &first.labels {
            s.push_str(&format!("  {l:>26}"));
        }
        s.push('\n');
    }
    for r in rows {
        s.push_str(&format!("{:<13} {:>6.0}", r.name, 100.0));
        for p in &r.pct {
            s.push_str(&format!("  {p:>26.1}"));
        }
        s.push('\n');
    }
    s
}

/// Renders Figure 9.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut s = String::from(
        "Figure 9: Comparing TBAA to an Upper Bound\n\
         Program       Redundant originally  Redundant after opt.  Removed%\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<13} {:>20.3}  {:>20.3}  {:>7.0}%\n",
            r.name,
            r.limit.fraction_original(),
            r.limit.fraction_after(),
            r.limit.removed_pct()
        ));
    }
    s
}

/// Renders Figure 10.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let mut s = String::from(
        "Figure 10: Source of Redundant Loads after Optimizations\n\
         (fractions of original heap references)\n\
         Program       Encapsulated  Conditional  Breakup  AliasFail  Rest\n",
    );
    for r in rows {
        let d = r.original_heap_loads.max(1) as f64;
        let b = &r.breakdown;
        s.push_str(&format!(
            "{:<13} {:>12.3}  {:>11.3}  {:>7.3}  {:>9.3}  {:>4.3}\n",
            r.name,
            b.encapsulated as f64 / d,
            b.conditional as f64 / d,
            b.breakup as f64 / d,
            b.alias_failure as f64 / d,
            b.rest as f64 / d,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_is_monotone_per_level() {
        for row in table5(1) {
            assert!(row.by_level[0].global_pairs >= row.by_level[1].global_pairs);
            assert!(row.by_level[1].global_pairs >= row.by_level[2].global_pairs);
        }
    }

    #[test]
    fn table6_is_monotone_per_level() {
        for row in table6(1) {
            assert!(
                row.removed[1] >= row.removed[0],
                "{}: FieldTypeDecl finds at least TypeDecl's loads: {:?}",
                row.name,
                row.removed
            );
            assert!(
                row.removed[2] >= row.removed[1],
                "{}: {:?}",
                row.name,
                row.removed
            );
        }
    }

    #[test]
    fn fig8_improves_or_matches_base() {
        for row in fig8(1) {
            for (p, l) in row.pct.iter().zip(row.labels.iter()) {
                assert!(
                    *p <= 101.0,
                    "{} under {l} should not slow down: {p:.1}%",
                    row.name
                );
            }
        }
    }

    #[test]
    fn fig9_fractions_are_sane() {
        for row in fig9(1) {
            let f0 = row.limit.fraction_original();
            let f1 = row.limit.fraction_after();
            assert!((0.0..=1.0).contains(&f0), "{}: {f0}", row.name);
            assert!(
                f1 <= f0 + 1e-9,
                "{}: optimization reduces redundancy",
                row.name
            );
        }
    }
}
