//! A tiny deterministic pseudo-random generator (xorshift64*), replacing
//! the external `rand` crate so the workspace builds offline.
//!
//! Everything the harness randomizes — synthetic workloads, property-test
//! program generation, work-order shuffling in the engine tests — seeds
//! one of these explicitly, so every run is reproducible by construction.

/// A xorshift64* generator. Not cryptographic; plenty for workloads.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (0 is remapped to a fixed odd
    /// constant — the all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift reduction; bias is negligible for our small n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform value in the half-open range `lo..hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks an element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = XorShift64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_i64_includes_negatives() {
        let mut r = XorShift64::new(9);
        let mut any_neg = false;
        for _ in 0..200 {
            let v = r.range_i64(-9, 100);
            assert!((-9..100).contains(&v));
            any_neg |= v < 0;
        }
        assert!(any_neg);
    }
}
