//! JSON emission for the paper tables: one object per row, one row per
//! line, encoded with the deterministic encoder from `tbaa-server`
//! (order-preserving objects, so output bytes are stable run to run).
//!
//! Every row carries a `"table"` discriminator so a stream mixing
//! several tables stays self-describing:
//!
//! ```text
//! {"table":"table5","name":"ktree","references":16,"levels":{...}}
//! ```

use tbaa_server::json::Value;

use crate::{Fig9Row, Fig10Row, RuntimeRow, Table4Row, Table5Row, Table6Row};
use tbaa::AliasPairCounts;

/// Level labels in the order `Table5Row::by_level` / `Table6Row::removed`
/// store them (the paper's three analyses, coarse to precise).
pub const LEVEL_LABELS: [&str; 3] = ["TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"];

fn row<'a>(table: &'a str, name: &'a str, fields: Vec<(&'a str, Value<'a>)>) -> Value<'a> {
    let mut all = vec![
        ("table", Value::Str(table.into())),
        ("name", Value::Str(name.into())),
    ];
    all.extend(fields);
    Value::object(all)
}

fn opt_u64(v: Option<u64>) -> Value<'static> {
    v.map(|n| Value::Int(n as i64)).unwrap_or(Value::Null)
}

fn opt_f64(v: Option<f64>) -> Value<'static> {
    v.map(Value::Float).unwrap_or(Value::Null)
}

/// Table 4 (benchmark overview) rows.
pub fn table4_json(rows: &[Table4Row]) -> Vec<Value<'static>> {
    rows.iter()
        .map(|r| {
            row(
                "table4",
                r.name,
                vec![
                    ("lines", Value::Int(r.lines as i64)),
                    ("instructions", opt_u64(r.instructions)),
                    ("heap_load_pct", opt_f64(r.heap_load_pct)),
                    ("other_load_pct", opt_f64(r.other_load_pct)),
                    ("about", Value::Str(r.about.into())),
                ],
            )
        })
        .collect()
}

fn pair_counts(c: &AliasPairCounts) -> Value<'static> {
    Value::object(vec![
        ("local_pairs", Value::Int(c.local_pairs as i64)),
        ("global_pairs", Value::Int(c.global_pairs as i64)),
    ])
}

/// Table 5 (static may-alias pairs per analysis level) rows.
pub fn table5_json(rows: &[Table5Row]) -> Vec<Value<'static>> {
    rows.iter()
        .map(|r| {
            let levels = LEVEL_LABELS
                .iter()
                .zip(r.by_level.iter())
                .map(|(label, counts)| ((*label).into(), pair_counts(counts)))
                .collect();
            row(
                "table5",
                r.name,
                vec![
                    ("references", Value::Int(r.references as i64)),
                    ("levels", Value::Object(levels)),
                ],
            )
        })
        .collect()
}

/// Table 6 (redundant loads removed statically) rows.
pub fn table6_json(rows: &[Table6Row]) -> Vec<Value<'static>> {
    rows.iter()
        .map(|r| {
            let removed = LEVEL_LABELS
                .iter()
                .zip(r.removed.iter())
                .map(|(label, n)| ((*label).into(), Value::Int(*n as i64)))
                .collect();
            row("table6", r.name, vec![("removed", Value::Object(removed))])
        })
        .collect()
}

/// Runtime-figure rows (Figures 8, 11, 12): percent of base cycles per
/// configuration, keyed by the figure's bar labels.
pub fn runtime_json<'a>(table: &'a str, rows: &'a [RuntimeRow]) -> Vec<Value<'a>> {
    rows.iter()
        .map(|r| {
            let pct = r
                .labels
                .iter()
                .zip(r.pct.iter())
                .map(|(label, p)| ((*label).into(), Value::Float(*p)))
                .collect();
            row(table, r.name, vec![("pct", Value::Object(pct))])
        })
        .collect()
}

/// Figure 9 (dynamically redundant heap loads, before/after) rows.
pub fn fig9_json(rows: &[Fig9Row]) -> Vec<Value<'static>> {
    rows.iter()
        .map(|r| {
            row(
                "fig9",
                r.name,
                vec![
                    (
                        "original_heap_loads",
                        Value::Int(r.limit.original_heap_loads as i64),
                    ),
                    (
                        "redundant_original",
                        Value::Int(r.limit.redundant_original as i64),
                    ),
                    (
                        "optimized_heap_loads",
                        Value::Int(r.limit.optimized_heap_loads as i64),
                    ),
                    (
                        "redundant_after",
                        Value::Int(r.limit.redundant_after as i64),
                    ),
                ],
            )
        })
        .collect()
}

/// Figure 10 (where the remaining redundancy comes from) rows.
pub fn fig10_json(rows: &[Fig10Row]) -> Vec<Value<'static>> {
    rows.iter()
        .map(|r| {
            row(
                "fig10",
                r.name,
                vec![
                    (
                        "original_heap_loads",
                        Value::Int(r.original_heap_loads as i64),
                    ),
                    ("encapsulated", Value::Int(r.breakdown.encapsulated as i64)),
                    ("conditional", Value::Int(r.breakdown.conditional as i64)),
                    ("breakup", Value::Int(r.breakdown.breakup as i64)),
                    ("alias_failure", Value::Int(r.breakdown.alias_failure as i64)),
                    ("rest", Value::Int(r.breakdown.rest as i64)),
                ],
            )
        })
        .collect()
}

/// The open-vs-closed static comparison printed alongside Figure 12.
pub fn open_world_pairs_json(
    rows: &[(String, AliasPairCounts, AliasPairCounts)],
) -> Vec<Value<'_>> {
    rows.iter()
        .map(|(name, closed, open)| {
            row(
                "fig12_pairs",
                name,
                vec![
                    ("closed_global_pairs", Value::Int(closed.global_pairs as i64)),
                    ("open_global_pairs", Value::Int(open.global_pairs as i64)),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_single_line_and_discriminated() {
        let rows = table6_json(&[Table6Row {
            name: "ktree",
            removed: [1, 2, 3],
        }]);
        assert_eq!(rows.len(), 1);
        let line = rows[0].encode();
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            r#"{"table":"table6","name":"ktree","removed":{"TypeDecl":1,"FieldTypeDecl":2,"SMFieldTypeRefs":3}}"#
        );
    }

    #[test]
    fn missing_measurements_encode_as_null() {
        let rows = table4_json(&[Table4Row {
            name: "slisp",
            lines: 10,
            instructions: None,
            heap_load_pct: None,
            other_load_pct: None,
            about: "interactive",
        }]);
        let line = rows[0].encode();
        assert!(line.contains(r#""instructions":null"#));
    }

    #[test]
    fn runtime_rows_key_pct_by_label() {
        let input = [RuntimeRow {
            name: "pp",
            pct: vec![97.5, 96.0],
            labels: vec!["RLE", "RLE Open"],
        }];
        let rows = runtime_json("fig8", &input);
        let line = rows[0].encode();
        assert!(line.starts_with(r#"{"table":"fig8","name":"pp","#));
        assert!(line.contains(r#""RLE":97.5"#));
    }
}
