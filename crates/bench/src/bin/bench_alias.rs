//! `bench-alias` — alias-query throughput microbenchmark.
//!
//! Measures the compiled query engine against the naive tree-walking
//! analysis on one benchsuite program (default: `m3cg`, the largest),
//! plus the thread scaling of the parallel `count_alias_pairs` driver,
//! and writes one JSON object to `BENCH_alias_query.json`:
//!
//! ```text
//! bench-alias [--bench NAME] [--scale N] [--reps N] [--out PATH] [--smoke]
//! ```
//!
//! The query workload is the full cross product of the program's
//! interned access paths, repeated `--reps` times. Three engines run
//! the identical workload: the naive `Tbaa` walk, the compiled engine's
//! memoized entry point, and its uncached walk. `--smoke` shrinks the
//! repetition counts so CI can gate on "the harness runs and the
//! engines agree" in well under a second.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use tbaa::analysis::{Level, Tbaa};
use tbaa::{
    count_alias_pairs_rows, count_alias_pairs_with_threads, AliasAnalysis, CompiledAliasEngine,
    World,
};
use tbaa_benchsuite::Benchmark;
use tbaa_ir::path::ApId;
use tbaa_server::json::Value;

struct Config {
    bench: String,
    scale: u32,
    reps: u32,
    pair_reps: u32,
    out: String,
    smoke: bool,
    sweep_dense_limit: bool,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        bench: "m3cg".to_string(),
        scale: 1,
        reps: 200,
        pair_reps: 20,
        out: "BENCH_alias_query.json".to_string(),
        smoke: false,
        sweep_dense_limit: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                cfg.bench = args.get(i).cloned().unwrap_or(cfg.bench);
            }
            "--scale" => {
                i += 1;
                cfg.scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(cfg.scale);
            }
            "--reps" => {
                i += 1;
                cfg.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(cfg.reps);
            }
            "--out" => {
                i += 1;
                cfg.out = args.get(i).cloned().unwrap_or(cfg.out);
            }
            "--smoke" => cfg.smoke = true,
            "--sweep-dense-limit" => cfg.sweep_dense_limit = true,
            other => {
                eprintln!("bench-alias: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if cfg.smoke {
        cfg.reps = 2;
        cfg.pair_reps = 1;
    }
    cfg
}

/// Runs `reps` sweeps over the pair workload, returning queries/sec,
/// best of three trials (the standard microbench defense against
/// scheduler noise). The sweep shape (tight loop over a pair slice) is
/// exactly what the bulk clients — `count_alias_pairs` and the
/// optimizer kill scans — issue, so this measures the serving cost they
/// see. `black_box` on the slice keeps the optimizer from proving the
/// rep loop pure and collapsing it.
fn throughput(reps: u32, pairs: &[(ApId, ApId)], mut query: impl FnMut(ApId, ApId) -> bool) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for _ in 0..reps {
            for &(a, b) in black_box(pairs) {
                acc += query(a, b) as u64;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        black_box(acc);
        best = best.max((reps as u64 * pairs.len() as u64) as f64 / secs.max(1e-9));
    }
    best
}

/// Best per-call microseconds over three trials of `reps` calls each.
fn best_us(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps.max(1) {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / reps.max(1) as f64);
    }
    best
}

/// The Table 5 pair census, run twice per benchsuite program: the
/// scalar walk (one engine probe per distinct reference pair) against
/// the word-parallel row-mask kernel. Both run single-threaded so the
/// ratio is pure kernel efficiency — it must show on a 1-CPU host where
/// the thread-scaling curve is flat. Every timed call re-checks exact
/// count equality: the kernel is only a faster route to the same bits,
/// and a divergence invalidates the whole section.
///
/// Returns the `census` report object and the suite-aggregate speedup
/// (total scalar time over total kernel time).
fn census_section(smoke: bool) -> (Value<'static>, f64) {
    let reps = if smoke { 2u32 } else { 100 };
    let mut rows: Vec<Value<'static>> = Vec::new();
    let mut total_scalar = 0.0f64;
    let mut total_word = 0.0f64;
    for b in tbaa_benchsuite::suite() {
        let prog = b.compile(1).expect("benchsuite compiles");
        let tbaa = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
        let engine = CompiledAliasEngine::compile(&prog, tbaa);
        let ref_rows = prog.heap_ref_rows();
        let reference = count_alias_pairs_rows(&prog, &ref_rows, &engine, 1);
        let scalar_us = best_us(reps, || {
            let counts = count_alias_pairs_rows(&prog, black_box(&ref_rows), &engine, 1);
            assert_eq!(counts, reference, "scalar census drifted on {}", b.name);
        });
        let word_us = best_us(reps, || {
            let counts = engine
                .dense_census(black_box(&ref_rows), 1)
                .unwrap_or_else(|| panic!("{} left the dense regime", b.name));
            assert_eq!(counts, reference, "word-parallel census diverged on {}", b.name);
        });
        total_scalar += scalar_us;
        total_word += word_us;
        rows.push(Value::object(vec![
            ("bench", Value::Str(b.name.into())),
            ("references", Value::Int(reference.references as i64)),
            ("local_pairs", Value::Int(reference.local_pairs as i64)),
            ("global_pairs", Value::Int(reference.global_pairs as i64)),
            ("scalar_us", Value::Float(scalar_us)),
            ("word_parallel_us", Value::Float(word_us)),
            ("speedup", Value::Float(scalar_us / word_us.max(1e-9))),
        ]));
    }
    let speedup = total_scalar / total_word.max(1e-9);
    let report = Value::object(vec![
        ("threads", Value::Int(1)),
        ("reps", Value::Int(reps as i64)),
        ("level", Value::Str("SMFieldTypeRefs".into())),
        ("world", Value::Str("closed".into())),
        ("rows", Value::Array(rows)),
        ("total_scalar_us", Value::Float(total_scalar)),
        ("total_word_parallel_us", Value::Float(total_word)),
        ("speedup", Value::Float(speedup)),
    ]);
    (report, speedup)
}

/// A synthetic module with `types * vars * fields` distinct heap access
/// paths. The benchsuite programs finish a whole pair census in ~50us —
/// less than the cost of spawning workers — so thread scaling is
/// measured on a program big enough (~400k pair queries per census) for
/// the split to pay. Field names repeat across types and each type has
/// several variables, so the census sees both genuine may-alias pairs
/// (same field, same type, different roots) and same-field/different-
/// type pairs that make the naive walk do real Table 2 work.
fn synthetic_source(types: usize, vars: usize, fields: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::from("MODULE Big;\nTYPE\n");
    for t in 0..types {
        let mut decl = format!("  T{t} = OBJECT ");
        for f in 0..fields {
            let _ = write!(decl, "f{f}");
            decl.push_str(if f + 1 < fields { ", " } else { ": INTEGER; " });
        }
        decl.push_str("END;\n");
        src.push_str(&decl);
    }
    src.push_str("VAR\n");
    for t in 0..types {
        for v in 0..vars {
            let _ = writeln!(src, "  v{t}x{v}: T{t};");
        }
    }
    src.push_str("BEGIN\n");
    for t in 0..types {
        for v in 0..vars {
            let _ = writeln!(src, "  v{t}x{v} := NEW(T{t});");
        }
    }
    for t in 0..types {
        for v in 0..vars {
            for f in 0..fields {
                let _ = writeln!(src, "  v{t}x{v}.f{f} := {};", (t * vars + v) * fields + f);
            }
        }
    }
    src.push_str("END Big.\n");
    src
}

/// Build-time vs query-time sweep for the dense pair matrix, to put
/// [`DENSE_LIMIT`](tbaa::DENSE_LIMIT) on data instead of folklore.
///
/// For a ladder of synthetic snapshot sizes, both regimes are compiled
/// from the same analysis — `compile_with_dense_limit(.., usize::MAX)`
/// forces the dense matrix, `0` forces the lazy memo — and the sweep
/// records the build cost and the steady-state query rate of each. The
/// published figure of merit is `break_even_queries`: the query volume
/// at which the dense matrix has amortized its extra build time,
/// `(dense_build - lazy_build) / (1/lazy_qps - 1/dense_qps)`. A limit
/// is well placed when snapshots under it break even within the query
/// volume a session actually sees (one `pairs` census alone is `n²`
/// queries) and snapshots over it would spend more on the matrix than
/// queries can recoup.
fn dense_limit_sweep(smoke: bool) -> Value<'static> {
    use tbaa_bench::rng::XorShift64;
    // (types, vars, fields) shapes whose interned-path counts ladder
    // from well under the current limit to ~2x over it.
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(2, 2, 4), (4, 2, 8)]
    } else {
        &[
            (4, 2, 4),
            (4, 4, 8),
            (8, 4, 16),
            (8, 8, 16),
            (16, 8, 16),
            (16, 8, 32),
        ]
    };
    let reps = if smoke { 2 } else { 40 };
    const SAMPLE_CAP: usize = 32_768;
    let mut rows = Vec::new();
    for &(types, vars, fields) in shapes {
        let prog = tbaa_ir::compile_to_ir(&synthetic_source(types, vars, fields))
            .expect("synthetic program compiles");
        let tbaa = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
        let n = prog.aps.len();
        // Deterministic pair sample, capped so the biggest snapshots
        // don't swamp the sweep with workload-size effects.
        let mut rng = XorShift64::new(0xD15E + n as u64);
        let pairs: Vec<(ApId, ApId)> = (0..(n * n).min(SAMPLE_CAP))
            .map(|_| (ApId(rng.index(n) as u32), ApId(rng.index(n) as u32)))
            .collect();

        let dense = CompiledAliasEngine::compile_with_dense_limit(&prog, tbaa.clone(), usize::MAX);
        let lazy = CompiledAliasEngine::compile_with_dense_limit(&prog, tbaa.clone(), 0);
        for &(a, b) in &pairs {
            assert_eq!(
                dense.may_alias(&prog.aps, a, b),
                lazy.may_alias(&prog.aps, a, b),
                "regimes disagree on {a:?} vs {b:?} at {n} paths"
            );
        }
        let dense_qps = throughput(reps, &pairs, |a, b| dense.may_alias(&prog.aps, a, b));
        let lazy_qps = throughput(reps, &pairs, |a, b| lazy.may_alias(&prog.aps, a, b));
        let dense_build = dense.stats().build_us;
        let lazy_build = lazy.stats().build_us;
        let per_query_saving_s = 1.0 / lazy_qps.max(1e-9) - 1.0 / dense_qps.max(1e-9);
        let break_even = if per_query_saving_s > 0.0 {
            (dense_build.saturating_sub(lazy_build) as f64 / 1e6 / per_query_saving_s).round()
                as i64
        } else {
            -1 // lazy queries at least as fast: dense never pays here
        };
        println!(
            "  sweep n={n:>5}: build {dense_build}us dense / {lazy_build}us lazy, \
             qps {dense_qps:.2e} dense / {lazy_qps:.2e} lazy, break-even {break_even} queries"
        );
        rows.push(Value::object(vec![
            ("aps", Value::Int(n as i64)),
            ("synthetic_types", Value::Int(types as i64)),
            ("synthetic_vars", Value::Int(vars as i64)),
            ("synthetic_fields", Value::Int(fields as i64)),
            ("sampled_pairs", Value::Int(pairs.len() as i64)),
            ("dense_build_us", Value::Int(dense_build as i64)),
            ("lazy_build_us", Value::Int(lazy_build as i64)),
            ("dense_qps", Value::Float(dense_qps)),
            ("lazy_memo_qps", Value::Float(lazy_qps)),
            ("break_even_queries", Value::Int(break_even)),
        ]));
    }
    Value::object(vec![
        ("current_dense_limit", Value::Int(tbaa::DENSE_LIMIT as i64)),
        ("sample_pairs_cap", Value::Int(SAMPLE_CAP as i64)),
        ("rows", Value::Array(rows)),
    ])
}

fn main() {
    let cfg = parse_args();
    let Some(bench) = Benchmark::by_name(&cfg.bench) else {
        eprintln!("bench-alias: unknown benchmark `{}`", cfg.bench);
        std::process::exit(2);
    };
    let prog = bench.compile(cfg.scale).expect("benchsuite compiles");
    let ids: Vec<ApId> = (0..prog.aps.len() as u32).map(ApId).collect();

    let naive = Arc::new(Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed));
    let engine = CompiledAliasEngine::compile(&prog, naive.clone());

    // Correctness gate before timing: the workload must be answered
    // identically or the throughput numbers are meaningless.
    for &a in &ids {
        for &b in &ids {
            assert_eq!(
                engine.may_alias(&prog.aps, a, b),
                naive.may_alias(&prog.aps, a, b),
                "engine diverged from naive on {a:?} vs {b:?}"
            );
        }
    }

    let pairs: Vec<(ApId, ApId)> = ids
        .iter()
        .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
        .collect();
    let naive_qps = throughput(cfg.reps, &pairs, |a, b| naive.may_alias(&prog.aps, a, b));
    let compiled_qps = throughput(cfg.reps, &pairs, |a, b| engine.may_alias(&prog.aps, a, b));
    let uncached_qps = throughput(cfg.reps, &pairs, |a, b| {
        engine.may_alias_uncached(&prog.aps, a, b)
    });
    let speedup = compiled_qps / naive_qps.max(1e-9);
    let uncached_speedup = uncached_qps / naive_qps.max(1e-9);

    // Thread scaling of the parallel pair counter. Driven by the naive
    // analysis on a synthetic many-reference program: per-query work is
    // then large enough, and the census long enough (~ms, not ~50us),
    // for the thread split to beat its own spawn cost. On a single-core
    // host the curve is necessarily flat — the report records the host
    // parallelism so readers can interpret it.
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (types, vars, fields) = if cfg.smoke { (4, 2, 8) } else { (15, 3, 20) };
    let big = tbaa_ir::compile_to_ir(&synthetic_source(types, vars, fields))
        .expect("synthetic program compiles");
    let big_naive = Tbaa::build(&big, Level::SmFieldTypeRefs, World::Closed);
    let reference = count_alias_pairs_with_threads(&big, &big_naive, 1);
    let mut scaling: Vec<Value> = Vec::new();
    let mut census_us: Vec<(usize, i64)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut best = i64::MAX;
        for _ in 0..cfg.pair_reps.max(1) {
            let t0 = Instant::now();
            let counts = count_alias_pairs_with_threads(&big, &big_naive, threads);
            assert_eq!(counts, reference, "pair counts must not depend on threads");
            best = best.min(t0.elapsed().as_micros() as i64);
        }
        census_us.push((threads, best));
        scaling.push(Value::object(vec![
            ("threads", Value::Int(threads as i64)),
            ("us", Value::Int(best)),
        ]));
    }

    // Word-parallel census kernel vs the scalar walk over the whole
    // benchsuite, single-threaded.
    let (census, census_speedup) = census_section(cfg.smoke);

    let sweep = cfg.sweep_dense_limit.then(|| {
        println!("bench-alias: dense-limit sweep (build cost vs query rate)");
        dense_limit_sweep(cfg.smoke)
    });

    let stats = engine.stats();
    let mut fields = vec![
        ("host", tbaa_bench::host::host_stamp()),
        ("bench", Value::Str(cfg.bench.as_str().into())),
        ("scale", Value::Int(cfg.scale as i64)),
        ("smoke", Value::Bool(cfg.smoke)),
        ("aps", Value::Int(ids.len() as i64)),
        ("reps", Value::Int(cfg.reps as i64)),
        (
            "queries_per_engine",
            Value::Int(cfg.reps as i64 * (ids.len() * ids.len()) as i64),
        ),
        ("naive_qps", Value::Float(naive_qps)),
        ("compiled_qps", Value::Float(compiled_qps)),
        ("uncached_qps", Value::Float(uncached_qps)),
        ("speedup", Value::Float(speedup)),
        ("uncached_speedup", Value::Float(uncached_speedup)),
        (
            "pairs",
            Value::object(vec![
                ("host_threads", Value::Int(host_threads as i64)),
                ("synthetic_types", Value::Int(types as i64)),
                ("synthetic_vars", Value::Int(vars as i64)),
                ("synthetic_fields", Value::Int(fields as i64)),
                ("references", Value::Int(reference.references as i64)),
                ("local_pairs", Value::Int(reference.local_pairs as i64)),
                ("global_pairs", Value::Int(reference.global_pairs as i64)),
                ("reps", Value::Int(cfg.pair_reps as i64)),
                ("scaling", Value::Array(scaling)),
            ]),
        ),
        ("census", census),
        (
            "engine",
            Value::object(vec![
                ("nodes", Value::Int(stats.nodes as i64)),
                ("dense_pairs", Value::Int(stats.dense_pairs as i64)),
                ("memo_len", Value::Int(stats.memo_len as i64)),
                ("build_us", Value::Int(stats.build_us as i64)),
            ]),
        ),
    ];
    if let Some(sweep) = sweep {
        fields.push(("dense_limit_sweep", sweep));
    }
    let report = Value::object(fields);
    std::fs::write(&cfg.out, format!("{}\n", report.encode())).expect("write report");

    println!(
        "bench-alias: {} (scale {}, {} paths, {} queries/engine)",
        cfg.bench,
        cfg.scale,
        ids.len(),
        cfg.reps as u64 * (ids.len() * ids.len()) as u64
    );
    println!("  naive     {:>12.0} q/s", naive_qps);
    println!("  compiled  {:>12.0} q/s  ({speedup:.1}x)", compiled_qps);
    println!(
        "  uncached  {:>12.0} q/s  ({uncached_speedup:.1}x)",
        uncached_qps
    );
    let census_line: Vec<String> = census_us
        .iter()
        .map(|&(t, us)| format!("{t}t={us}us"))
        .collect();
    println!(
        "  census    {} refs, {} global pairs: {}  ({} host threads)",
        reference.references,
        reference.global_pairs,
        census_line.join(" "),
        host_threads
    );
    println!("  census kernel  {census_speedup:.1}x word-parallel over scalar (benchsuite, 1 thread)");
    println!("  report -> {}", cfg.out);
    let mut failed = false;
    if !cfg.smoke && speedup < 5.0 {
        eprintln!("bench-alias: WARNING compiled speedup {speedup:.1}x is below the 5x target");
        failed = true;
    }
    if !cfg.smoke && census_speedup < 4.0 {
        eprintln!(
            "bench-alias: WARNING census kernel speedup {census_speedup:.1}x is below the 4x target"
        );
        failed = true;
    }
    // The census must get faster with threads wherever the host can
    // actually run them in parallel; a single-core host only has to not
    // fall off a cliff when oversubscribed.
    let serial_us = census_us[0].1;
    let best_parallel = census_us[1..].iter().map(|&(_, us)| us).min().unwrap_or(serial_us);
    if !cfg.smoke && host_threads > 1 && best_parallel >= serial_us {
        eprintln!(
            "bench-alias: WARNING census did not speed up with threads \
             ({serial_us}us serial vs {best_parallel}us best parallel on {host_threads} cores)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
