//! `paper-tables` — prints every table and figure of the TBAA paper,
//! recomputed over the MiniM3 benchmark suite.
//!
//! ```text
//! paper-tables [table4|table5|table6|fig8|fig9|fig10|fig11|fig12|all] [--scale N]
//! ```

use tbaa_bench as tb;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = tb::DEFAULT_SCALE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tb::DEFAULT_SCALE);
            }
            other => which = other.to_string(),
        }
        i += 1;
    }
    let all = which == "all";
    println!("Type-Based Alias Analysis (PLDI 1998) — reproduction tables (scale {scale})\n");
    if all || which == "table4" {
        println!("{}", tb::render_table4(&tb::table4(scale)));
    }
    if all || which == "table5" {
        println!("{}", tb::render_table5(&tb::table5(scale)));
    }
    if all || which == "table6" {
        println!("{}", tb::render_table6(&tb::table6(scale)));
    }
    if all || which == "fig8" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 8: Impact of RLE (percent of original running time)",
                &tb::fig8(scale)
            )
        );
    }
    if all || which == "fig9" {
        println!("{}", tb::render_fig9(&tb::fig9(scale)));
    }
    if all || which == "fig10" {
        println!("{}", tb::render_fig10(&tb::fig10(scale)));
    }
    if all || which == "fig11" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 11: Cumulative Impact of Optimizations (percent of original time)",
                &tb::fig11(scale)
            )
        );
    }
    if all || which == "fig12" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 12: Open and Closed World Assumptions (percent of original time)",
                &tb::fig12(scale)
            )
        );
        println!("Static open-world comparison (SMFieldTypeRefs):");
        println!(
            "{:<13} {:>16} {:>16}",
            "Program", "Closed G-pairs", "Open G-pairs"
        );
        for (name, closed, open) in tb::open_world_pairs(scale) {
            println!(
                "{:<13} {:>16} {:>16}",
                name, closed.global_pairs, open.global_pairs
            );
        }
    }
}
