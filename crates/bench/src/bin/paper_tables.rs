//! `paper-tables` — prints every table and figure of the TBAA paper,
//! recomputed over the MiniM3 benchmark suite.
//!
//! ```text
//! paper-tables [table4|table5|table6|fig8|fig9|fig10|fig11|fig12|all]
//!              [--scale N] [--threads N] [--stats] [--json]
//! ```
//!
//! One shared [`tbaa_bench::Engine`] backs every table: each benchmark
//! is compiled once, analyses and optimized variants are memoized, and
//! rows are computed on a worker pool. `--threads 1` forces the serial
//! reference order; the printed bytes are identical either way.
//!
//! `--json` replaces the human tables with one JSON object per row
//! (newline-delimited, `"table"`-discriminated — see
//! `tbaa_bench::jsonout`), ready for `jq` or a plotting script.

use tbaa_bench as tb;
use tbaa_bench::jsonout;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = tb::DEFAULT_SCALE;
    let mut threads = None;
    let mut stats = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tb::DEFAULT_SCALE);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok());
            }
            "--stats" => stats = true,
            "--json" => json = true,
            other => which = other.to_string(),
        }
        i += 1;
    }
    let engine = match threads {
        Some(n) => tb::Engine::with_threads(scale, n),
        None => tb::Engine::new(scale),
    };
    let all = which == "all";
    if json {
        emit_json(&engine, &which, all);
        if stats {
            print_stats(&engine);
        }
        return;
    }
    println!("Type-Based Alias Analysis (PLDI 1998) — reproduction tables (scale {scale})\n");
    if all || which == "table4" {
        println!("{}", tb::render_table4(&engine.table4()));
    }
    if all || which == "table5" {
        println!("{}", tb::render_table5(&engine.table5()));
    }
    if all || which == "table6" {
        println!("{}", tb::render_table6(&engine.table6()));
    }
    if all || which == "fig8" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 8: Impact of RLE (percent of original running time)",
                &engine.fig8()
            )
        );
    }
    if all || which == "fig9" {
        println!("{}", tb::render_fig9(&engine.fig9()));
    }
    if all || which == "fig10" {
        println!("{}", tb::render_fig10(&engine.fig10()));
    }
    if all || which == "fig11" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 11: Cumulative Impact of Optimizations (percent of original time)",
                &engine.fig11()
            )
        );
    }
    if all || which == "fig12" {
        println!(
            "{}",
            tb::render_runtime(
                "Figure 12: Open and Closed World Assumptions (percent of original time)",
                &engine.fig12()
            )
        );
        println!("Static open-world comparison (SMFieldTypeRefs):");
        println!(
            "{:<13} {:>16} {:>16}",
            "Program", "Closed G-pairs", "Open G-pairs"
        );
        for (name, closed, open) in engine.open_world_pairs() {
            println!(
                "{:<13} {:>16} {:>16}",
                name, closed.global_pairs, open.global_pairs
            );
        }
    }
    if stats {
        print_stats(&engine);
    }
}

fn print_stats(engine: &tb::Engine) {
    let s = engine.stats();
    eprintln!(
        "engine: {} compiles, {} analyses, {} optimized variants, {} executions ({} threads)",
        s.compiles,
        s.analyses_built,
        s.variants_built,
        s.executions,
        engine.threads()
    );
}

/// Emits the selected tables as newline-delimited JSON rows. Each
/// section is encoded while its source rows are still alive — the JSON
/// values borrow the row data rather than cloning it.
fn emit_json(engine: &tb::Engine, which: &str, all: bool) {
    fn emit(rows: Vec<tbaa_server::json::Value<'_>>) {
        for row in rows {
            println!("{}", row.encode());
        }
    }
    if all || which == "table4" {
        emit(jsonout::table4_json(&engine.table4()));
    }
    if all || which == "table5" {
        emit(jsonout::table5_json(&engine.table5()));
    }
    if all || which == "table6" {
        emit(jsonout::table6_json(&engine.table6()));
    }
    if all || which == "fig8" {
        emit(jsonout::runtime_json("fig8", &engine.fig8()));
    }
    if all || which == "fig9" {
        emit(jsonout::fig9_json(&engine.fig9()));
    }
    if all || which == "fig10" {
        emit(jsonout::fig10_json(&engine.fig10()));
    }
    if all || which == "fig11" {
        emit(jsonout::runtime_json("fig11", &engine.fig11()));
    }
    if all || which == "fig12" {
        emit(jsonout::runtime_json("fig12", &engine.fig12()));
        emit(jsonout::open_world_pairs_json(&engine.open_world_pairs()));
    }
}
