//! `tbaa-loadgen` — load, chaos, and differential-correctness harness
//! for the `tbaad` daemon.
//!
//! Spawns a `tbaad` (or connects to one), drives it with N concurrent
//! client threads issuing mixed `load`/`alias`/`pairs`/`rle`/`stats`
//! traffic over several sessions, and records per-verb latency into
//! log-bucketed histograms. Every reply (or a 1-in-`--sample` sample)
//! is checked byte-for-byte against the in-process `Pipeline` oracle
//! from `tbaa_bench::load`, so the run is a correctness soak as much as
//! a stopwatch. A `stats` poller correlates client-observed latency
//! with the daemon's own worker/LRU/engine metrics, and everything
//! lands in a `BENCH_server_load.json` artifact.
//!
//! ```text
//! tbaa-loadgen [--clients N] [--duration SECS] [--mode closed|open]
//!              [--rate R] [--chaos] [--chaos-clients N] [--sample N]
//!              [--seed S] [--benches a,b,c] [--scale N] [--mutate N]
//!              [--server-workers N] [--server-capacity N]
//!              [--daemon PATH | --connect HOST:PORT | --router N] [--tcp]
//!              [--kill-backend] [--crash-restart N] [--journal-dir DIR]
//!              [--out PATH] [--smoke]
//! ```
//!
//! * `--mode closed` (default): each client sends one request, waits
//!   for the reply, repeats — measures service latency under exactly
//!   `--clients` in flight.
//! * `--mode open`: each client fires at a fixed `--rate` requests/sec
//!   regardless of replies (pipelined on its connection), so queueing
//!   delay shows up in the latency when the daemon saturates.
//! * `--router N`: drive an in-process `tbaa-router` front tier over
//!   `N` in-process `tbaad` shards instead of a single daemon — the
//!   same differential gates apply end to end through the proxy, and
//!   the artifact gains a `router` section (per-shard latency,
//!   retries, respawns, imbalance).
//! * `--kill-backend`: with `--router`, murder one backend shard
//!   halfway through the run; the gates then also demand ≥ 1 respawn
//!   and still zero divergences.
//! * `--crash-restart N`: spawn `tbaad` with a durable session journal
//!   (`--journal-dir`, defaulting to a fresh temp dir) and hard-kill it
//!   (SIGKILL, no drain) `N` times mid-run. After each kill the daemon
//!   is restarted over the same journal; the harness then demands that
//!   recovery actually ran (`journal.replayed` ≥ 1), probes every
//!   session learned before the crash — a recovered `load` must answer
//!   `cached:true` under one of its pre-crash session ids — and keeps
//!   the byte-for-byte differential oracle on for the traffic in every
//!   phase. The artifact gains a `crash_restart` section.
//! * `--mutate N`: replace the benchsuite contents with `N` superseding
//!   versions of one program — mostly single-function edits, with
//!   occasional whole-program rewrites — so every client keeps issuing
//!   `load`s of near-identical sources and the daemon's incremental
//!   compilation cache (`incr.*` counters) does the work. The artifact
//!   gains an `incremental` section and the gates additionally demand a
//!   nonzero function-reuse count, still under the same byte-for-byte
//!   differential oracle.
//! * `--chaos`: adds misbehaving clients (malformed JSON, nesting
//!   bombs, half-written requests, mid-request disconnects, slow
//!   readers) alongside the well-behaved ones; the gates still demand
//!   zero differential mismatches and zero daemon panics/deaths.
//!
//! Exit status is 0 only if every gate passes: no byte mismatches, no
//! server-side panics, no unexpected chaos outcomes, and (when the
//! daemon was spawned here) a clean exit after `shutdown`.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tbaa_bench::load::{
    CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Tick, VerbLatencies, Wire,
    WorkloadGen,
};
use tbaa_bench::rng::XorShift64;
use tbaa_router::{BackendSpec, Router, RouterConfig, RouterHandle, RouterState};
use tbaa_server::json::{parse, Value};
use tbaa_server::ServerConfig;

// ---- configuration ---------------------------------------------------------

#[derive(Clone)]
struct Config {
    clients: usize,
    duration: Duration,
    open_loop: bool,
    rate: f64,
    chaos: bool,
    chaos_clients: usize,
    sample: u64,
    seed: u64,
    benches: Vec<String>,
    scale: u32,
    mutate: Option<usize>,
    server_workers: usize,
    server_capacity: usize,
    daemon: Option<String>,
    connect: Option<String>,
    router: Option<usize>,
    kill_backend: bool,
    crash_restart: Option<usize>,
    journal_dir: Option<String>,
    force_tcp: bool,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tbaa-loadgen [--clients N] [--duration SECS] [--mode closed|open] [--rate R]\n\
         \u{20}                   [--chaos] [--chaos-clients N] [--sample N] [--seed S]\n\
         \u{20}                   [--benches a,b,c] [--scale N] [--mutate N] [--server-workers N]\n\
         \u{20}                   [--server-capacity N] [--daemon PATH | --connect HOST:PORT |\n\
         \u{20}                   --router N] [--kill-backend] [--crash-restart N]\n\
         \u{20}                   [--journal-dir DIR] [--tcp] [--out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        clients: 8,
        duration: Duration::from_secs(10),
        open_loop: false,
        rate: 200.0,
        chaos: false,
        chaos_clients: 2,
        sample: 1,
        seed: 42,
        benches: vec!["ktree".into(), "slisp".into()],
        scale: 2,
        mutate: None,
        server_workers: 16,
        server_capacity: 32,
        daemon: None,
        connect: None,
        router: None,
        kill_backend: false,
        crash_restart: None,
        journal_dir: None,
        force_tcp: false,
        out: "BENCH_server_load.json".into(),
        smoke: false,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--clients" => cfg.clients = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                cfg.duration =
                    Duration::from_secs_f64(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--mode" => match take(&mut i).as_str() {
                "closed" => cfg.open_loop = false,
                "open" => cfg.open_loop = true,
                _ => usage(),
            },
            "--rate" => cfg.rate = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--chaos" => cfg.chaos = true,
            "--chaos-clients" => {
                cfg.chaos_clients = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--sample" => {
                cfg.sample = take(&mut i).parse::<u64>().unwrap_or_else(|_| usage()).max(1)
            }
            "--seed" => cfg.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--benches" => {
                cfg.benches = take(&mut i).split(',').map(|s| s.trim().to_string()).collect()
            }
            "--scale" => cfg.scale = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mutate" => {
                cfg.mutate =
                    Some(take(&mut i).parse::<usize>().unwrap_or_else(|_| usage()).max(2))
            }
            "--server-workers" => {
                cfg.server_workers = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--server-capacity" => {
                cfg.server_capacity = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--daemon" => cfg.daemon = Some(take(&mut i)),
            "--connect" => cfg.connect = Some(take(&mut i)),
            "--router" => {
                cfg.router = Some(take(&mut i).parse::<usize>().unwrap_or_else(|_| usage()).max(1))
            }
            "--kill-backend" => cfg.kill_backend = true,
            "--crash-restart" => {
                cfg.crash_restart =
                    Some(take(&mut i).parse::<usize>().unwrap_or_else(|_| usage()).max(1))
            }
            "--journal-dir" => cfg.journal_dir = Some(take(&mut i)),
            "--tcp" => cfg.force_tcp = true,
            "--out" => cfg.out = take(&mut i),
            "--smoke" => cfg.smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tbaa-loadgen: unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if cfg.smoke {
        // Small enough for CI, still concurrent enough to mean something.
        cfg.clients = cfg.clients.min(4);
        cfg.duration = Duration::from_secs(2);
        cfg.chaos = true;
        cfg.scale = 1;
    }
    if cfg.kill_backend && cfg.router.is_none() {
        eprintln!("tbaa-loadgen: --kill-backend requires --router N");
        usage();
    }
    if cfg.crash_restart.is_some() {
        if cfg.connect.is_some() || cfg.router.is_some() {
            eprintln!("tbaa-loadgen: --crash-restart drives a spawned daemon; it cannot be combined with --connect or --router");
            usage();
        }
        // A SIGKILLed daemon leaves its Unix socket file behind and the
        // restart would fail to bind it; crash mode always talks TCP.
        cfg.force_tcp = true;
    }
    cfg
}

// ---- daemon management -----------------------------------------------------

/// Where the clients connect.
#[derive(Clone)]
enum Endpoint {
    Tcp(String),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    fn connect(&self) -> std::io::Result<Wire> {
        match self {
            Endpoint::Tcp(addr) => Wire::connect_tcp(addr.as_str()),
            #[cfg(unix)]
            Endpoint::Unix(path) => Wire::connect_unix(path),
        }
    }

    fn describe(&self) -> String {
        match self {
            Endpoint::Tcp(addr) => format!("tcp {addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => format!("unix {}", path.display()),
        }
    }
}

/// A spawned daemon, an in-process router front tier, or a connection
/// to an external daemon.
struct Daemon {
    child: Option<Child>,
    router: Option<RouterHandle>,
    endpoint: Endpoint,
    #[cfg(unix)]
    sock_path: Option<std::path::PathBuf>,
}

impl Daemon {
    /// Spawns `tbaad` on an ephemeral port (plus a Unix socket on unix,
    /// which becomes the preferred endpoint unless `--tcp`), scraping
    /// the printed address.
    fn spawn(cfg: &Config) -> Result<Daemon, String> {
        let bin = match &cfg.daemon {
            Some(p) => std::path::PathBuf::from(p),
            None => {
                // Sibling of this binary in the same target directory.
                let me = std::env::current_exe().map_err(|e| e.to_string())?;
                me.with_file_name(if cfg!(windows) { "tbaad.exe" } else { "tbaad" })
            }
        };
        if !bin.exists() {
            return Err(format!(
                "daemon binary not found at {} (build it, or pass --daemon PATH)",
                bin.display()
            ));
        }
        let mut cmd = Command::new(&bin);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(cfg.server_workers.to_string())
            .arg("--capacity")
            .arg(cfg.server_capacity.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(dir) = &cfg.journal_dir {
            cmd.arg("--journal-dir").arg(dir);
        }
        #[cfg(unix)]
        let sock_path = if cfg.force_tcp {
            None
        } else {
            let p = std::env::temp_dir().join(format!("tbaa-loadgen-{}.sock", std::process::id()));
            cmd.arg("--socket").arg(&p);
            Some(p)
        };
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        // Scrape "tbaad listening on ADDR" from the first stdout line.
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read daemon banner: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("tbaad listening on ")
            .ok_or_else(|| format!("unexpected daemon banner: {line:?}"))?
            .to_string();
        #[cfg(unix)]
        let endpoint = match &sock_path {
            Some(p) => Endpoint::Unix(p.clone()),
            None => Endpoint::Tcp(addr),
        };
        #[cfg(not(unix))]
        let endpoint = Endpoint::Tcp(addr);
        Ok(Daemon {
            child: Some(child),
            router: None,
            endpoint,
            #[cfg(unix)]
            sock_path,
        })
    }

    fn external(addr: &str) -> Daemon {
        Daemon {
            child: None,
            router: None,
            endpoint: Endpoint::Tcp(addr.to_string()),
            #[cfg(unix)]
            sock_path: None,
        }
    }

    /// An in-process `tbaa-router` over `shards` in-process `tbaad`
    /// backends — the `--router N` deployment.
    fn router(cfg: &Config, shards: usize) -> Result<Daemon, String> {
        let config = RouterConfig::builder()
            .addr("127.0.0.1:0")
            .shards(shards)
            .workers(cfg.server_workers)
            .io_timeout(Duration::from_secs(30))
            .backend(BackendSpec::InProcess {
                config: ServerConfig::builder()
                    .workers(cfg.server_workers)
                    .session_capacity(cfg.server_capacity)
                    .build(),
            })
            .build();
        let handle = Router::bind(config)
            .map_err(|e| format!("bind router: {e}"))?
            .spawn();
        let endpoint = Endpoint::Tcp(handle.addr().to_string());
        Ok(Daemon {
            child: None,
            router: Some(handle),
            endpoint,
            #[cfg(unix)]
            sock_path: None,
        })
    }

    /// The router's shared state, when running in `--router` mode.
    fn router_state(&self) -> Option<Arc<RouterState>> {
        self.router.as_ref().map(|h| h.state().clone())
    }

    /// True while the spawned daemon process is still alive (external
    /// daemons always read as alive).
    fn alive(&mut self) -> bool {
        if let Some(r) = &self.router {
            return !r.is_finished();
        }
        match &mut self.child {
            None => true,
            Some(c) => matches!(c.try_wait(), Ok(None)),
        }
    }

    /// Hard-kills a spawned daemon (SIGKILL on unix): no drain, no
    /// shutdown handshake, no final journal sync — exactly the failure
    /// the durable journal exists to survive.
    fn hard_kill(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.child = None;
    }

    /// Sends `shutdown` and, for a spawned daemon, waits for a clean
    /// exit. Returns an error string on dirty exits.
    fn shutdown(&mut self) -> Result<(), String> {
        if let Ok(mut wire) = self.endpoint.connect() {
            let _ = wire.write_line(r#"{"op":"shutdown"}"#);
            let mut src = LineSource::new(wire);
            let _ = src.read_line_blocking();
        }
        if let Some(handle) = self.router.take() {
            return handle
                .join()
                .map_err(|e| format!("router exited dirty: {e}"));
        }
        let Some(child) = &mut self.child else {
            return Ok(());
        };
        // Bounded wait: a daemon that ignores shutdown is itself a failure.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    #[cfg(unix)]
                    if let Some(p) = &self.sock_path {
                        let _ = std::fs::remove_file(p);
                    }
                    return if status.success() {
                        Ok(())
                    } else {
                        Err(format!("daemon exited dirty: {status}"))
                    };
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Ok(None) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err("daemon did not exit within 10s of shutdown; killed".into());
                }
                Err(e) => return Err(format!("wait on daemon: {e}")),
            }
        }
    }
}

// ---- well-behaved clients --------------------------------------------------

#[derive(Default)]
struct ClientResult {
    latency: VerbLatencies,
    sent: u64,
    replies: u64,
    io_errors: u64,
}

/// Closed loop: send, wait for the reply, repeat.
fn run_closed(
    endpoint: &Endpoint,
    checker: &Arc<DiffChecker>,
    contents: &Arc<Vec<Content>>,
    seed: u64,
    sample: u64,
    deadline: Instant,
) -> ClientResult {
    let mut out = ClientResult::default();
    let Ok(wire) = endpoint.connect() else {
        out.io_errors += 1;
        return out;
    };
    let Ok(mut writer) = wire.try_clone() else {
        out.io_errors += 1;
        return out;
    };
    let mut src = LineSource::new(wire);
    let mut gen = WorkloadGen::new(seed, contents.clone());
    let mut n = 0u64;
    while Instant::now() < deadline {
        let req = gen.next(checker.oracle());
        let t0 = Instant::now();
        if writer.write_line(&req.line).is_err() {
            out.io_errors += 1;
            break;
        }
        out.sent += 1;
        let raw = match src.read_line_blocking() {
            Ok(l) => l,
            Err(_) => {
                out.io_errors += 1;
                break;
            }
        };
        out.replies += 1;
        out.latency.observe(req.kind.verb(), t0.elapsed());
        n += 1;
        // Loads are always checked (the generator needs the session id);
        // query replies honor the sampling knob.
        let is_load = matches!(req.kind, ReqKind::Load { .. });
        if is_load || n.is_multiple_of(sample) {
            if let CheckOutcome::Loaded { sid } = checker.check(&req.kind, &raw) {
                if let ReqKind::Load { key } = &req.kind {
                    gen.observe_load(key, &sid);
                }
            }
        }
    }
    out
}

/// Open loop: fire at a fixed rate, read replies asynchronously off the
/// same connection (the daemon serves one connection sequentially, so
/// replies come back in request order and queueing shows up as latency).
fn run_open(
    endpoint: &Endpoint,
    checker: &Arc<DiffChecker>,
    contents: &Arc<Vec<Content>>,
    seed: u64,
    sample: u64,
    rate: f64,
    deadline: Instant,
) -> ClientResult {
    let mut out = ClientResult::default();
    let Ok(wire) = endpoint.connect() else {
        out.io_errors += 1;
        return out;
    };
    let _ = wire.set_read_timeout(Some(Duration::from_millis(2)));
    let Ok(mut writer) = wire.try_clone() else {
        out.io_errors += 1;
        return out;
    };
    let mut src = LineSource::new(wire);
    let mut gen = WorkloadGen::new(seed, contents.clone());
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let mut next_send = Instant::now();
    let mut inflight: VecDeque<(ReqKind, Instant)> = VecDeque::new();
    let mut n = 0u64;
    // After the send window closes, allow a grace period to drain.
    let drain_deadline = deadline + Duration::from_secs(10);
    loop {
        let now = Instant::now();
        if now >= deadline && inflight.is_empty() {
            break;
        }
        if now >= drain_deadline {
            out.io_errors += inflight.len() as u64; // unanswered requests
            break;
        }
        if now < deadline && now >= next_send {
            let req = gen.next(checker.oracle());
            if writer.write_line(&req.line).is_err() {
                out.io_errors += 1;
                break;
            }
            out.sent += 1;
            inflight.push_back((req.kind, Instant::now()));
            next_send += interval;
            continue; // catch up on a burst before blocking in read
        }
        match src.tick() {
            Ok(Tick::Line(raw)) => {
                let Some((kind, t0)) = inflight.pop_front() else {
                    out.io_errors += 1; // reply with no outstanding request
                    break;
                };
                out.replies += 1;
                out.latency.observe(kind.verb(), t0.elapsed());
                n += 1;
                let is_load = matches!(kind, ReqKind::Load { .. });
                if is_load || n.is_multiple_of(sample) {
                    if let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) {
                        if let ReqKind::Load { key } = &kind {
                            gen.observe_load(key, &sid);
                        }
                    }
                }
            }
            Ok(Tick::Idle(_)) => {}
            Ok(Tick::Eof) | Err(_) => {
                if !inflight.is_empty() || Instant::now() < deadline {
                    out.io_errors += 1;
                }
                break;
            }
        }
    }
    out
}

// ---- crash-restart mode ----------------------------------------------------

#[derive(Default)]
struct CrashClientResult {
    sent: u64,
    replies: u64,
    /// Requests severed by a kill: the write failed, or the connection
    /// died before the reply arrived. Expected during a crash phase —
    /// counted, reported, never gated.
    truncations: u64,
}

/// Closed-loop client that expects to be cut off. A severed connection
/// counts as a truncation rather than a divergence, and the client keeps
/// trying to reconnect until the phase deadline so that traffic resumes
/// the moment a restarted daemon starts listening again. Every reply
/// that does arrive still goes through the byte-for-byte oracle.
fn run_crash_phase(
    endpoint: &Endpoint,
    checker: &Arc<DiffChecker>,
    contents: &Arc<Vec<Content>>,
    seed: u64,
    deadline: Instant,
) -> CrashClientResult {
    let mut out = CrashClientResult::default();
    let mut gen = WorkloadGen::new(seed, contents.clone());
    while Instant::now() < deadline {
        let Ok(wire) = endpoint.connect() else {
            // Daemon down (or not yet back up): retry until the deadline.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let Ok(mut writer) = wire.try_clone() else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let mut src = LineSource::new(wire);
        while Instant::now() < deadline {
            let req = gen.next(checker.oracle());
            if writer.write_line(&req.line).is_err() {
                out.truncations += 1;
                break;
            }
            out.sent += 1;
            let raw = match src.read_line_blocking() {
                Ok(l) => l,
                Err(_) => {
                    out.truncations += 1;
                    break;
                }
            };
            out.replies += 1;
            if let CheckOutcome::Loaded { sid } = checker.check(&req.kind, &raw) {
                if let ReqKind::Load { key } = &req.kind {
                    gen.observe_load(key, &sid);
                }
            }
        }
    }
    out
}

#[derive(Default)]
struct ProbeResult {
    /// Sessions learned before the crash that were probed after it.
    probed: u64,
    /// Probes answered `cached:true` under a pre-crash session id.
    matched: u64,
    /// Probes the daemon recompiled fresh (legal when the session had
    /// been evicted before the crash, or sat past a torn journal tail).
    recompiled: u64,
    failures: Vec<String>,
}

/// Re-`load`s every content whose session id was learned before the
/// kill. A recovered daemon must answer `cached:true` — the journal
/// replay already readmitted the session — under one of the session ids
/// the content held before the crash; a fresh id for a cached session
/// means recovery re-minted ids and stale clients would be misrouted.
fn probe_recovery(
    endpoint: &Endpoint,
    checker: &Arc<DiffChecker>,
    contents: &Arc<Vec<Content>>,
    phase: usize,
) -> ProbeResult {
    let mut out = ProbeResult::default();
    let mut by_key: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    for (sid, key) in checker.known_sids() {
        by_key.entry(key.display()).or_default().push(sid);
    }
    let Ok(wire) = endpoint.connect() else {
        out.failures
            .push(format!("phase {phase}: cannot connect for recovery probes"));
        return out;
    };
    let Ok(mut writer) = wire.try_clone() else {
        out.failures
            .push(format!("phase {phase}: cannot clone probe connection"));
        return out;
    };
    let mut src = LineSource::new(wire);
    for content in contents.iter() {
        let key = content.key();
        let Some(known) = by_key.get(&key.display()) else {
            continue; // never successfully loaded before the crash
        };
        out.probed += 1;
        let line = content.load_line();
        if writer.write_line(&line).is_err() {
            out.failures
                .push(format!("phase {phase}: probe of {} severed", key.display()));
            return out;
        }
        let raw = match src.read_line_blocking() {
            Ok(l) => l,
            Err(e) => {
                out.failures.push(format!(
                    "phase {phase}: probe of {} got no reply ({e})",
                    key.display()
                ));
                return out;
            }
        };
        // The usual differential check first (facts, key, crossed sids).
        let outcome = checker.check(&ReqKind::Load { key: key.clone() }, &raw);
        let CheckOutcome::Loaded { sid } = outcome else {
            if matches!(outcome, CheckOutcome::Mismatch) {
                out.failures.push(format!(
                    "phase {phase}: probe of {} diverged from the oracle",
                    key.display()
                ));
            }
            continue;
        };
        let cached = parse(&raw)
            .ok()
            .and_then(|v| v.get("cached").and_then(Value::as_bool))
            .unwrap_or(false);
        if !cached {
            out.recompiled += 1;
            continue;
        }
        if known.contains(&sid) {
            out.matched += 1;
        } else {
            out.failures.push(format!(
                "phase {phase}: recovered session for {} answered under {sid}, \
                 not one of its pre-crash ids {known:?}",
                key.display()
            ));
        }
    }
    out
}

/// The `--crash-restart N` driver: N+1 traffic phases against a spawned
/// `tbaad` with a durable journal, hard-killing the daemon between
/// phases and gating each restart on real recovery.
fn run_crash_restart(
    cfg: &Config,
    contents: &Arc<Vec<Content>>,
    checker: &Arc<DiffChecker>,
) -> ExitCode {
    let restarts = cfg.crash_restart.unwrap_or(1);
    let mut cfg = cfg.clone();
    let journal_dir = cfg.journal_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("tbaa-loadgen-journal-{}", std::process::id()))
            .display()
            .to_string()
    });
    cfg.journal_dir = Some(journal_dir.clone());
    let phases = restarts + 1;
    let phase_len = (cfg.duration / phases as u32).max(Duration::from_secs(1));
    eprintln!(
        "tbaa-loadgen: crash-restart mode, {restarts} kill(s), {phases} phases of {phase_len:?}, journal at {journal_dir}"
    );

    let started = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    let mut totals = CrashClientResult::default();
    let mut probes = ProbeResult::default();
    let mut replayed_by_restart: Vec<i64> = Vec::new();
    let mut final_stats: Option<Value<'static>> = None;

    for phase in 0..phases {
        let mut daemon = match Daemon::spawn(&cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("tbaa-loadgen: phase {phase}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let endpoint = daemon.endpoint.clone();
        if phase > 0 {
            // The restart must have actually recovered from the journal,
            // and every surviving session must answer under its old id.
            let replayed = poll_stats_once(&endpoint)
                .map_or(0, |s| counter_of(&s, "journal.replayed"));
            replayed_by_restart.push(replayed);
            if replayed == 0 {
                failures.push(format!(
                    "phase {phase}: restarted daemon replayed nothing from the journal"
                ));
            }
            let p = probe_recovery(&endpoint, checker, contents, phase);
            if p.matched == 0 && p.probed > 0 {
                failures.push(format!(
                    "phase {phase}: no probe came back cached under a pre-crash session id"
                ));
            }
            probes.probed += p.probed;
            probes.matched += p.matched;
            probes.recompiled += p.recompiled;
            probes.failures.extend(p.failures);
        }

        let deadline = Instant::now() + phase_len;
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let endpoint = endpoint.clone();
            let checker = checker.clone();
            let contents = contents.clone();
            let seed = cfg.seed.wrapping_add((phase as u64) << 16).wrapping_add(1 + c as u64);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("loadgen-crash-{phase}-{c}"))
                    .spawn(move || run_crash_phase(&endpoint, &checker, &contents, seed, deadline))
                    .expect("spawn crash client"),
            );
        }
        if phase < phases - 1 {
            // Mid-phase, murder the daemon: SIGKILL, no drain, no final
            // fsync. The journal must carry every acknowledged load over.
            std::thread::sleep(phase_len / 2);
            eprintln!("tbaa-loadgen: phase {phase}: hard-killing the daemon");
            daemon.hard_kill();
        }
        for h in handles {
            let r = h.join().expect("crash client panicked");
            totals.sent += r.sent;
            totals.replies += r.replies;
            totals.truncations += r.truncations;
        }
        if phase == phases - 1 {
            final_stats = poll_stats_once(&endpoint);
            if let Err(e) = daemon.shutdown() {
                failures.push(e);
            }
        }
    }
    let wall = started.elapsed();

    // ---- gates ----
    let mismatches = checker.mismatches();
    if mismatches > 0 {
        failures.push(format!("{mismatches} differential mismatch(es)"));
        for d in checker.details() {
            eprintln!("tbaa-loadgen: MISMATCH: {d}");
        }
    }
    for f in &probes.failures {
        eprintln!("tbaa-loadgen: PROBE: {f}");
    }
    if !probes.failures.is_empty() {
        failures.push(format!(
            "{} recovery probe failure(s)",
            probes.failures.len()
        ));
    }
    let server_panics = final_stats
        .as_ref()
        .map_or(-1, |s| counter_of(s, "requests.panics"));
    if server_panics != 0 {
        failures.push(format!("server reported {server_panics} request panics"));
    }
    let incr_hits = final_stats
        .as_ref()
        .map_or(0, |s| counter_of(s, "incr.func_hits"));
    if cfg.mutate.is_some() && incr_hits == 0 {
        failures.push(
            "mutate mode restarted but recovery reused nothing (incr.func_hits == 0)".into(),
        );
    }

    // ---- artifact ----
    let atom = |n: u64| Value::Int(n as i64);
    let report = Value::object(vec![
        ("harness", Value::Str("tbaa-loadgen".into())),
        ("host", tbaa_bench::host::host_stamp()),
        (
            "config",
            Value::object(vec![
                ("clients", Value::Int(cfg.clients as i64)),
                ("duration_s", Value::Float(cfg.duration.as_secs_f64())),
                ("mode", Value::Str("crash-restart".into())),
                ("seed", Value::Int(cfg.seed as i64)),
                (
                    "benches",
                    Value::Array(
                        cfg.benches.iter().map(|b| Value::Str(b.as_str().into())).collect(),
                    ),
                ),
                ("scale", Value::Int(cfg.scale as i64)),
                (
                    "mutate",
                    cfg.mutate.map_or(Value::Null, |n| Value::Int(n as i64)),
                ),
                ("server_workers", Value::Int(cfg.server_workers as i64)),
                ("server_capacity", Value::Int(cfg.server_capacity as i64)),
            ]),
        ),
        (
            "totals",
            Value::object(vec![
                ("requests_sent", atom(totals.sent)),
                ("replies", atom(totals.replies)),
                ("wall_s", Value::Float(wall.as_secs_f64())),
            ]),
        ),
        (
            "differential",
            Value::object(vec![
                ("checked", atom(checker.checked())),
                ("mismatches", atom(mismatches)),
            ]),
        ),
        (
            "crash_restart",
            Value::object(vec![
                ("restarts", Value::Int(restarts as i64)),
                ("phases", Value::Int(phases as i64)),
                ("phase_s", Value::Float(phase_len.as_secs_f64())),
                ("journal_dir", Value::Str(journal_dir.as_str().into())),
                (
                    "replayed_by_restart",
                    Value::Array(replayed_by_restart.iter().map(|n| Value::Int(*n)).collect()),
                ),
                (
                    "probes",
                    Value::object(vec![
                        ("probed", atom(probes.probed)),
                        ("matched", atom(probes.matched)),
                        ("recompiled", atom(probes.recompiled)),
                        ("failures", Value::Int(probes.failures.len() as i64)),
                    ]),
                ),
                ("truncations", atom(totals.truncations)),
                ("incr_func_hits", Value::Int(incr_hits)),
            ]),
        ),
        (
            "server",
            Value::object(vec![(
                "final_stats",
                final_stats.clone().unwrap_or(Value::Null),
            )]),
        ),
        (
            "gates",
            Value::object(vec![
                ("passed", Value::Bool(failures.is_empty())),
                (
                    "failures",
                    Value::Array(
                        failures.iter().map(|f| Value::Str(f.as_str().into())).collect(),
                    ),
                ),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&cfg.out, report.encode() + "\n") {
        eprintln!("tbaa-loadgen: cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }

    // ---- summary ----
    eprintln!(
        "tbaa-loadgen: crash-restart: {} replies over {} phases ({} truncations), \
         {} checked, {} mismatches, probes {}/{} matched ({} recompiled)",
        totals.replies,
        phases,
        totals.truncations,
        checker.checked(),
        mismatches,
        probes.matched,
        probes.probed,
        probes.recompiled,
    );
    eprintln!(
        "tbaa-loadgen: journal replays per restart: {replayed_by_restart:?}; incr func hits {incr_hits}"
    );
    eprintln!("tbaa-loadgen: wrote {}", cfg.out);
    if failures.is_empty() {
        eprintln!("tbaa-loadgen: all gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("tbaa-loadgen: GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}

// ---- chaos clients ---------------------------------------------------------

#[derive(Default)]
struct ChaosResult {
    injections: u64,
    by_kind: Vec<(&'static str, u64)>,
    /// Chaos outcomes that contradict the contract (e.g. garbage
    /// answered with `ok:true`, or a slow reader losing replies).
    unexpected: u64,
    samples: Vec<String>,
}

impl ChaosResult {
    fn bump(&mut self, kind: &'static str) {
        self.injections += 1;
        match self.by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.by_kind.push((kind, 1)),
        }
    }

    fn surprise(&mut self, detail: String) {
        self.unexpected += 1;
        if self.samples.len() < 8 {
            self.samples.push(detail);
        }
    }
}

/// An error reply must come back for this line on a fresh connection.
fn expect_error(endpoint: &Endpoint, line: &str, kind: &'static str, out: &mut ChaosResult) {
    out.bump(kind);
    let Ok(mut wire) = endpoint.connect() else {
        out.surprise(format!("{kind}: connect failed"));
        return;
    };
    if wire.write_line(line).is_err() {
        out.surprise(format!("{kind}: write failed"));
        return;
    }
    let mut src = LineSource::new(wire);
    match src.read_line_blocking() {
        Ok(raw) => match parse(&raw) {
            Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(false) => {}
            _ => out.surprise(format!("{kind}: expected an error reply, got {raw}")),
        },
        Err(e) => out.surprise(format!("{kind}: no reply ({e})")),
    }
}

/// One misbehaving client: cycles random protocol abuse until the
/// deadline. Every behavior states its contract; breaking it counts as
/// `unexpected` and fails the run.
fn run_chaos(endpoint: &Endpoint, seed: u64, deadline: Instant) -> ChaosResult {
    let mut rng = XorShift64::new(seed);
    let mut out = ChaosResult::default();
    while Instant::now() < deadline {
        match rng.below(7) {
            // Unparseable garbage → structured parse error, connection lives.
            0 => expect_error(endpoint, "this is } not { json", "garbage", &mut out),
            // A nesting bomb → parse error, NOT a stack-overflow abort.
            1 => {
                let depth = 512 + rng.index(4096);
                let bomb = "[".repeat(depth);
                expect_error(endpoint, &bomb, "nesting_bomb", &mut out);
            }
            // Valid JSON, unknown verb → proto error.
            2 => expect_error(endpoint, r#"{"op":"frobnicate"}"#, "unknown_op", &mut out),
            // Invalid UTF-8 mid-frame → lossy-decoded, must still error.
            3 => {
                out.bump("invalid_utf8");
                if let Ok(mut wire) = endpoint.connect() {
                    use std::io::Write as _;
                    let _ = wire.write_all(b"{\"op\":\"stats\"\xff\xfe}\n");
                    let _ = wire.flush();
                    let mut src = LineSource::new(wire);
                    match src.read_line_blocking() {
                        Ok(raw) => match parse(&raw) {
                            Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(false) => {}
                            _ => out.surprise(format!("invalid_utf8: got {raw}")),
                        },
                        Err(e) => out.surprise(format!("invalid_utf8: no reply ({e})")),
                    }
                }
            }
            // Half a request, then vanish. No reply owed; the server must
            // just not wedge a worker (the io_timeout reaps us).
            4 => {
                out.bump("half_request");
                if let Ok(mut wire) = endpoint.connect() {
                    use std::io::Write as _;
                    let _ = wire.write_all(br#"{"op":"alias","session":"s1","pairs":[["a""#);
                    let _ = wire.flush();
                    std::thread::sleep(Duration::from_millis(rng.below(20)));
                }
            }
            // A full request, then disconnect without reading the reply.
            5 => {
                out.bump("ghost_request");
                if let Ok(mut wire) = endpoint.connect() {
                    let _ = wire.write_line(r#"{"op":"stats"}"#);
                }
            }
            // Slow reader: pipeline several requests, dawdle over the
            // replies. All of them must still arrive, in order.
            _ => {
                out.bump("slow_reader");
                let n = 4 + rng.index(5);
                if let Ok(wire) = endpoint.connect() {
                    let Ok(mut writer) = wire.try_clone() else {
                        continue;
                    };
                    let mut ok = true;
                    for _ in 0..n {
                        if writer.write_line(r#"{"op":"stats"}"#).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        out.surprise("slow_reader: pipelined writes failed".into());
                        continue;
                    }
                    let mut src = LineSource::new(wire);
                    for i in 0..n {
                        std::thread::sleep(Duration::from_millis(rng.below(40)));
                        match src.read_line_blocking() {
                            Ok(raw) => {
                                if parse(&raw)
                                    .ok()
                                    .and_then(|v| v.get("ok").and_then(Value::as_bool))
                                    != Some(true)
                                {
                                    out.surprise(format!("slow_reader: reply {i} bad: {raw}"));
                                }
                            }
                            Err(e) => {
                                out.surprise(format!("slow_reader: reply {i} missing ({e})"));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

// ---- stats poller ----------------------------------------------------------

struct StatsPoll {
    first: Option<Value<'static>>,
    last: Option<Value<'static>>,
    samples: u64,
    peak_inflight: i64,
    peak_active_connections: i64,
}

fn poll_stats_once(endpoint: &Endpoint) -> Option<Value<'static>> {
    let mut wire = endpoint.connect().ok()?;
    wire.write_line(r#"{"op":"stats"}"#).ok()?;
    let mut src = LineSource::new(wire);
    let raw = src.read_line_blocking().ok()?;
    Some(parse(&raw).ok()?.into_owned())
}

fn gauge_of(stats: &Value, name: &str) -> i64 {
    stats
        .get("stats")
        .and_then(|s| s.get("gauges"))
        .and_then(|g| g.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(0)
}

fn run_stats_poller(endpoint: &Endpoint, deadline: Instant) -> StatsPoll {
    let mut poll = StatsPoll {
        first: None,
        last: None,
        samples: 0,
        peak_inflight: 0,
        peak_active_connections: 0,
    };
    while Instant::now() < deadline {
        if let Some(v) = poll_stats_once(endpoint) {
            poll.samples += 1;
            poll.peak_inflight = poll.peak_inflight.max(gauge_of(&v, "inflight"));
            poll.peak_active_connections = poll
                .peak_active_connections
                .max(gauge_of(&v, "connections.active"));
            if poll.first.is_none() {
                poll.first = Some(v.clone());
            }
            poll.last = Some(v);
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    poll
}

// ---- driver ----------------------------------------------------------------

/// A quantile estimate from a server-side histogram snapshot
/// (`{count, sum, buckets: [[le|"inf", n], ...]}`): the upper bound of
/// the bucket where the cumulative count crosses the quantile. The
/// open-ended bucket reports the last finite bound (1s).
fn bucket_quantile_us(hist: &Value, q: f64) -> i64 {
    let count = hist.get("count").and_then(Value::as_i64).unwrap_or(0);
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as i64).max(1);
    let mut seen = 0i64;
    if let Some(buckets) = hist.get("buckets").and_then(Value::as_array) {
        for b in buckets {
            let Some(pair) = b.as_array() else { continue };
            seen += pair.get(1).and_then(Value::as_i64).unwrap_or(0);
            if seen >= target {
                return pair.first().and_then(Value::as_i64).unwrap_or(1_000_000);
            }
        }
    }
    1_000_000
}

/// The artifact's `router` section: the router's own stats fields plus
/// per-shard p50/p95/p99 derived from the per-shard request histograms.
fn router_report<'a>(final_stats: Option<&Value<'a>>, kill_backend: bool) -> Option<Value<'a>> {
    let r = final_stats?.get("router")?;
    let carry = |name: &str| r.get(name).cloned().unwrap_or(Value::Null);
    let per_shard: Vec<Value<'a>> = r
        .get("per_shard")
        .and_then(Value::as_array)
        .map(|shards| {
            shards
                .iter()
                .map(|sh| {
                    let hist = sh.get("request_us").cloned().unwrap_or(Value::Null);
                    let field = |name: &str| sh.get(name).cloned().unwrap_or(Value::Null);
                    Value::object(vec![
                        ("index", field("index")),
                        ("addr", field("addr")),
                        ("requests", field("requests")),
                        ("p50_us", Value::Int(bucket_quantile_us(&hist, 0.50))),
                        ("p95_us", Value::Int(bucket_quantile_us(&hist, 0.95))),
                        ("p99_us", Value::Int(bucket_quantile_us(&hist, 0.99))),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    Some(Value::object(vec![
        ("shards", carry("shards")),
        ("sessions", carry("sessions")),
        ("retries", carry("retries")),
        ("respawns", carry("respawns")),
        ("imbalance_pct", carry("imbalance_pct")),
        ("kill_backend", Value::Bool(kill_backend)),
        ("per_shard", Value::Array(per_shard)),
    ]))
}

fn counter_of(stats: &Value, name: &str) -> i64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(0)
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let contents: Arc<Vec<Content>> = Arc::new(match cfg.mutate {
        Some(versions) => {
            eprintln!("tbaa-loadgen: mutate mode, {versions} superseding program versions");
            tbaa_bench::load::mutate_contents(cfg.seed, versions)
        }
        None => cfg
            .benches
            .iter()
            .map(|name| Content::Bench {
                name: name.clone(),
                scale: cfg.scale,
            })
            .collect(),
    });

    eprintln!(
        "tbaa-loadgen: building the in-process oracle over {} contents...",
        contents.len()
    );
    let checker = Arc::new(DiffChecker::new(&contents));
    // Pre-warm the oracle's path tables so client threads measure the
    // daemon, not their own lazy compiles.
    for c in contents.iter() {
        let _ = checker.oracle().paths(&c.key());
    }

    if cfg.crash_restart.is_some() {
        return run_crash_restart(&cfg, &contents, &checker);
    }

    let mut daemon = match (&cfg.connect, cfg.router) {
        (Some(addr), _) => Daemon::external(addr),
        (None, Some(shards)) => match Daemon::router(&cfg, shards) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("tbaa-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => match Daemon::spawn(&cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("tbaa-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    eprintln!(
        "tbaa-loadgen: driving {} ({} clients, {:?}, {} loop{})",
        daemon.endpoint.describe(),
        cfg.clients,
        cfg.duration,
        if cfg.open_loop { "open" } else { "closed" },
        if cfg.chaos { ", chaos on" } else { "" },
    );

    let started = Instant::now();
    let deadline = started + cfg.duration;
    let endpoint = daemon.endpoint.clone();
    let router_state = daemon.router_state();

    // Fault injection: halfway through the run, murder the backend
    // shard that owns the first content. The router must respawn it and
    // replay the journal; the gates below demand it.
    let killer = if cfg.kill_backend {
        let state = router_state.clone().expect("--kill-backend requires --router");
        let victim = state.shard_of(&contents[0].key().display());
        let delay = cfg.duration / 2;
        eprintln!("tbaa-loadgen: will kill backend shard {victim} after {delay:?}");
        Some(std::thread::spawn(move || {
            std::thread::sleep(delay);
            state.kill_backend(victim);
        }))
    } else {
        None
    };

    let mut client_handles = Vec::new();
    for c in 0..cfg.clients {
        let endpoint = endpoint.clone();
        let checker = checker.clone();
        let contents = contents.clone();
        let cfg = cfg.clone();
        client_handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || {
                    let seed = cfg.seed.wrapping_add(1 + c as u64);
                    if cfg.open_loop {
                        run_open(
                            &endpoint, &checker, &contents, seed, cfg.sample, cfg.rate, deadline,
                        )
                    } else {
                        run_closed(&endpoint, &checker, &contents, seed, cfg.sample, deadline)
                    }
                })
                .expect("spawn client"),
        );
    }

    let mut chaos_handles = Vec::new();
    if cfg.chaos {
        for c in 0..cfg.chaos_clients {
            let endpoint = endpoint.clone();
            let seed = cfg.seed.wrapping_add(0x1000 + c as u64);
            chaos_handles.push(
                std::thread::Builder::new()
                    .name(format!("loadgen-chaos-{c}"))
                    .spawn(move || run_chaos(&endpoint, seed, deadline))
                    .expect("spawn chaos client"),
            );
        }
    }

    let poller = {
        let endpoint = endpoint.clone();
        std::thread::Builder::new()
            .name("loadgen-stats".into())
            .spawn(move || run_stats_poller(&endpoint, deadline))
            .expect("spawn stats poller")
    };

    // Liveness watch while the run is in flight.
    let mut died_midrun = false;
    while Instant::now() < deadline {
        if !daemon.alive() {
            died_midrun = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let mut latency = VerbLatencies::new();
    let mut totals = ClientResult::default();
    for h in client_handles {
        let r = h.join().expect("client thread panicked");
        latency.merge(&r.latency);
        totals.sent += r.sent;
        totals.replies += r.replies;
        totals.io_errors += r.io_errors;
    }
    let mut chaos = ChaosResult::default();
    for h in chaos_handles {
        let r = h.join().expect("chaos thread panicked");
        chaos.injections += r.injections;
        chaos.unexpected += r.unexpected;
        for (k, n) in r.by_kind {
            match chaos.by_kind.iter_mut().find(|(kk, _)| *kk == k) {
                Some((_, m)) => *m += n,
                None => chaos.by_kind.push((k, n)),
            }
        }
        chaos.samples.extend(r.samples);
    }
    let poll = poller.join().expect("poller thread panicked");
    if let Some(k) = killer {
        k.join().expect("killer thread panicked");
    }
    let wall = started.elapsed();

    // Final server-side snapshot after the fleet has gone quiet.
    let final_stats = poll_stats_once(&endpoint).or_else(|| poll.last.clone());
    let server_panics = final_stats
        .as_ref()
        .map_or(-1, |s| counter_of(s, "requests.panics"));

    // Stop a spawned daemon and demand a clean exit.
    let shutdown_result = if died_midrun {
        Err("daemon died mid-run".to_string())
    } else {
        daemon.shutdown()
    };

    // ---- gates ----
    let mismatches = checker.mismatches();
    let mut failures: Vec<String> = Vec::new();
    if mismatches > 0 {
        failures.push(format!("{mismatches} differential mismatch(es)"));
        for d in checker.details() {
            eprintln!("tbaa-loadgen: MISMATCH: {d}");
        }
    }
    if server_panics != 0 {
        failures.push(format!("server reported {server_panics} request panics"));
    }
    if chaos.unexpected > 0 {
        failures.push(format!("{} unexpected chaos outcomes", chaos.unexpected));
        for s in &chaos.samples {
            eprintln!("tbaa-loadgen: CHAOS: {s}");
        }
    }
    if totals.io_errors > 0 {
        failures.push(format!(
            "{} well-behaved requests went unanswered",
            totals.io_errors
        ));
    }
    if let Err(e) = &shutdown_result {
        failures.push(e.clone());
    }
    if cfg.kill_backend {
        let respawns = router_state.as_ref().map_or(0, |st| st.respawns());
        if respawns == 0 {
            failures.push("backend was killed but never respawned".into());
        }
    }
    let incr_hits = final_stats
        .as_ref()
        .map_or(0, |s| counter_of(s, "incr.func_hits"));
    let incr_misses = final_stats
        .as_ref()
        .map_or(0, |s| counter_of(s, "incr.func_misses"));
    if cfg.mutate.is_some() && incr_hits == 0 {
        failures.push(
            "mutate mode ran but the incremental cache reused nothing (incr.func_hits == 0)"
                .into(),
        );
    }

    // ---- artifact ----
    let atom = |n: u64| Value::Int(n as i64);
    let mut report_fields: Vec<(&str, Value)> = vec![
        ("harness", Value::Str("tbaa-loadgen".into())),
        ("host", tbaa_bench::host::host_stamp()),
        (
            "config",
            Value::object(vec![
                ("clients", Value::Int(cfg.clients as i64)),
                ("duration_s", Value::Float(cfg.duration.as_secs_f64())),
                (
                    "mode",
                    Value::Str(if cfg.open_loop { "open" } else { "closed" }.into()),
                ),
                ("rate_per_client", Value::Float(cfg.rate)),
                ("chaos", Value::Bool(cfg.chaos)),
                ("chaos_clients", Value::Int(cfg.chaos_clients as i64)),
                ("sample", Value::Int(cfg.sample as i64)),
                ("seed", Value::Int(cfg.seed as i64)),
                (
                    "benches",
                    Value::Array(cfg.benches.iter().map(|b| Value::Str(b.as_str().into())).collect()),
                ),
                ("scale", Value::Int(cfg.scale as i64)),
                (
                    "mutate",
                    cfg.mutate.map_or(Value::Null, |n| Value::Int(n as i64)),
                ),
                ("server_workers", Value::Int(cfg.server_workers as i64)),
                ("server_capacity", Value::Int(cfg.server_capacity as i64)),
                ("endpoint", Value::Str(endpoint.describe().into())),
            ]),
        ),
        (
            "totals",
            Value::object(vec![
                ("requests_sent", atom(totals.sent)),
                ("replies", atom(totals.replies)),
                ("unanswered", atom(totals.io_errors)),
                ("wall_s", Value::Float(wall.as_secs_f64())),
                (
                    "throughput_rps",
                    Value::Float(totals.replies as f64 / wall.as_secs_f64().max(1e-9)),
                ),
            ]),
        ),
        ("latency_us_by_verb", latency.to_json()),
        (
            "differential",
            Value::object(vec![
                ("checked", atom(checker.checked())),
                ("mismatches", atom(mismatches)),
            ]),
        ),
        (
            "chaos",
            Value::object(vec![
                ("injections", atom(chaos.injections)),
                ("unexpected", atom(chaos.unexpected)),
                (
                    "by_kind",
                    Value::Object(
                        chaos
                            .by_kind
                            .iter()
                            .map(|(k, n)| ((*k).into(), Value::Int(*n as i64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "server",
            Value::object(vec![
                ("stats_samples", atom(poll.samples)),
                ("peak_inflight", Value::Int(poll.peak_inflight)),
                (
                    "peak_active_connections",
                    Value::Int(poll.peak_active_connections),
                ),
                ("final_stats", final_stats.clone().unwrap_or(Value::Null)),
            ]),
        ),
        (
            "incremental",
            Value::object(vec![
                ("mutate_mode", Value::Bool(cfg.mutate.is_some())),
                ("func_hits", Value::Int(incr_hits)),
                ("func_misses", Value::Int(incr_misses)),
                (
                    "reuse_ratio_pct",
                    Value::Int(
                        final_stats
                            .as_ref()
                            .map_or(0, |s| gauge_of(s, "incr.reuse_ratio")),
                    ),
                ),
            ]),
        ),
    ];
    if let Some(r) = router_report(final_stats.as_ref(), cfg.kill_backend) {
        report_fields.push(("router", r));
    }
    report_fields.push((
        "gates",
        Value::object(vec![
            ("passed", Value::Bool(failures.is_empty())),
            (
                "failures",
                Value::Array(failures.iter().map(|f| Value::Str(f.as_str().into())).collect()),
            ),
        ]),
    ));
    let report = Value::object(report_fields);
    if let Err(e) = std::fs::write(&cfg.out, report.encode() + "\n") {
        eprintln!("tbaa-loadgen: cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }

    // ---- summary ----
    eprintln!(
        "tbaa-loadgen: {} replies in {:.2}s ({:.0} rps), {} checked, {} mismatches, {} chaos injections",
        totals.replies,
        wall.as_secs_f64(),
        totals.replies as f64 / wall.as_secs_f64().max(1e-9),
        checker.checked(),
        mismatches,
        chaos.injections,
    );
    if let Some(stats) = &final_stats {
        eprintln!(
            "tbaa-loadgen: server counters: {} invalid, {} errors, {} panics, {} compiles, {} evictions",
            counter_of(stats, "requests.invalid"),
            counter_of(stats, "requests.errors"),
            counter_of(stats, "requests.panics"),
            counter_of(stats, "sessions.compiles"),
            counter_of(stats, "sessions.evictions"),
        );
        eprintln!(
            "tbaa-loadgen: incremental: {} func hits, {} func misses, last reuse {}%",
            counter_of(stats, "incr.func_hits"),
            counter_of(stats, "incr.func_misses"),
            gauge_of(stats, "incr.reuse_ratio"),
        );
    }
    if let Some(state) = &router_state {
        eprintln!(
            "tbaa-loadgen: router: {} shards, {} respawns",
            state.shard_count(),
            state.respawns(),
        );
    }
    eprintln!("tbaa-loadgen: wrote {}", cfg.out);
    if failures.is_empty() {
        eprintln!("tbaa-loadgen: all gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("tbaa-loadgen: GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
