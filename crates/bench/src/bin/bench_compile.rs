//! `bench-compile` — cold-compile pipeline microbenchmark.
//!
//! Measures the source → IR cold-compile path (parse, check, per-unit
//! lowering, merge) over the whole benchsuite at several workload
//! scales, and appends a `compile` section to the bench report:
//!
//! ```text
//! bench-compile [--scales 1,4,16] [--reps N] [--out PATH] [--smoke]
//! ```
//!
//! Three things are measured, matching the three claims the parallel
//! cold-compile pipeline makes:
//!
//! 1. **Single-thread cost.** Wall time and *allocation count* of the
//!    serial compile. Lowering is deterministic, so the allocation count
//!    is exact and reproducible — the report gates on it staying at or
//!    below the pre-optimization baseline measured in
//!    [`BASELINE_ALLOCS`], which makes per-unit `String`/`Vec` churn a
//!    hard regression even on a single-core CI host where wall-clock
//!    noise would hide it.
//! 2. **Thread scaling.** The same compile through
//!    [`tbaa_ir::compile_to_ir_with_threads`] at 1/2/4/8 threads. The
//!    production entry point caps workers by host cores, so on a
//!    single-core host every point degrades to the serial path and the
//!    curve is flat by construction; the speedup gate therefore arms
//!    only when `available_parallelism() > 1` (the host stamp records
//!    the core count so readers can interpret a flat curve).
//! 3. **Determinism.** Every parallel compile is fingerprinted against
//!    the serial one (`tbaa_ir::pretty::program`) before its timing is
//!    accepted — a faster-but-different compile invalidates the run.
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tbaa_server::json::Value;

/// `System` with allocation counters. Counts every `alloc`,
/// `alloc_zeroed`, and `realloc` (a grown `Vec` is exactly the churn
/// this benchmark exists to pin down); `dealloc` is pass-through.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count + bytes of one run of `f` (single-threaded runs
/// only: the counters are process-global).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let out = f();
    (
        out,
        ALLOCS.load(Ordering::Relaxed) - a0,
        ALLOC_BYTES.load(Ordering::Relaxed) - b0,
    )
}

/// Serial cold-compile allocation counts measured at the commit *before*
/// the scratch-reuse/pre-sizing work (per-unit `String`/`Vec` churn in
/// `ModuleLowerer`, unsized interner and `ApTable`), via a throwaway
/// `git worktree` of that commit running this same binary. Exact values:
/// lowering is deterministic, so any drift above the gate is a real
/// regression, not noise. `(bench, scale, allocs)`.
const BASELINE_ALLOCS: &[(&str, u32, u64)] = &[
    ("format", 1, 2355),
    ("dformat", 1, 2913),
    ("write-pickle", 1, 3015),
    ("ktree", 1, 1954),
    ("slisp", 1, 10295),
    ("pp", 1, 3513),
    ("dom", 1, 3632),
    ("postcard", 1, 3686),
    ("m2tom3", 1, 2787),
    ("m3cg", 1, 6281),
];

struct Config {
    scales: Vec<u32>,
    reps: u32,
    out: String,
    smoke: bool,
    print_allocs: bool,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config {
        scales: vec![1, 4, 16],
        reps: 5,
        out: "BENCH_alias_query.json".to_string(),
        smoke: false,
        print_allocs: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scales" => {
                i += 1;
                if let Some(list) = args.get(i) {
                    cfg.scales = list
                        .split(',')
                        .filter_map(|s| s.parse().ok())
                        .collect();
                }
            }
            "--reps" => {
                i += 1;
                cfg.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(cfg.reps);
            }
            "--out" => {
                i += 1;
                cfg.out = args.get(i).cloned().unwrap_or(cfg.out);
            }
            "--smoke" => cfg.smoke = true,
            "--print-allocs" => cfg.print_allocs = true,
            other => {
                eprintln!("bench-compile: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if cfg.smoke {
        cfg.scales = vec![1, 4];
        cfg.reps = 1;
    }
    cfg
}

/// Best wall-clock microseconds over `reps` runs of `f`.
fn best_us(reps: u32, mut f: impl FnMut()) -> i64 {
    let mut best = i64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_micros() as i64);
    }
    best
}

fn main() {
    let cfg = parse_args();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

    let mut rows: Vec<Value<'static>> = Vec::new();
    // Thread-scaling accumulators: summed best-case µs across every
    // (bench, scale) cell, per thread count.
    let mut curve_total = [0i64; THREAD_CURVE.len()];
    let mut alloc_gate_failures: Vec<String> = Vec::new();
    let mut baseline_total: u64 = 0;
    let mut measured_total: u64 = 0;

    for b in tbaa_benchsuite::suite() {
        for &scale in &cfg.scales {
            let src = b.source_at_scale(scale);
            let serial = tbaa_ir::compile_to_ir(&src).expect("benchsuite compiles");
            let fingerprint = tbaa_ir::pretty::program(&serial);

            // Determinism gate: parallel lowering must reproduce the
            // serial program bit-for-bit at forced worker counts (the
            // `_with_workers` entry bypasses the host-core cap so this
            // exercises real fan-out even on a 1-CPU host).
            for workers in [2usize, 4] {
                let checked = mini_m3::compile(&src).expect("benchsuite checks");
                let par = tbaa_ir::lower_parallel_with_workers(checked, workers)
                    .expect("benchsuite lowers");
                assert_eq!(
                    tbaa_ir::pretty::program(&par),
                    fingerprint,
                    "{}@{scale}: parallel lowering ({workers} workers) diverged",
                    b.name
                );
            }

            let serial_us = best_us(cfg.reps, || {
                black_box(tbaa_ir::compile_to_ir(black_box(&src)).expect("compiles"));
            });
            let (_, allocs, alloc_bytes) =
                count_allocs(|| black_box(tbaa_ir::compile_to_ir(black_box(&src))));

            let mut curve: Vec<Value<'static>> = Vec::new();
            for (slot, &threads) in THREAD_CURVE.iter().enumerate() {
                let us = best_us(cfg.reps, || {
                    black_box(
                        tbaa_ir::compile_to_ir_with_threads(black_box(&src), threads)
                            .expect("compiles"),
                    );
                });
                curve_total[slot] += us;
                curve.push(Value::object(vec![
                    ("threads", Value::Int(threads as i64)),
                    ("us", Value::Int(us)),
                ]));
            }

            if let Some(&(_, _, baseline)) = BASELINE_ALLOCS
                .iter()
                .find(|&&(name, s, _)| name == b.name && s == scale)
            {
                baseline_total += baseline;
                measured_total += allocs;
                // The scratch-reuse work cut counts by ~20%; gate at
                // "no worse than baseline" so unrelated legitimate
                // growth has headroom while churn regressions (which
                // scale with unit count) still trip it.
                if allocs > baseline {
                    alloc_gate_failures.push(format!(
                        "{}@{scale}: {allocs} allocs vs {baseline} baseline",
                        b.name
                    ));
                }
            }

            if cfg.print_allocs {
                println!("ALLOCS {} {} {}", b.name, scale, allocs);
            }
            rows.push(Value::object(vec![
                ("bench", Value::Str(b.name.into())),
                ("scale", Value::Int(scale as i64)),
                ("funcs", Value::Int(serial.funcs.len() as i64)),
                ("instrs", Value::Int(serial.instr_count() as i64)),
                ("serial_us", Value::Int(serial_us)),
                ("allocs", Value::Int(allocs as i64)),
                ("alloc_bytes", Value::Int(alloc_bytes as i64)),
                ("scaling", Value::Array(curve)),
            ]));
        }
    }

    let scaling: Vec<Value<'static>> = THREAD_CURVE
        .iter()
        .zip(curve_total.iter())
        .map(|(&threads, &us)| {
            Value::object(vec![
                ("threads", Value::Int(threads as i64)),
                ("total_us", Value::Int(us)),
            ])
        })
        .collect();

    let compile_section = Value::object(vec![
        ("host_threads", Value::Int(host_threads as i64)),
        ("smoke", Value::Bool(cfg.smoke)),
        ("reps", Value::Int(cfg.reps as i64)),
        (
            "scales",
            Value::Array(cfg.scales.iter().map(|&s| Value::Int(s as i64)).collect()),
        ),
        ("rows", Value::Array(rows)),
        ("scaling", Value::Array(scaling)),
        (
            "baseline_allocs_total",
            Value::Int(baseline_total as i64),
        ),
        ("measured_allocs_total", Value::Int(measured_total as i64)),
    ]);

    // Merge into the shared report file: keep every other section of an
    // existing `BENCH_alias_query.json` (bench-alias owns those) and
    // replace/append only `host` and `compile`.
    let existing = std::fs::read_to_string(&cfg.out).ok();
    let mut fields: Vec<(String, Value<'static>)> = Vec::new();
    if let Some(text) = &existing {
        if let Ok(Value::Object(entries)) = tbaa_server::json::parse(text) {
            for (k, v) in entries {
                if k != "compile" && k != "host" {
                    fields.push((k.into_owned(), v.into_owned()));
                }
            }
        }
    }
    fields.insert(0, ("host".to_string(), tbaa_bench::host::host_stamp()));
    fields.push(("compile".to_string(), compile_section));
    let report = Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (std::borrow::Cow::Owned(k), v))
            .collect(),
    );
    std::fs::write(&cfg.out, format!("{}\n", report.encode())).expect("write report");

    let curve_line: Vec<String> = THREAD_CURVE
        .iter()
        .zip(curve_total.iter())
        .map(|(&t, &us)| format!("{t}t={us}us"))
        .collect();
    println!(
        "bench-compile: {} benches x {:?} scales ({host_threads} host threads)",
        tbaa_benchsuite::suite().len(),
        cfg.scales
    );
    println!("  cold compile  {}", curve_line.join(" "));
    if measured_total > 0 {
        println!(
            "  allocations   {measured_total} vs {baseline_total} baseline ({:.2}x)",
            measured_total as f64 / baseline_total.max(1) as f64
        );
    }
    println!("  report -> {}", cfg.out);

    let mut failed = false;
    for failure in &alloc_gate_failures {
        eprintln!("bench-compile: WARNING allocation regression: {failure}");
        failed = true;
    }
    // Thread-scaling gate, armed only where threads can actually run in
    // parallel. On a 1-CPU host the production cap short-circuits every
    // point to the serial path, so the curve must be flat — nothing to
    // gate beyond the allocation count above.
    let serial_total = curve_total[0];
    let best_parallel = curve_total[1..].iter().copied().min().unwrap_or(serial_total);
    if !cfg.smoke && host_threads > 1 && best_parallel >= serial_total {
        eprintln!(
            "bench-compile: WARNING cold compile did not speed up with threads \
             ({serial_total}us serial vs {best_parallel}us best parallel on {host_threads} cores)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
