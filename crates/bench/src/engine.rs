//! The shared-compilation, parallel evaluation engine behind every table
//! and figure.
//!
//! The paper's evaluation runs the same ten benchmark programs through
//! compile → analyze → optimize → simulate for every metric. Re-doing
//! that from scratch per table wastes most of the wall-clock: Table 6,
//! Figures 8, 9, 10, 11 and 12 all want "the suite with RLE at level L",
//! and every figure wants the base program's simulated cycle count.
//!
//! An [`Engine`] therefore:
//!
//! * compiles each benchmark **once** per scale into an `Arc<Program>`;
//! * memoizes [`Tbaa::build`] results keyed by `(program, Level, World)`;
//! * memoizes optimized program variants keyed by their [`OptOptions`];
//! * memoizes interpreter runs, cycle simulations, and redundancy traces
//!   per program variant;
//! * fans row computations out across a scoped worker pool
//!   (`std::thread::scope` + an atomic work-stealing cursor), which is
//!   sound because `Program` and `Tbaa` are `Send + Sync` and every
//!   query API takes `&self`.
//!
//! All caches hand out `Arc`s, so repeated lookups are pointer-equal and
//! a table costs at most one compile / analysis / simulation per key no
//! matter how many threads race for it (the shared [`tbaa::memo::Memo`]
//! makes the build exactly-once per key; the `tbaad` server's session
//! cache uses the same implementation). Results are byte-for-byte
//! identical to the
//! single-threaded order because rows are reassembled in suite order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tbaa::analysis::{Level, Tbaa};
use tbaa::memo::Memo;
use tbaa::{census_alias_pairs, CompiledAliasEngine, World};
use tbaa_benchsuite::{suite, Benchmark};
use tbaa_ir::ir::Program;
use tbaa_opt::rle::run_rle;
use tbaa_opt::{optimize, OptOptions, OptReport};
use tbaa_sim::interp::{run, ExecCounts, NullHook, RunConfig};
use tbaa_sim::{classify_remaining, simulate, RedundancyTrace};

use crate::{
    Fig10Row, Fig9Row, RuntimeRow, Table4Row, Table5Row, Table6Row,
};
use tbaa::AliasPairCounts;
use tbaa_sim::LimitResult;

/// Which variant of a benchmark program a dynamic metric refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Variant {
    /// The program as compiled.
    Base,
    /// The program after `optimize` with these options.
    Optimized(OptOptions),
}

/// Cache-hit / build statistics for one [`Engine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Programs actually compiled (distinct benchmarks touched).
    pub compiles: usize,
    /// `Tbaa::build` invocations that were cache misses.
    pub analyses_built: usize,
    /// Compiled query engines materialized.
    pub engines_compiled: usize,
    /// Optimized program variants materialized.
    pub variants_built: usize,
    /// Interpreter / simulator executions.
    pub executions: usize,
}

/// The shared-compilation evaluation engine. See the module docs.
pub struct Engine {
    scale: u32,
    threads: usize,
    programs: Memo<&'static str, Program>,
    analyses: Memo<(&'static str, Level, World), Tbaa>,
    compiled: Memo<(&'static str, Level, World), CompiledAliasEngine>,
    optimized: Memo<(&'static str, OptOptions), (Program, OptReport)>,
    counts: Memo<(&'static str, Variant), ExecCounts>,
    cycles: Memo<(&'static str, Variant), f64>,
    traces: Memo<(&'static str, Variant), RedundancyTrace>,
    compiles: AtomicUsize,
    analyses_built: AtomicUsize,
    engines_compiled: AtomicUsize,
    variants_built: AtomicUsize,
    executions: AtomicUsize,
}

fn run_config() -> RunConfig {
    RunConfig::default()
}

impl Engine {
    /// An engine over the suite at `scale`, fanning out over all
    /// available cores.
    pub fn new(scale: u32) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(scale, threads)
    }

    /// An engine with an explicit worker count (`1` forces the serial
    /// reference order; the output is identical either way).
    pub fn with_threads(scale: u32, threads: usize) -> Self {
        Engine {
            scale,
            threads: threads.max(1),
            programs: Memo::new(),
            analyses: Memo::new(),
            compiled: Memo::new(),
            optimized: Memo::new(),
            counts: Memo::new(),
            cycles: Memo::new(),
            traces: Memo::new(),
            compiles: AtomicUsize::new(0),
            analyses_built: AtomicUsize::new(0),
            engines_compiled: AtomicUsize::new(0),
            variants_built: AtomicUsize::new(0),
            executions: AtomicUsize::new(0),
        }
    }

    /// The workload scale the engine compiles at.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// The worker count used for fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many programs this engine has compiled so far. With the memo
    /// cache working, this never exceeds the number of distinct
    /// benchmarks touched — regardless of thread count.
    pub fn compile_count(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Build/exec statistics so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            analyses_built: self.analyses_built.load(Ordering::Relaxed),
            engines_compiled: self.engines_compiled.load(Ordering::Relaxed),
            variants_built: self.variants_built.load(Ordering::Relaxed),
            executions: self.executions.load(Ordering::Relaxed),
        }
    }

    // ---- memoized artifacts ------------------------------------------------

    /// The benchmark compiled once at the engine's scale.
    pub fn program(&self, b: &Benchmark) -> Arc<Program> {
        self.programs.get_or_build(b.name, || {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            b.compile(self.scale).expect("suite compiles")
        })
    }

    /// The alias analysis for the benchmark's *base* program, built once
    /// per `(program, level, world)`.
    pub fn analysis(&self, b: &Benchmark, level: Level, world: World) -> Arc<Tbaa> {
        let prog = self.program(b);
        self.analyses.get_or_build((b.name, level, world), || {
            self.analyses_built.fetch_add(1, Ordering::Relaxed);
            Tbaa::build(&prog, level, world)
        })
    }

    /// The compiled query engine over the benchmark's *base* program,
    /// built once per `(program, level, world)` on top of the memoized
    /// analysis. Alias-pair enumeration queries this instead of the
    /// naive path walk; answers are identical.
    pub fn compiled(&self, b: &Benchmark, level: Level, world: World) -> Arc<CompiledAliasEngine> {
        let prog = self.program(b);
        let analysis = self.analysis(b, level, world);
        self.compiled.get_or_build((b.name, level, world), || {
            self.engines_compiled.fetch_add(1, Ordering::Relaxed);
            CompiledAliasEngine::compile(&prog, analysis)
        })
    }

    /// The benchmark optimized under `opts`, plus the pass report. The
    /// base compile is shared; the clone-then-optimize result is cached
    /// per options value.
    pub fn optimized(&self, b: &Benchmark, opts: OptOptions) -> Arc<(Program, OptReport)> {
        self.optimized.get_or_build((b.name, opts), || {
            self.variants_built.fetch_add(1, Ordering::Relaxed);
            let mut prog = (*self.program(b)).clone();
            let report = if !opts.devirt_inline && !opts.copy_propagation && !opts.dead_store_elimination {
                // Pure-RLE configurations consult the analysis on the
                // unmodified program — exactly the memoized one.
                let analysis = self.analysis(b, opts.level, opts.world);
                let mut report = OptReport::default();
                if opts.rle {
                    report.rle = run_rle(&mut prog, &*analysis);
                }
                report
            } else {
                // Multi-pass configurations rebuild the analysis between
                // passes on the evolving program; defer to the canonical
                // pipeline for fidelity.
                optimize(&mut prog, &opts)
            };
            (prog, report)
        })
    }

    fn with_variant<R>(&self, b: &Benchmark, v: Variant, f: impl FnOnce(&Program) -> R) -> R {
        match v {
            Variant::Base => f(&self.program(b)),
            Variant::Optimized(opts) => f(&self.optimized(b, opts).0),
        }
    }

    /// Interpreter counters for a program variant.
    fn exec_counts(&self, b: &Benchmark, v: Variant) -> Arc<ExecCounts> {
        self.counts.get_or_build((b.name, v), || {
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.with_variant(b, v, |p| {
                run(p, &mut NullHook, run_config()).expect("suite runs").counts
            })
        })
    }

    /// Simulated cycle count for a program variant.
    fn sim_cycles(&self, b: &Benchmark, v: Variant) -> f64 {
        *self.cycles.get_or_build((b.name, v), || {
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.with_variant(b, v, |p| {
                let (_, _, cycles) = simulate(p, run_config()).expect("suite runs");
                cycles
            })
        })
    }

    /// Redundancy trace for a program variant.
    fn trace(&self, b: &Benchmark, v: Variant) -> Arc<RedundancyTrace> {
        self.traces.get_or_build((b.name, v), || {
            self.executions.fetch_add(1, Ordering::Relaxed);
            self.with_variant(b, v, |p| {
                let mut t = RedundancyTrace::new();
                run(p, &mut t, run_config()).expect("suite runs");
                t
            })
        })
    }

    // ---- the parallel driver ----------------------------------------------

    /// Maps `f` over `items` on the engine's worker pool. Workers claim
    /// items through a shared atomic cursor (cheap work stealing: a fast
    /// worker drains whatever a slow one has not claimed); results are
    /// reassembled in input order, so the output is independent of the
    /// schedule.
    fn par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let done = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = f(item);
                    done.lock().expect("worker poisoned").push((i, r));
                });
            }
        });
        let mut out = done.into_inner().expect("worker poisoned");
        out.sort_by_key(|&(i, _)| i);
        out.into_iter().map(|(_, r)| r).collect()
    }

    fn non_interactive() -> Vec<&'static Benchmark> {
        suite().iter().filter(|b| !b.interactive).collect()
    }

    // ---- tables and figures ------------------------------------------------

    /// Table 4 — benchmark description (lines, instructions, load mix).
    pub fn table4(&self) -> Vec<Table4Row> {
        let all: Vec<&Benchmark> = suite().iter().collect();
        self.par_map(&all, |b| {
            let (instructions, heap, other) = if b.interactive {
                (None, None, None)
            } else {
                let counts = self.exec_counts(b, Variant::Base);
                (
                    Some(counts.instructions),
                    Some(counts.heap_load_pct()),
                    Some(counts.other_load_pct()),
                )
            };
            Table4Row {
                name: b.name,
                lines: b.loc(),
                instructions,
                heap_load_pct: heap,
                other_load_pct: other,
                about: b.about,
            }
        })
    }

    /// Table 5 — static alias pairs per analysis (all ten programs).
    pub fn table5(&self) -> Vec<Table5Row> {
        let all: Vec<&Benchmark> = suite().iter().collect();
        self.par_map(&all, |b| {
            let prog = self.program(b);
            let mut by_level = [AliasPairCounts::default(); 3];
            for (i, level) in Level::ALL.iter().enumerate() {
                let engine = self.compiled(b, *level, World::Closed);
                by_level[i] = census_alias_pairs(&prog, &engine).counts;
            }
            Table5Row {
                name: b.name,
                references: by_level[0].references,
                by_level,
            }
        })
    }

    /// Table 6 — redundant loads removed statically (non-interactive
    /// programs).
    pub fn table6(&self) -> Vec<Table6Row> {
        let items = Self::non_interactive();
        self.par_map(&items, |b| {
            let mut removed = [0usize; 3];
            for (i, level) in Level::ALL.iter().enumerate() {
                let opt = self.optimized(b, OptOptions::rle_only(*level));
                removed[i] = opt.1.rle.removed();
            }
            Table6Row {
                name: b.name,
                removed,
            }
        })
    }

    /// Figure 8 — simulated run time of RLE per analysis level,
    /// normalized to the unoptimized program (100).
    pub fn fig8(&self) -> Vec<RuntimeRow> {
        let items = Self::non_interactive();
        self.par_map(&items, |b| {
            let base_cycles = self.sim_cycles(b, Variant::Base);
            let mut pct = Vec::new();
            for level in Level::ALL {
                let c = self.sim_cycles(b, Variant::Optimized(OptOptions::rle_only(level)));
                pct.push(100.0 * c / base_cycles);
            }
            RuntimeRow {
                name: b.name,
                pct,
                labels: vec![
                    "Types only",
                    "Types and fields",
                    "Types, fields, and merges",
                ],
            }
        })
    }

    /// Figure 9 — dynamic redundancy before/after TBAA + RLE.
    pub fn fig9(&self) -> Vec<Fig9Row> {
        let items = Self::non_interactive();
        let sm = OptOptions::rle_only(Level::SmFieldTypeRefs);
        self.par_map(&items, |b| {
            let t_base = self.trace(b, Variant::Base);
            let t_opt = self.trace(b, Variant::Optimized(sm));
            Fig9Row {
                name: b.name,
                limit: LimitResult {
                    original_heap_loads: t_base.heap_loads,
                    redundant_original: t_base.redundant,
                    optimized_heap_loads: t_opt.heap_loads,
                    redundant_after: t_opt.redundant,
                },
            }
        })
    }

    /// Figure 10 — sources of the redundancy remaining after RLE.
    pub fn fig10(&self) -> Vec<Fig10Row> {
        let items = Self::non_interactive();
        let sm = OptOptions::rle_only(Level::SmFieldTypeRefs);
        self.par_map(&items, |b| {
            let t_base = self.trace(b, Variant::Base);
            let trace = self.trace(b, Variant::Optimized(sm));
            let analysis = self.analysis(b, Level::SmFieldTypeRefs, World::Closed);
            // `classify_remaining` interns shadow access paths, so it
            // needs its own mutable copy of the optimized program.
            let mut opt = self.optimized(b, sm).0.clone();
            let breakdown = classify_remaining(&mut opt, &analysis, &trace);
            Fig10Row {
                name: b.name,
                breakdown,
                original_heap_loads: t_base.heap_loads,
            }
        })
    }

    /// Figure 11 — cumulative impact of RLE, Minv+Inlining, and both.
    pub fn fig11(&self) -> Vec<RuntimeRow> {
        let items = Self::non_interactive();
        let rle = OptOptions::rle_only(Level::SmFieldTypeRefs);
        let minv = {
            let mut o = OptOptions::full(Level::SmFieldTypeRefs);
            o.rle = false;
            o
        };
        let full = OptOptions::full(Level::SmFieldTypeRefs);
        self.par_map(&items, |b| {
            let base_cycles = self.sim_cycles(b, Variant::Base);
            let pct = [rle, minv, full]
                .into_iter()
                .map(|o| 100.0 * self.sim_cycles(b, Variant::Optimized(o)) / base_cycles)
                .collect();
            RuntimeRow {
                name: b.name,
                pct,
                labels: vec!["RLE", "Minv+Inlining", "RLE+Minv+Inlining"],
            }
        })
    }

    /// Figure 12 — RLE under the closed- vs open-world assumption.
    pub fn fig12(&self) -> Vec<RuntimeRow> {
        let items = Self::non_interactive();
        self.par_map(&items, |b| {
            let base_cycles = self.sim_cycles(b, Variant::Base);
            let mut pct = Vec::new();
            for world in [World::Closed, World::Open] {
                let mut opts = OptOptions::rle_only(Level::SmFieldTypeRefs);
                opts.world = world;
                let c = self.sim_cycles(b, Variant::Optimized(opts));
                pct.push(100.0 * c / base_cycles);
            }
            RuntimeRow {
                name: b.name,
                pct,
                labels: vec!["RLE", "RLE Open"],
            }
        })
    }

    /// Static open-world alias-pair comparison (§4, around Figure 12).
    pub fn open_world_pairs(&self) -> Vec<(String, AliasPairCounts, AliasPairCounts)> {
        let all: Vec<&Benchmark> = suite().iter().collect();
        self.par_map(&all, |b| {
            let prog = self.program(b);
            let closed = self.compiled(b, Level::SmFieldTypeRefs, World::Closed);
            let open = self.compiled(b, Level::SmFieldTypeRefs, World::Open);
            (
                b.name.to_string(),
                census_alias_pairs(&prog, &closed).counts,
                census_alias_pairs(&prog, &open).counts,
            )
        })
    }
}

// The engine shares these across worker threads; keep the guarantee
// visible at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<Tbaa>();
    assert_send_sync::<CompiledAliasEngine>();
    assert_send_sync::<OptReport>();
    assert_send_sync::<ExecCounts>();
    assert_send_sync::<RedundancyTrace>();
    assert_send_sync::<Engine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str) -> &'static Benchmark {
        Benchmark::by_name(name).expect("exists")
    }

    #[test]
    fn program_cache_returns_same_arc() {
        let e = Engine::with_threads(1, 1);
        let b = bench("ktree");
        let p1 = e.program(b);
        let p2 = e.program(b);
        assert!(Arc::ptr_eq(&p1, &p2), "memo must share one compile");
        assert_eq!(e.compile_count(), 1);
    }

    #[test]
    fn analysis_cache_returns_same_arc_per_key() {
        let e = Engine::with_threads(1, 1);
        let b = bench("ktree");
        let a1 = e.analysis(b, Level::SmFieldTypeRefs, World::Closed);
        let a2 = e.analysis(b, Level::SmFieldTypeRefs, World::Closed);
        assert!(Arc::ptr_eq(&a1, &a2));
        let open = e.analysis(b, Level::SmFieldTypeRefs, World::Open);
        assert!(!Arc::ptr_eq(&a1, &open), "distinct keys are distinct entries");
        assert_eq!(e.stats().analyses_built, 2);
        assert_eq!(e.compile_count(), 1, "analyses share one compile");
    }

    #[test]
    fn optimized_cache_shares_across_consumers() {
        let e = Engine::with_threads(1, 1);
        let b = bench("format");
        let o1 = e.optimized(b, OptOptions::rle_only(Level::SmFieldTypeRefs));
        let o2 = e.optimized(b, OptOptions::rle_only(Level::SmFieldTypeRefs));
        assert!(Arc::ptr_eq(&o1, &o2));
        assert_eq!(e.stats().variants_built, 1);
    }

    #[test]
    fn parallel_compiles_each_program_exactly_once() {
        let e = Engine::with_threads(1, 8);
        let nonce: Vec<&Benchmark> = suite().iter().collect();
        // Hammer the same programs from 8 workers.
        let progs = e.par_map(&nonce, |b| e.program(b));
        assert_eq!(progs.len(), suite().len());
        assert_eq!(e.compile_count(), suite().len());
        // And the returned Arcs are the cached ones.
        for (b, p) in nonce.iter().zip(&progs) {
            assert!(Arc::ptr_eq(p, &e.program(b)));
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let e = Engine::with_threads(1, 4);
        let items: Vec<usize> = (0..64).collect();
        let out = e.par_map(&items, |&i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }
}
