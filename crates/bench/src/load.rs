//! Load-generation and differential-checking machinery for `tbaad`.
//!
//! This module is the reusable half of the `tbaa-loadgen` binary; the
//! differential soak test (`tests/server_differential.rs` in the facade
//! crate) and the server's own churn tests drive the same types, so the
//! harness and the test suite cannot drift apart.
//!
//! Three layers:
//!
//! * **Measurement** — [`LatencyHistogram`], a log-bucketed latency
//!   histogram with p50/p95/p99/max extraction, and [`VerbLatencies`],
//!   one histogram per protocol verb. Plain (non-atomic) so each client
//!   thread records locally and merges at join time.
//! * **Workload** — [`WorkloadGen`], a seeded generator of protocol
//!   request lines (mixed `load`/`alias`/`pairs`/`rle`/`stats` traffic
//!   over several sessions) paired with the [`ReqKind`] needed to check
//!   the reply. Same seed, same script: every run is reproducible.
//! * **Truth** — [`Oracle`] and [`DiffChecker`]. The oracle answers
//!   every query *in process* through the facade [`Pipeline`]
//!   (`tbaa_repro::Pipeline`): the naive tree-walking [`Tbaa`] analysis
//!   for `alias`/`pairs` and a full `Pipeline::optimize` run for `rle` —
//!   deliberately **not** the [`CompiledAliasEngine`] the daemon serves
//!   from, so a byte comparison spans both the server plumbing and the
//!   compiled-engine-vs-oracle equivalence (the Steensgaard discipline:
//!   a fast analysis is only trustworthy against a slower oracle). The
//!   checker reconstructs the exact reply bytes the daemon must produce
//!   and fails on any difference.
//!
//! [`Pipeline`]: tbaa_repro::Pipeline
//! [`Tbaa`]: tbaa::analysis::Tbaa
//! [`CompiledAliasEngine`]: tbaa::CompiledAliasEngine

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tbaa::analysis::{AliasAnalysis, Level, Tbaa};
use tbaa::memo::Memo;
use tbaa::{count_alias_pairs, World};
use tbaa_benchsuite::Benchmark;
use tbaa_ir::ir::Program;
use tbaa_ir::path::ApId;
use tbaa_ir::pretty;
use tbaa_opt::{OptOptions, RleStats};
use tbaa_repro::Pipeline;
use tbaa_server::json::{parse, Value};
use tbaa_server::proto::{self, ok_reply};
use tbaa_server::session::{content_hash, SessionKey};

use crate::rng::XorShift64;

// ---- measurement -----------------------------------------------------------

/// Number of log buckets: quarter-powers of two from 1µs up past 100s.
const HIST_BUCKETS: usize = 112;

/// A log-bucketed latency histogram (microseconds).
///
/// Buckets are quarter-powers of two (bound `i` is `2^(i/4)` µs, ~19%
/// apart), so p99 stays meaningful across six orders of magnitude
/// without a fixed bound list. Not thread-safe by design: record into a
/// per-thread instance and [`merge`](LatencyHistogram::merge) at the
/// end.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Upper bound of bucket `i`, in microseconds.
fn bucket_bound(i: usize) -> u64 {
    2f64.powf(i as f64 / 4.0).ceil() as u64
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency observation.
    pub fn observe(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (0..HIST_BUCKETS)
            .find(|&i| us <= bucket_bound(i))
            .unwrap_or(HIST_BUCKETS - 1);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The estimated `q`-quantile in microseconds (upper bucket bound;
    /// the exact max for the tail). 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Renders `{count, mean_us, p50_us, p95_us, p99_us, max_us}`.
    pub fn to_json(&self) -> Value<'static> {
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        };
        Value::object(vec![
            ("count", Value::Int(self.count as i64)),
            ("mean_us", Value::Float((mean * 10.0).round() / 10.0)),
            ("p50_us", Value::Int(self.quantile_us(0.50) as i64)),
            ("p95_us", Value::Int(self.quantile_us(0.95) as i64)),
            ("p99_us", Value::Int(self.quantile_us(0.99) as i64)),
            ("max_us", Value::Int(self.max_us as i64)),
        ])
    }
}

/// The protocol verbs the workload issues (reply-checkable subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `load`.
    Load,
    /// `alias`.
    Alias,
    /// `pairs`.
    Pairs,
    /// `rle`.
    Rle,
    /// `stats`.
    Stats,
}

impl Verb {
    /// All verbs, wire order.
    pub const ALL: [Verb; 5] = [Verb::Load, Verb::Alias, Verb::Pairs, Verb::Rle, Verb::Stats];

    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Load => "load",
            Verb::Alias => "alias",
            Verb::Pairs => "pairs",
            Verb::Rle => "rle",
            Verb::Stats => "stats",
        }
    }
}

/// One latency histogram per verb, merged like the histograms.
#[derive(Debug, Clone, Default)]
pub struct VerbLatencies {
    hists: [LatencyHistogram; 5],
}

impl VerbLatencies {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, verb: Verb) -> &mut LatencyHistogram {
        &mut self.hists[Verb::ALL.iter().position(|&v| v == verb).unwrap()]
    }

    /// Records one observation under `verb`.
    pub fn observe(&mut self, verb: Verb, d: Duration) {
        self.slot(verb).observe(d);
    }

    /// Folds another set into this one.
    pub fn merge(&mut self, other: &VerbLatencies) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Total observations across all verbs.
    pub fn total(&self) -> u64 {
        self.hists.iter().map(LatencyHistogram::count).sum()
    }

    /// Renders `{verb: {count, ..quantiles}}` (verbs with traffic only).
    pub fn to_json(&self) -> Value<'static> {
        Value::Object(
            Verb::ALL
                .iter()
                .zip(&self.hists)
                .filter(|(_, h)| h.count() > 0)
                .map(|(v, h)| (v.name().into(), h.to_json()))
                .collect(),
        )
    }
}

// ---- wire helpers ----------------------------------------------------------
//
// The transport layer used to live here; it is now the server crate's
// [`tbaa_server::net`] module, shared by `tbaad`, `tbaa-router`, and
// this harness. The old names are kept as aliases so harness code reads
// the same: note that [`Tick::Idle`] now carries whether partial bytes
// are buffered (`Tick::Idle(_)` in matches).

pub use tbaa_server::net::{Conn as Wire, LineReader as LineSource, Tick};

// ---- workload --------------------------------------------------------------

/// One loadable program content: a benchsuite entry or inline source.
#[derive(Debug, Clone)]
pub enum Content {
    /// A named benchsuite program at a workload scale.
    Bench {
        /// Program name.
        name: String,
        /// Workload scale.
        scale: u32,
    },
    /// Inline MiniM3 source.
    Source {
        /// The source text.
        text: String,
    },
}

impl Content {
    /// The server-side content identity this will load as.
    pub fn key(&self) -> SessionKey {
        match self {
            Content::Bench { name, scale } => SessionKey::Bench {
                name: name.clone(),
                scale: *scale,
            },
            Content::Source { text } => SessionKey::Source {
                hash: content_hash(text.as_bytes()),
            },
        }
    }

    /// The MiniM3 source text (benchsuite programs at their scale).
    pub fn source(&self) -> Result<String, String> {
        match self {
            Content::Bench { name, scale } => Benchmark::by_name(name)
                .map(|b| b.source_at_scale(*scale))
                .ok_or_else(|| format!("unknown benchmark `{name}`")),
            Content::Source { text } => Ok(text.clone()),
        }
    }

    /// The `load` request line for this content.
    pub fn load_line(&self) -> String {
        match self {
            Content::Bench { name, scale } => Value::object(vec![
                ("op", Value::Str("load".into())),
                ("bench", Value::Str(name.as_str().into())),
                ("scale", Value::Int(*scale as i64)),
            ])
            .encode(),
            Content::Source { text } => Value::object(vec![
                ("op", Value::Str("load".into())),
                ("source", Value::Str(text.as_str().into())),
            ])
            .encode(),
        }
    }
}

// ---- mutate workload -------------------------------------------------------

/// Number of procedures in the mutate program family (plus the module
/// body, which the incremental compiler treats as one more unit).
pub const MUTATE_PROCS: usize = 6;

/// One version of the edit-heavy workload program: a linked-cell module
/// with [`MUTATE_PROCS`] procedures, each carrying one tunable literal.
/// Bumping a single `tunings[i]` is a localized one-function edit;
/// bumping `generation` rewrites a `CONST` the module body reads, which
/// the incremental compiler must treat as a whole-program change.
fn mutate_source(generation: u64, tunings: &[u64; MUTATE_PROCS]) -> String {
    format!(
        "MODULE Mutate;

CONST
  Gen = {gen};

TYPE
  Cell = OBJECT
    val: INTEGER;
    next: Cell;
  END;
  Pair = OBJECT
    a: Cell;
    b: Cell;
  END;

VAR
  head: Cell;
  link: Pair;
  acc: INTEGER;

PROCEDURE Mk (v: INTEGER): Cell =
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c.val := v + {t0};
  c.next := head;
  RETURN c;
END Mk;

PROCEDURE Push (v: INTEGER) =
BEGIN
  head := Mk(v * {t1});
END Push;

PROCEDURE SumList (c: Cell): INTEGER =
VAR s: INTEGER;
BEGIN
  s := {t2};
  WHILE c # NIL DO
    s := s + c.val;
    c := c.next;
  END;
  RETURN s;
END SumList;

PROCEDURE Twist (p: Pair) =
VAR t: Cell;
BEGIN
  t := p.a;
  p.a := p.b;
  p.b := t;
  p.a.val := {t3};
END Twist;

PROCEDURE Weave (n: INTEGER) =
BEGIN
  FOR i := 1 TO n DO
    Push(i + {t4});
  END;
  link.a := head;
  link.b := Mk({t5});
END Weave;

PROCEDURE Settle (): INTEGER =
BEGIN
  IF link.a # NIL THEN
    RETURN link.a.val;
  END;
  RETURN 0;
END Settle;

BEGIN
  head := NIL;
  link := NEW(Pair);
  Weave(Gen MOD 7 + 3);
  Twist(link);
  acc := SumList(head) + Settle();
END Mutate.
",
        gen = generation,
        t0 = tunings[0],
        t1 = tunings[1],
        t2 = tunings[2],
        t3 = tunings[3],
        t4 = tunings[4],
        t5 = tunings[5],
    )
}

/// A deterministic corpus of superseding program versions for the
/// `--mutate` workload: version 0 is the base, and each later version
/// applies either a localized single-procedure edit (the common case —
/// the incremental compiler should replay every other function from
/// cache) or, roughly one version in five, a whole-program rewrite (a
/// `CONST` bump the module body depends on — every unit must re-lower).
///
/// The versions are pairwise distinct sources, so each `load` supersedes
/// the previous one under a fresh content key and the standard
/// [`Oracle`]/[`DiffChecker`] machinery verifies byte-identical replies
/// per version with no special cases.
pub fn mutate_contents(seed: u64, versions: usize) -> Vec<Content> {
    let mut rng = XorShift64::new(seed ^ 0x6d75_7461_7465); // "mutate"
    let mut generation = 1u64;
    let mut tunings = [1u64; MUTATE_PROCS];
    let mut out = Vec::with_capacity(versions.max(1));
    out.push(Content::Source {
        text: mutate_source(generation, &tunings),
    });
    for _ in 1..versions.max(1) {
        if rng.chance(1, 5) {
            generation += 1 + rng.below(9); // whole-program rewrite
        } else {
            tunings[rng.index(MUTATE_PROCS)] += 1; // one-function edit
        }
        out.push(Content::Source {
            text: mutate_source(generation, &tunings),
        });
    }
    out
}

/// What a generated request was, with everything needed to verify the
/// reply against the oracle.
#[derive(Debug, Clone)]
pub enum ReqKind {
    /// A `load` of the given content.
    Load {
        /// Content identity.
        key: SessionKey,
    },
    /// An `alias` batch.
    Alias {
        /// Content identity of the session.
        key: SessionKey,
        /// Session id the request named.
        sid: String,
        /// Resolved level (after wire defaults).
        level: Level,
        /// Resolved world.
        world: World,
        /// The queried access-path pairs.
        pairs: Vec<(String, String)>,
    },
    /// A `pairs` census.
    Pairs {
        /// Content identity of the session.
        key: SessionKey,
        /// Session id the request named.
        sid: String,
        /// Resolved level.
        level: Level,
        /// Resolved world.
        world: World,
    },
    /// An `rle` run.
    Rle {
        /// Content identity of the session.
        key: SessionKey,
        /// Session id the request named.
        sid: String,
        /// Resolved level.
        level: Level,
        /// Resolved world.
        world: World,
    },
    /// A `stats` snapshot (schema-checked, not byte-checked).
    Stats,
}

impl ReqKind {
    /// The verb this counts under.
    pub fn verb(&self) -> Verb {
        match self {
            ReqKind::Load { .. } => Verb::Load,
            ReqKind::Alias { .. } => Verb::Alias,
            ReqKind::Pairs { .. } => Verb::Pairs,
            ReqKind::Rle { .. } => Verb::Rle,
            ReqKind::Stats => Verb::Stats,
        }
    }
}

/// One generated request: the wire line plus its checkable identity.
#[derive(Debug, Clone)]
pub struct GenReq {
    /// The request line (no newline).
    pub line: String,
    /// What it was.
    pub kind: ReqKind,
}

/// A seeded generator of mixed protocol traffic over several contents.
///
/// The generator starts by loading contents (it cannot query before it
/// holds a session id) and then issues weighted mixed traffic. Levels
/// and worlds are chosen randomly, in randomly chosen wire spellings,
/// and are sometimes omitted so the server-side defaults get exercised
/// too.
pub struct WorkloadGen {
    rng: XorShift64,
    contents: Arc<Vec<Content>>,
    /// Sessions learned from load replies: `(sid, content index)`.
    sessions: Vec<(String, usize)>,
    /// Next content to load (round-robin so every content gets a session).
    next_load: usize,
}

/// Verb weights out of 100: load, alias, pairs, rle, stats.
const WEIGHTS: [(Verb, u64); 5] = [
    (Verb::Load, 8),
    (Verb::Alias, 57),
    (Verb::Pairs, 12),
    (Verb::Rle, 8),
    (Verb::Stats, 15),
];

impl WorkloadGen {
    /// A generator over `contents`, deterministic per `seed`.
    pub fn new(seed: u64, contents: Arc<Vec<Content>>) -> Self {
        assert!(!contents.is_empty(), "workload needs at least one content");
        WorkloadGen {
            rng: XorShift64::new(seed),
            contents,
            sessions: Vec::new(),
            next_load: 0,
        }
    }

    /// Registers a session id learned from a `load` reply so subsequent
    /// queries can target it.
    pub fn observe_load(&mut self, key: &SessionKey, sid: &str) {
        let idx = self
            .contents
            .iter()
            .position(|c| &c.key() == key)
            .expect("load reply for an unknown content");
        if !self.sessions.iter().any(|(s, i)| s == sid && *i == idx) {
            self.sessions.push((sid.to_string(), idx));
        }
    }

    fn pick_level_world(&mut self) -> (Level, World, Option<&'static str>, Option<&'static str>) {
        // Several wire spellings per level; None = rely on the default.
        const LEVELS: [(&str, Level); 6] = [
            ("typedecl", Level::TypeDecl),
            ("TypeDecl", Level::TypeDecl),
            ("fields", Level::FieldTypeDecl),
            ("FieldTypeDecl", Level::FieldTypeDecl),
            ("merges", Level::SmFieldTypeRefs),
            ("SMFieldTypeRefs", Level::SmFieldTypeRefs),
        ];
        let (level_str, level) = if self.rng.chance(1, 4) {
            (None, proto::DEFAULT_LEVEL)
        } else {
            let (s, l) = *self.rng.pick(&LEVELS);
            (Some(s), l)
        };
        let (world_str, world) = if self.rng.chance(1, 3) {
            (None, proto::DEFAULT_WORLD)
        } else if self.rng.chance(1, 2) {
            (Some("closed"), World::Closed)
        } else {
            (Some("open"), World::Open)
        };
        (level, world, level_str, world_str)
    }

    fn query_line(
        op: &str,
        sid: &str,
        level: Option<&str>,
        world: Option<&str>,
        extra: Vec<(&str, Value)>,
    ) -> String {
        let mut fields = vec![
            ("op", Value::Str(op.into())),
            ("session", Value::Str(sid.into())),
        ];
        if let Some(l) = level {
            fields.push(("level", Value::Str(l.into())));
        }
        if let Some(w) = world {
            fields.push(("world", Value::Str(w.into())));
        }
        fields.extend(extra);
        Value::object(fields).encode()
    }

    /// Generates the next request. `oracle` supplies the addressable
    /// paths for alias queries.
    pub fn next(&mut self, oracle: &Oracle) -> GenReq {
        // Load each content once before mixing traffic.
        if self.sessions.len() < self.contents.len() && self.next_load < self.contents.len() {
            let content = &self.contents[self.next_load];
            self.next_load += 1;
            return GenReq {
                line: content.load_line(),
                kind: ReqKind::Load { key: content.key() },
            };
        }
        let roll = self.rng.below(100);
        let mut acc = 0;
        let mut verb = Verb::Alias;
        for (v, w) in WEIGHTS {
            acc += w;
            if roll < acc {
                verb = v;
                break;
            }
        }
        if self.sessions.is_empty() {
            verb = Verb::Load;
        }
        match verb {
            Verb::Load => {
                let content = self.rng.pick(&self.contents).clone();
                GenReq {
                    line: content.load_line(),
                    kind: ReqKind::Load { key: content.key() },
                }
            }
            Verb::Stats => GenReq {
                line: r#"{"op":"stats"}"#.to_string(),
                kind: ReqKind::Stats,
            },
            Verb::Alias => {
                let (sid, idx) = self.rng.pick(&self.sessions).clone();
                let key = self.contents[idx].key();
                let (level, world, level_str, world_str) = self.pick_level_world();
                let paths = oracle.paths(&key);
                let n_pairs = 1 + self.rng.index(4);
                let pairs: Vec<(String, String)> = (0..n_pairs)
                    .map(|_| {
                        (
                            self.rng.pick(&paths).clone(),
                            self.rng.pick(&paths).clone(),
                        )
                    })
                    .collect();
                let line = Self::query_line(
                    "alias",
                    &sid,
                    level_str,
                    world_str,
                    vec![(
                        "pairs",
                        Value::Array(
                            pairs
                                .iter()
                                .map(|(a, b)| {
                                    Value::Array(vec![
                                        Value::Str(a.as_str().into()),
                                        Value::Str(b.as_str().into()),
                                    ])
                                })
                                .collect(),
                        ),
                    )],
                );
                GenReq {
                    line,
                    kind: ReqKind::Alias {
                        key,
                        sid,
                        level,
                        world,
                        pairs,
                    },
                }
            }
            Verb::Pairs => {
                let (sid, idx) = self.rng.pick(&self.sessions).clone();
                let key = self.contents[idx].key();
                let (level, world, level_str, world_str) = self.pick_level_world();
                GenReq {
                    line: Self::query_line("pairs", &sid, level_str, world_str, vec![]),
                    kind: ReqKind::Pairs {
                        key,
                        sid,
                        level,
                        world,
                    },
                }
            }
            Verb::Rle => {
                let (sid, idx) = self.rng.pick(&self.sessions).clone();
                let key = self.contents[idx].key();
                let (level, world, level_str, world_str) = self.pick_level_world();
                GenReq {
                    line: Self::query_line("rle", &sid, level_str, world_str, vec![]),
                    kind: ReqKind::Rle {
                        key,
                        sid,
                        level,
                        world,
                    },
                }
            }
        }
    }
}

// ---- oracle ----------------------------------------------------------------

/// Load-reply facts the oracle can predict.
struct ProgramFacts {
    funcs: usize,
    instrs: usize,
    heap_refs: usize,
    /// Addressable access paths, sorted (the generator draws from this).
    paths: Vec<String>,
}

/// A compiled program plus the *naive* analysis at one `(level, world)`.
struct Analyzed {
    program: Program,
    analysis: Tbaa,
    path_ids: HashMap<String, ApId>,
}

/// The in-process ground truth, built entirely through the facade
/// [`Pipeline`](tbaa_repro::Pipeline).
///
/// Everything is memoized per content / `(content, level, world)`, so a
/// soak of millions of requests compiles each configuration once — the
/// same compile-once discipline as the daemon, arrived at independently.
pub struct Oracle {
    sources: HashMap<SessionKey, String>,
    facts: Memo<SessionKey, ProgramFacts>,
    analyzed: Memo<(SessionKey, Level, World), Analyzed>,
    rle: Memo<(SessionKey, Level, World), RleStats>,
}

impl Oracle {
    /// An oracle over the given contents. Panics on unknown benchmark
    /// names (the workload would be meaningless).
    pub fn new(contents: &[Content]) -> Self {
        let mut sources = HashMap::new();
        for c in contents {
            sources.insert(c.key(), c.source().expect("workload content resolves"));
        }
        Oracle {
            sources,
            facts: Memo::new(),
            analyzed: Memo::new(),
            rle: Memo::new(),
        }
    }

    fn source(&self, key: &SessionKey) -> &str {
        self.sources
            .get(key)
            .unwrap_or_else(|| panic!("oracle was not built over {}", key.display()))
    }

    fn facts(&self, key: &SessionKey) -> Arc<ProgramFacts> {
        self.facts.get_or_build(key.clone(), || {
            let result = Pipeline::new(self.source(key))
                .run()
                .expect("workload content compiles");
            let mut paths: Vec<String> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (_f, ap, _is_store) in result.program.heap_ref_sites() {
                let p = pretty::access_path(&result.program, ap);
                if seen.insert(p.clone()) {
                    paths.push(p);
                }
            }
            paths.sort_unstable();
            ProgramFacts {
                funcs: result.program.funcs.len(),
                instrs: result.program.instr_count(),
                heap_refs: result.program.heap_ref_sites().len(),
                paths,
            }
        })
    }

    fn analyzed(&self, key: &SessionKey, level: Level, world: World) -> Arc<Analyzed> {
        self.analyzed
            .get_or_build((key.clone(), level, world), || {
                let result = Pipeline::new(self.source(key))
                    .level(level)
                    .world(world)
                    .run()
                    .expect("workload content compiles");
                let mut path_ids = HashMap::new();
                for (_f, ap, _is_store) in result.program.heap_ref_sites() {
                    path_ids
                        .entry(pretty::access_path(&result.program, ap))
                        .or_insert(ap);
                }
                Analyzed {
                    program: result.program,
                    analysis: result.analysis,
                    path_ids,
                }
            })
    }

    fn rle_stats(&self, key: &SessionKey, level: Level, world: World) -> Arc<RleStats> {
        self.rle.get_or_build((key.clone(), level, world), || {
            let result = Pipeline::new(self.source(key))
                .level(level)
                .world(world)
                .optimize(OptOptions::builder().rle(true).build())
                .run()
                .expect("workload content compiles");
            result.report.rle
        })
    }

    /// The addressable access paths of a content, sorted.
    pub fn paths(&self, key: &SessionKey) -> Vec<String> {
        self.facts(key).paths.clone()
    }

    /// The naive-analysis alias verdicts for a pair batch.
    pub fn alias_verdicts(
        &self,
        key: &SessionKey,
        level: Level,
        world: World,
        pairs: &[(String, String)],
    ) -> Vec<bool> {
        let a = self.analyzed(key, level, world);
        pairs
            .iter()
            .map(|(p, q)| {
                let (Some(&x), Some(&y)) = (a.path_ids.get(p), a.path_ids.get(q)) else {
                    panic!("workload generated an unknown path: {p} / {q}");
                };
                a.analysis.may_alias(&a.program.aps, x, y)
            })
            .collect()
    }

    /// The exact reply bytes the daemon must produce for an `alias`.
    pub fn expected_alias_reply(
        &self,
        sid: &str,
        key: &SessionKey,
        level: Level,
        world: World,
        pairs: &[(String, String)],
    ) -> String {
        let results = self
            .alias_verdicts(key, level, world, pairs)
            .into_iter()
            .map(Value::Bool)
            .collect();
        ok_reply(vec![
            ("session", Value::Str(sid.into())),
            ("level", Value::Str(proto::level_name(level).into())),
            ("world", Value::Str(proto::world_name(world).into())),
            ("results", Value::Array(results)),
        ])
        .encode()
    }

    /// The exact reply bytes the daemon must produce for a `pairs`.
    pub fn expected_pairs_reply(
        &self,
        sid: &str,
        key: &SessionKey,
        level: Level,
        world: World,
    ) -> String {
        let a = self.analyzed(key, level, world);
        let counts = count_alias_pairs(&a.program, &a.analysis);
        ok_reply(vec![
            ("session", Value::Str(sid.into())),
            ("level", Value::Str(proto::level_name(level).into())),
            ("world", Value::Str(proto::world_name(world).into())),
            ("references", Value::Int(counts.references as i64)),
            ("local_pairs", Value::Int(counts.local_pairs as i64)),
            ("global_pairs", Value::Int(counts.global_pairs as i64)),
        ])
        .encode()
    }

    /// The exact reply bytes the daemon must produce for an `rle`.
    pub fn expected_rle_reply(
        &self,
        sid: &str,
        key: &SessionKey,
        level: Level,
        world: World,
    ) -> String {
        let stats = self.rle_stats(key, level, world);
        ok_reply(vec![
            ("session", Value::Str(sid.into())),
            ("level", Value::Str(proto::level_name(level).into())),
            ("world", Value::Str(proto::world_name(world).into())),
            ("hoisted", Value::Int(stats.hoisted as i64)),
            ("eliminated", Value::Int(stats.eliminated as i64)),
            ("removed", Value::Int(stats.removed() as i64)),
        ])
        .encode()
    }
}

// ---- differential checker --------------------------------------------------

/// How a checked reply came out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Reply matched the oracle.
    Ok,
    /// A `load` reply matched; the session id to query with.
    Loaded {
        /// The session id from the reply.
        sid: String,
    },
    /// Reply diverged from the oracle (details recorded).
    Mismatch,
}

/// Compares daemon replies byte-for-byte against [`Oracle`] answers.
///
/// Shared across client threads (`Arc<DiffChecker>`): counters are
/// atomic, the first few mismatch details are kept for the report.
pub struct DiffChecker {
    oracle: Oracle,
    /// sid → content identity, learned from load replies. A sid must
    /// never denote two different contents.
    sids: Mutex<HashMap<String, SessionKey>>,
    checked: AtomicU64,
    mismatches: AtomicU64,
    details: Mutex<Vec<String>>,
}

/// How many mismatch details to keep verbatim.
const DETAIL_CAP: usize = 8;

impl DiffChecker {
    /// A checker over the given contents.
    pub fn new(contents: &[Content]) -> Self {
        DiffChecker {
            oracle: Oracle::new(contents),
            sids: Mutex::new(HashMap::new()),
            checked: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            details: Mutex::new(Vec::new()),
        }
    }

    /// The oracle (for path lookups during generation).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Replies checked so far.
    pub fn checked(&self) -> u64 {
        self.checked.load(Ordering::Relaxed)
    }

    /// Byte mismatches observed so far.
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// The first few mismatch details.
    pub fn details(&self) -> Vec<String> {
        self.details.lock().expect("details poisoned").clone()
    }

    /// Every `(sid, key)` binding learned from load replies so far.
    /// Crash-restart harnesses replay these after a recovery: a daemon
    /// that restored its journal must answer a re-`load` of `key` with
    /// one of the sids previously learned for it, never a stranger's.
    pub fn known_sids(&self) -> Vec<(String, SessionKey)> {
        self.sids
            .lock()
            .expect("sids poisoned")
            .iter()
            .map(|(sid, key)| (sid.clone(), key.clone()))
            .collect()
    }

    fn fail(&self, detail: String) -> CheckOutcome {
        self.mismatches.fetch_add(1, Ordering::Relaxed);
        let mut d = self.details.lock().expect("details poisoned");
        if d.len() < DETAIL_CAP {
            d.push(detail);
        }
        CheckOutcome::Mismatch
    }

    /// Checks one reply line against the oracle.
    pub fn check(&self, kind: &ReqKind, raw: &str) -> CheckOutcome {
        self.checked.fetch_add(1, Ordering::Relaxed);
        match kind {
            ReqKind::Load { key } => self.check_load(key, raw),
            ReqKind::Alias {
                key,
                sid,
                level,
                world,
                pairs,
            } => {
                let want = self
                    .oracle
                    .expected_alias_reply(sid, key, *level, *world, pairs);
                if raw == want {
                    CheckOutcome::Ok
                } else {
                    self.fail(format!("alias reply diverged:\n  got  {raw}\n  want {want}"))
                }
            }
            ReqKind::Pairs {
                key,
                sid,
                level,
                world,
            } => {
                let want = self.oracle.expected_pairs_reply(sid, key, *level, *world);
                if raw == want {
                    CheckOutcome::Ok
                } else {
                    self.fail(format!("pairs reply diverged:\n  got  {raw}\n  want {want}"))
                }
            }
            ReqKind::Rle {
                key,
                sid,
                level,
                world,
            } => {
                let want = self.oracle.expected_rle_reply(sid, key, *level, *world);
                if raw == want {
                    CheckOutcome::Ok
                } else {
                    self.fail(format!("rle reply diverged:\n  got  {raw}\n  want {want}"))
                }
            }
            ReqKind::Stats => self.check_stats(raw),
        }
    }

    /// `load` replies embed nondeterministic fields (`session` numbering
    /// depends on global load order, `cached` on who got there first),
    /// so they are checked field-by-field against the oracle's compile
    /// instead of byte-for-byte.
    fn check_load(&self, key: &SessionKey, raw: &str) -> CheckOutcome {
        let v = match parse(raw) {
            Ok(v) => v,
            Err(e) => return self.fail(format!("load reply is not JSON ({e}): {raw}")),
        };
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            return self.fail(format!("load of {} failed: {raw}", key.display()));
        }
        let facts = self.oracle.facts(key);
        let sid = v
            .get("session")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        if sid.is_empty() {
            return self.fail(format!("load reply without session id: {raw}"));
        }
        if v.get("key").and_then(Value::as_str) != Some(&key.display()) {
            return self.fail(format!(
                "load reply key mismatch (want {}): {raw}",
                key.display()
            ));
        }
        for (field, want) in [
            ("funcs", facts.funcs as i64),
            ("instrs", facts.instrs as i64),
            ("heap_refs", facts.heap_refs as i64),
        ] {
            if v.get(field).and_then(Value::as_i64) != Some(want) {
                return self.fail(format!(
                    "load reply `{field}` diverged (oracle says {want}): {raw}"
                ));
            }
        }
        if v.get("cached").and_then(Value::as_bool).is_none() {
            return self.fail(format!("load reply without `cached`: {raw}"));
        }
        // A session id must be stable per content: two different
        // contents answering with the same sid means the store served a
        // stale or crossed session.
        let crossed = {
            let mut sids = self.sids.lock().expect("sids poisoned");
            match sids.get(&sid) {
                Some(prev) if prev != key => Some(prev.display()),
                _ => {
                    sids.insert(sid.clone(), key.clone());
                    None
                }
            }
        };
        if let Some(prev) = crossed {
            return self.fail(format!(
                "session id {sid} served for both {prev} and {}",
                key.display()
            ));
        }
        CheckOutcome::Loaded { sid }
    }

    /// `stats` replies are nondeterministic; validate shape, not bytes.
    fn check_stats(&self, raw: &str) -> CheckOutcome {
        let v = match parse(raw) {
            Ok(v) => v,
            Err(e) => return self.fail(format!("stats reply is not JSON ({e}): {raw}")),
        };
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            return self.fail(format!("stats failed: {raw}"));
        }
        let has_counters = v
            .get("stats")
            .and_then(|s| s.get("counters"))
            .map(|c| matches!(c, Value::Object(_)))
            .unwrap_or(false);
        let has_sessions = v
            .get("sessions")
            .and_then(|s| s.get("live"))
            .and_then(Value::as_i64)
            .is_some();
        if !has_counters || !has_sessions {
            return self.fail(format!("stats reply missing counters/sessions: {raw}"));
        }
        CheckOutcome::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 40, 80, 5000, 100, 60, 30, 15, 9] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let (p50, p95, p99) = (
            h.quantile_us(0.50),
            h.quantile_us(0.95),
            h.quantile_us(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.quantile_us(1.0), 5000, "tail is exact via max");
        let mut other = LatencyHistogram::new();
        other.observe(Duration::from_micros(7000));
        h.merge(&other);
        assert_eq!(h.count(), 11);
        assert_eq!(h.quantile_us(1.0), 7000);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let contents = Arc::new(vec![Content::Bench {
            name: "ktree".into(),
            scale: 1,
        }]);
        let oracle = Oracle::new(&contents);
        let run = |seed| {
            let mut g = WorkloadGen::new(seed, contents.clone());
            let mut lines = Vec::new();
            for i in 0..20 {
                let req = g.next(&oracle);
                if let ReqKind::Load { key } = &req.kind {
                    let sid = format!("s{}", i % 2 + 1);
                    g.observe_load(key, &sid);
                }
                lines.push(req.line);
            }
            lines
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds take different paths");
    }

    #[test]
    fn mutate_corpus_is_distinct_deterministic_and_compiles() {
        let contents = mutate_contents(7, 10);
        assert_eq!(contents.len(), 10);
        let keys: std::collections::HashSet<String> =
            contents.iter().map(|c| c.key().display()).collect();
        assert_eq!(keys.len(), 10, "every version is a distinct content");
        let again = mutate_contents(7, 10);
        for (a, b) in contents.iter().zip(&again) {
            assert_eq!(a.source().unwrap(), b.source().unwrap(), "seeded = reproducible");
        }
        // The oracle machinery must accept every version: compile each
        // one and demand addressable paths for the alias generator.
        let oracle = Oracle::new(&contents);
        for c in &contents {
            assert!(
                !oracle.paths(&c.key()).is_empty(),
                "mutate program exposes heap paths"
            );
        }
    }

    #[test]
    fn mutate_corpus_exercises_the_incremental_path() {
        use tbaa_incr::IncrCompiler;
        let contents = mutate_contents(42, 12);
        let incr = IncrCompiler::new();
        let mut hits = 0;
        let mut full_misses = 0;
        for c in &contents {
            let (program, report) = incr.compile(&c.source().unwrap());
            assert!(program.is_ok(), "every mutate version compiles");
            hits += report.func_hits;
            if report.func_hits == 0 {
                full_misses += 1;
            } else {
                // A localized edit replays all but the edited unit.
                assert_eq!(
                    report.func_misses, 1,
                    "single-function edit re-lowers exactly one unit"
                );
            }
        }
        assert!(hits > 0, "superseding versions reuse cached units");
        assert!(
            full_misses >= 1,
            "the corpus includes at least the cold base version"
        );
    }

    #[test]
    fn checker_accepts_oracle_built_replies_and_rejects_flips() {
        let contents = vec![Content::Bench {
            name: "ktree".into(),
            scale: 1,
        }];
        let checker = DiffChecker::new(&contents);
        let key = contents[0].key();
        let paths = checker.oracle().paths(&key);
        let pairs = vec![(paths[0].clone(), paths[0].clone())];
        let kind = ReqKind::Alias {
            key: key.clone(),
            sid: "s1".into(),
            level: Level::SmFieldTypeRefs,
            world: World::Closed,
            pairs: pairs.clone(),
        };
        let good =
            checker
                .oracle()
                .expected_alias_reply("s1", &key, Level::SmFieldTypeRefs, World::Closed, &pairs);
        assert_eq!(checker.check(&kind, &good), CheckOutcome::Ok);
        // An identical path must alias itself, so the good reply says
        // true; flip it and the checker must object.
        let bad = good.replace("true", "false");
        assert_eq!(checker.check(&kind, &bad), CheckOutcome::Mismatch);
        assert_eq!(checker.mismatches(), 1);
        assert_eq!(checker.checked(), 2);
        assert!(!checker.details().is_empty());
    }
}
