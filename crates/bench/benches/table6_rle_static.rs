//! Table 6 — redundant loads removed statically. Prints the recomputed
//! table once and times the RLE pass itself at each analysis level, plus
//! the copy-propagation ablation the paper's optimizer lacked.

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa::analysis::{Level, Tbaa};
use tbaa::World;
use tbaa_opt::rle::run_rle;

fn bench(c: &mut Criterion) {
    println!("{}", tbaa_bench::render_table6(&tbaa_bench::table6(1)));
    // Ablations: the optimizer extensions the paper discusses as missing
    // or future work, plus the second client.
    println!("Ablations at SMFieldTypeRefs (loads removed; DSE column = stores removed)");
    for b in tbaa_benchsuite::suite().iter().filter(|b| !b.interactive) {
        let analysis_of =
            |p: &tbaa_ir::Program| Tbaa::build(p, Level::SmFieldTypeRefs, World::Closed);
        let plain = {
            let mut p = b.compile(1).unwrap();
            let a = analysis_of(&p);
            run_rle(&mut p, &a).removed()
        };
        let with_cp = {
            let mut p = b.compile(1).unwrap();
            let a = analysis_of(&p);
            tbaa_opt::copyprop::propagate_access_paths(&mut p, &a);
            run_rle(&mut p, &a).removed()
        };
        let with_pre = {
            let mut p = b.compile(1).unwrap();
            let a = analysis_of(&p);
            let (rle, _) = tbaa_opt::pre::run_rle_with_pre(&mut p, &a);
            rle.removed()
        };
        let dse = {
            let mut p = b.compile(1).unwrap();
            let a = analysis_of(&p);
            tbaa_opt::dse::run_dse(&mut p, &a).removed
        };
        println!(
            "  {:<13} rle={plain:<4} +copyprop={with_cp:<4} +pre={with_pre:<4} dse={dse}",
            b.name
        );
    }
    println!();

    let mut g = c.benchmark_group("table6_rle_static");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("m3cg").unwrap();
    for level in Level::ALL {
        g.bench_function(format!("rle/m3cg/{level}"), |bench| {
            bench.iter(|| {
                let mut prog = b.compile(1).unwrap();
                let analysis = Tbaa::build(&prog, level, World::Closed);
                run_rle(&mut prog, &analysis)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
