//! Figure 11 — cumulative impact of RLE and Minv+Inlining. Prints the
//! recomputed series once and times the full optimization pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa::analysis::Level;
use tbaa_opt::{optimize, OptOptions};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        tbaa_bench::render_runtime(
            "Figure 11: Cumulative Impact of Optimizations (percent of original time)",
            &tbaa_bench::fig11(1)
        )
    );
    let mut g = c.benchmark_group("fig11_cumulative");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("slisp").unwrap();
    g.bench_function("optimize-full/slisp", |bench| {
        bench.iter(|| {
            let mut prog = b.compile(1).unwrap();
            optimize(&mut prog, &OptOptions::full(Level::SmFieldTypeRefs))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
