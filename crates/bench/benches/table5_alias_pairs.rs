//! Table 5 — static alias pairs. Prints the recomputed table once and
//! times the O(e²) pair enumeration under each analysis level (the cost
//! §2.5 distinguishes from building the analysis itself).

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa::analysis::{Level, Tbaa};
use tbaa::{count_alias_pairs, World};

fn bench(c: &mut Criterion) {
    println!("{}", tbaa_bench::render_table5(&tbaa_bench::table5(1)));
    // Related-work comparison (§5): instruction-based Steensgaard vs TBAA.
    println!("Steensgaard (field-insensitive unification) global pairs vs TBAA:");
    for b in tbaa_benchsuite::suite() {
        let prog = b.compile(1).unwrap();
        let st = tbaa::Steensgaard::build(&prog);
        let ftd = Tbaa::build(&prog, Level::FieldTypeDecl, World::Closed);
        let st_pairs = count_alias_pairs(&prog, &st);
        let ftd_pairs = count_alias_pairs(&prog, &ftd);
        println!(
            "  {:<13} steensgaard={:<6} fieldtypedecl={}",
            b.name, st_pairs.global_pairs, ftd_pairs.global_pairs
        );
    }
    println!();
    let mut g = c.benchmark_group("table5_alias_pairs");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("m3cg").unwrap();
    let prog = b.compile(1).unwrap();
    for level in Level::ALL {
        let analysis = Tbaa::build(&prog, level, World::Closed);
        g.bench_function(format!("pairs/m3cg/{level}"), |bench| {
            bench.iter(|| count_alias_pairs(&prog, &analysis))
        });
    }
    g.bench_function("steensgaard_build/m3cg", |bench| {
        bench.iter(|| tbaa::Steensgaard::build(&prog))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
