//! Figures 9 and 10 — the limit study. Prints both recomputed series
//! once and times the ATOM-style redundancy trace plus the category
//! classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa::analysis::{Level, Tbaa};
use tbaa::World;
use tbaa_sim::interp::{run, RunConfig};
use tbaa_sim::{classify_remaining, RedundancyTrace};

fn bench(c: &mut Criterion) {
    println!("{}", tbaa_bench::render_fig9(&tbaa_bench::fig9(1)));
    println!("{}", tbaa_bench::render_fig10(&tbaa_bench::fig10(1)));
    let mut g = c.benchmark_group("fig9_fig10_limit");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("pp").unwrap();
    let mut prog = b.compile(1).unwrap();
    let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
    tbaa_opt::rle::run_rle(&mut prog, &analysis);
    g.bench_function("trace/pp", |bench| {
        bench.iter(|| {
            let mut t = RedundancyTrace::new();
            run(&prog, &mut t, RunConfig::default()).expect("runs");
            t
        })
    });
    let mut trace = RedundancyTrace::new();
    run(&prog, &mut trace, RunConfig::default()).expect("runs");
    g.bench_function("classify/pp", |bench| {
        bench.iter(|| classify_remaining(&mut prog, &analysis, &trace))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
