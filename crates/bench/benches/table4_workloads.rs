//! Table 4 — benchmark description. Prints the recomputed table once and
//! times whole-program interpretation (the workload generator behind
//! every dynamic number).

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa_sim::interp::{run, NullHook, RunConfig};

fn bench(c: &mut Criterion) {
    println!("{}", tbaa_bench::render_table4(&tbaa_bench::table4(1)));
    let mut g = c.benchmark_group("table4_workloads");
    g.sample_size(10);
    for name in ["format", "ktree", "slisp"] {
        let b = tbaa_benchsuite::Benchmark::by_name(name).unwrap();
        let prog = b.compile(1).unwrap();
        g.bench_function(format!("interpret/{name}"), |bench| {
            bench.iter(|| run(&prog, &mut NullHook, RunConfig::default()).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
