//! Figure 12 — open- vs closed-world analysis. Prints the recomputed
//! series once and times building the analysis under each world
//! assumption.

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa::analysis::{Level, Tbaa};
use tbaa::World;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        tbaa_bench::render_runtime(
            "Figure 12: Open and Closed World Assumptions (percent of original time)",
            &tbaa_bench::fig12(1)
        )
    );
    println!("Static open-world comparison (SMFieldTypeRefs, global pairs):");
    for (name, closed, open) in tbaa_bench::open_world_pairs(1) {
        println!(
            "  {name:<13} closed={} open={}",
            closed.global_pairs, open.global_pairs
        );
    }
    println!();
    let mut g = c.benchmark_group("fig12_openworld");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("m3cg").unwrap();
    let prog = b.compile(1).unwrap();
    for (label, world) in [("closed", World::Closed), ("open", World::Open)] {
        g.bench_function(format!("build/m3cg/{label}"), |bench| {
            bench.iter(|| Tbaa::build(&prog, Level::SmFieldTypeRefs, world))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
