//! Figure 8 — simulated run time of RLE per analysis level. Prints the
//! recomputed series once and times the cache-simulating execution.

use criterion::{criterion_group, criterion_main, Criterion};
use tbaa_sim::interp::RunConfig;
use tbaa_sim::simulate;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        tbaa_bench::render_runtime(
            "Figure 8: Impact of RLE (percent of original running time)",
            &tbaa_bench::fig8(1)
        )
    );
    let mut g = c.benchmark_group("fig8_rle_runtime");
    g.sample_size(10);
    let b = tbaa_benchsuite::Benchmark::by_name("write-pickle").unwrap();
    let prog = b.compile(1).unwrap();
    g.bench_function("simulate/write-pickle", |bench| {
        bench.iter(|| simulate(&prog, RunConfig::default()).expect("runs"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
