//! §2.5 — TBAA's complexity claim: building the analysis is
//! O(instructions · types) bit-vector steps, asymptotically as fast as
//! the fastest existing alias analysis (Steensgaard). This bench builds
//! synthetic programs with growing numbers of types and pointer
//! assignments and times `Tbaa::build` at each size; the reported times
//! should grow roughly linearly in program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tbaa::analysis::{Level, Tbaa};
use tbaa::World;

/// Generates a module with `n` object types in a chain of small
/// hierarchies, one global per type, and ~2·n pointer assignments.
fn synthetic_source(n: usize) -> String {
    let mut s = String::from("MODULE Synth;\nTYPE\n  T0 = OBJECT f: INTEGER; g: T0; END;\n");
    for i in 1..n {
        if i % 3 == 0 {
            s.push_str(&format!("  T{i} = T{} OBJECT h{i}: INTEGER; END;\n", i - 1));
        } else {
            s.push_str(&format!(
                "  T{i} = OBJECT f{i}: INTEGER; p{i}: T{}; END;\n",
                i - 1
            ));
        }
    }
    s.push_str("VAR\n");
    for i in 0..n {
        s.push_str(&format!("  v{i}: T{i};\n"));
    }
    s.push_str("BEGIN\n");
    for i in 0..n {
        s.push_str(&format!("  v{i} := NEW(T{i});\n"));
    }
    for i in 1..n {
        if i % 3 == 0 {
            // supertype assignment: a genuine merge
            s.push_str(&format!("  v{} := v{i};\n", i - 1));
        } else {
            s.push_str(&format!("  v{i}.p{i} := v{};\n", i - 1));
        }
    }
    s.push_str("END Synth.\n");
    s
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis_speed");
    g.sample_size(10);
    println!("analysis_speed: Tbaa::build cost vs program size (expect ~linear)");
    for n in [50usize, 100, 200, 400] {
        let src = synthetic_source(n);
        let prog = tbaa_ir::compile_to_ir(&src).expect("synthetic program compiles");
        let instrs = prog.instr_count();
        println!(
            "  n={n}: {} types, {} instrs, {} merges",
            prog.types.len(),
            instrs,
            prog.merges.len()
        );
        g.bench_with_input(BenchmarkId::new("build_sm", n), &prog, |bench, p| {
            bench.iter(|| Tbaa::build(p, Level::SmFieldTypeRefs, World::Closed))
        });
    }
    // The per-query cost (may_alias) for the paper's Table 2 recursion.
    let prog = tbaa_ir::compile_to_ir(&synthetic_source(200)).unwrap();
    let analysis = Tbaa::build(&prog, Level::SmFieldTypeRefs, World::Closed);
    let sites = prog.heap_ref_sites();
    g.bench_function("may_alias_queries/200", |bench| {
        bench.iter(|| {
            let mut hits = 0usize;
            for (_, a, _) in sites.iter().take(64) {
                for (_, b, _) in sites.iter().take(64) {
                    if tbaa::AliasAnalysis::may_alias(&analysis, &prog.aps, *a, *b) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
