//! Property tests for the durable session journal's wire format:
//! seeded encode/scan round-trips, a malformed-frame corpus, and the
//! pin that recovery always stops *cleanly* at the first torn record —
//! never panics, never resynchronizes past garbage.

use tbaa_bench::rng::XorShift64;
use tbaa_server::journal::{
    decode_record, encode_record, scan, DecodeError, Record, RecordOp, FRAME_HEADER, MAGIC,
};

/// A random record: loads with adversarial strings (quotes, newlines,
/// NULs, multibyte), unloads, and marks.
fn random_record(rng: &mut XorShift64, seq: u64) -> Record {
    let rand_string = |rng: &mut XorShift64| {
        let alphabet: Vec<char> = "abc\"\\\n\x00é日🦀 {}[]:,".chars().collect();
        let len = rng.index(24);
        (0..len).map(|_| *rng.pick(&alphabet)).collect::<String>()
    };
    let op = match rng.index(4) {
        0 | 1 => RecordOp::Load {
            sid: format!("s{}", rng.index(1000)),
            line: format!(
                r#"{{"op":"load","source":{}}}"#,
                tbaa_server::json::Value::Str(rand_string(rng).into()).encode()
            ),
        },
        2 => RecordOp::Unload {
            sid: format!("s{}", rng.index(1000)),
        },
        _ => RecordOp::Mark {
            next_sid: rng.next_u64() % 10_000,
        },
    };
    Record { seq, op }
}

/// Encodes `records` into a fresh journal image (magic + frames).
fn image(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::from(MAGIC.as_slice());
    for rec in records {
        encode_record(rec, &mut buf);
    }
    buf
}

#[test]
fn seeded_round_trip_recovers_every_record() {
    for seed in [1u64, 7, 42, 0xDEAD, 0xFFFF_FFFF_FFFF_FFFF] {
        let mut rng = XorShift64::new(seed);
        let n = 1 + rng.index(40);
        let records: Vec<Record> = (0..n)
            .map(|i| random_record(&mut rng, i as u64 + 1))
            .collect();
        let buf = image(&records);
        let scanned = scan(&buf);
        assert_eq!(scanned.records, records, "seed {seed}: lossless round-trip");
        assert!(!scanned.torn, "seed {seed}: a pristine image is not torn");
        assert_eq!(scanned.dup_skipped, 0);
        assert_eq!(
            scanned.valid_bytes,
            buf.len(),
            "seed {seed}: every byte accounted for"
        );
    }
}

#[test]
fn single_record_decode_round_trips() {
    let mut rng = XorShift64::new(99);
    for i in 0..200 {
        let rec = random_record(&mut rng, i + 1);
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        let (back, used) = decode_record(&buf).expect("well-formed frame decodes");
        assert_eq!(back, rec);
        assert_eq!(used, buf.len(), "decode consumes exactly one frame");
    }
}

/// The malformed-frame corpus: every trailing corruption truncates
/// recovery to the valid prefix instead of failing it.
#[test]
fn malformed_tails_truncate_recovery_to_the_valid_prefix() {
    let mut rng = XorShift64::new(5);
    let records: Vec<Record> = (0..5).map(|i| random_record(&mut rng, i + 1)).collect();
    let pristine = image(&records);

    // Each corruption appends to (or mangles the tail of) the pristine
    // image; scan must return the 5 intact records and flag the tear.
    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("trailing garbage", {
            let mut b = pristine.clone();
            b.extend_from_slice(b"\xFF\xFE not a frame at all");
            b
        }),
        ("short length prefix", {
            let mut b = pristine.clone();
            b.extend_from_slice(&[0x10, 0x00]); // 2 of the 4 length bytes
            b
        }),
        ("zero-length frame", {
            let mut b = pristine.clone();
            b.extend_from_slice(&0u32.to_le_bytes());
            b.extend_from_slice(&0u64.to_le_bytes());
            b
        }),
        ("oversized length prefix", {
            let mut b = pristine.clone();
            b.extend_from_slice(&u32::MAX.to_le_bytes());
            b.extend_from_slice(&0u64.to_le_bytes());
            b.extend_from_slice(b"whatever");
            b
        }),
        ("bad checksum", {
            let mut b = pristine.clone();
            let mut frame = Vec::new();
            encode_record(&random_record(&mut rng, 6), &mut frame);
            *frame.last_mut().unwrap() ^= 0x01; // flip a payload byte
            b.extend_from_slice(&frame);
            b
        }),
        ("checksum field itself flipped", {
            let mut b = pristine.clone();
            let mut frame = Vec::new();
            encode_record(&random_record(&mut rng, 6), &mut frame);
            frame[4] ^= 0x80; // first checksum byte
            b.extend_from_slice(&frame);
            b
        }),
        ("valid frame, garbage payload", {
            let mut b = pristine.clone();
            // A correctly framed, correctly checksummed payload that is
            // not a journal record.
            let payload = b"this is not json";
            b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            b.extend_from_slice(&tbaa_server::session::content_hash(payload).to_le_bytes());
            b.extend_from_slice(payload);
            b
        }),
        ("mid-record truncation", {
            let mut b = pristine.clone();
            let mut frame = Vec::new();
            encode_record(&random_record(&mut rng, 6), &mut frame);
            b.extend_from_slice(&frame[..frame.len() - 3]);
            b
        }),
    ];
    for (what, bytes) in corruptions {
        let scanned = scan(&bytes);
        assert_eq!(
            scanned.records, records,
            "{what}: the intact prefix survives"
        );
        assert!(scanned.torn, "{what}: the tear is reported");
        assert!(
            scanned.valid_bytes <= bytes.len(),
            "{what}: valid_bytes stays in bounds"
        );
    }
}

/// The pin: recovery stops at the *first* torn record and never
/// resynchronizes — well-formed records past the tear stay dead, so a
/// recovered daemon can reason about a clean prefix, not a patchwork.
#[test]
fn recovery_never_resynchronizes_past_a_tear() {
    let mut rng = XorShift64::new(17);
    let before: Vec<Record> = (0..3).map(|i| random_record(&mut rng, i + 1)).collect();
    let after: Vec<Record> = (0..3).map(|i| random_record(&mut rng, i + 4)).collect();

    let mut bytes = image(&before);
    // The tear: a frame whose checksum lies.
    let mut frame = Vec::new();
    encode_record(&random_record(&mut rng, 100), &mut frame);
    let flip = FRAME_HEADER + frame[FRAME_HEADER..].len() / 2;
    frame[flip] ^= 0xA5;
    bytes.extend_from_slice(&frame);
    // Perfectly valid records after it.
    for rec in &after {
        encode_record(rec, &mut bytes);
    }

    let scanned = scan(&bytes);
    assert_eq!(
        scanned.records, before,
        "only the pre-tear prefix is recovered"
    );
    assert!(scanned.torn);
}

/// Sequence discipline: an out-of-order or repeated (but not identical)
/// sequence number is a conflict that stops recovery; an *identical*
/// duplicate frame (a retried write) is skipped and counted.
#[test]
fn duplicate_and_conflicting_sequence_numbers() {
    let mut rng = XorShift64::new(23);
    let a = random_record(&mut rng, 1);
    let b = random_record(&mut rng, 2);

    // Exact duplicate: skipped, not torn.
    let mut bytes = image(std::slice::from_ref(&a));
    let mut frame = Vec::new();
    encode_record(&a, &mut frame);
    bytes.extend_from_slice(&frame);
    let mut tail = Vec::new();
    encode_record(&b, &mut tail);
    bytes.extend_from_slice(&tail);
    let scanned = scan(&bytes);
    assert_eq!(scanned.records, vec![a.clone(), b.clone()]);
    assert_eq!(scanned.dup_skipped, 1);
    assert!(!scanned.torn);

    // Same seq, different body: a conflict — recovery stops before it.
    let conflicting = Record {
        seq: a.seq,
        op: RecordOp::Unload {
            sid: "s999".into(),
        },
    };
    let mut bytes = image(std::slice::from_ref(&a));
    let mut frame = Vec::new();
    encode_record(&conflicting, &mut frame);
    bytes.extend_from_slice(&frame);
    let scanned = scan(&bytes);
    assert_eq!(scanned.records, vec![a.clone()]);
    assert!(scanned.torn, "a seq conflict is a tear, not a skip");
}

/// Decode errors carry the right diagnosis for each malformation.
#[test]
fn decode_errors_name_the_malformation() {
    assert!(matches!(
        decode_record(&[0x01, 0x00]),
        Err(DecodeError::Truncated)
    ));
    let mut zero = Vec::new();
    zero.extend_from_slice(&0u32.to_le_bytes());
    zero.extend_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        decode_record(&zero),
        Err(DecodeError::ZeroLength)
    ));
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_le_bytes());
    huge.extend_from_slice(&0u64.to_le_bytes());
    assert!(matches!(decode_record(&huge), Err(DecodeError::TooLong)));
    let mut rng = XorShift64::new(31);
    let mut frame = Vec::new();
    encode_record(&random_record(&mut rng, 1), &mut frame);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    assert!(matches!(
        decode_record(&frame),
        Err(DecodeError::BadChecksum)
    ));
}
