//! Property/fuzz tests for the hand-rolled JSON codec.
//!
//! The daemon's byte-differential story rests on this codec, so it gets
//! the adversarial treatment: seeded-random encode→decode round-trips
//! over generated values, a corpus of malformed frames that must error
//! (never panic, never abort), and mutation fuzzing of valid documents.
//! Randomness comes from `tbaa_bench::rng::XorShift64` (the workspace
//! is offline; no `proptest`), so every failure reproduces from the
//! printed seed.

use tbaa_bench::rng::XorShift64;
use tbaa_server::json::{parse, Value, MAX_DEPTH};

/// A random value whose encoding round-trips to the *same* `Value`.
///
/// Two codec asymmetries are deliberately avoided rather than papered
/// over, because they are documented one-way conversions:
/// * non-finite floats encode as `null`;
/// * integral floats (`3.0`, `-0.0`) encode without a fraction and
///   reparse as `Int`.
///
/// Generated floats therefore always carry a real fraction.
fn gen_value(rng: &mut XorShift64, depth: usize) -> Value<'static> {
    let scalar_only = depth >= 4;
    match rng.below(if scalar_only { 5 } else { 7 }) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(1, 2)),
        2 => Value::Int(rng.range_i64(i64::MIN / 2, i64::MAX / 2)),
        3 => {
            // Offset by a dyadic fraction: exactly representable, so the
            // shortest-repr encoder and the parser agree bit-for-bit.
            let frac = [0.5, 0.25, 0.125, 0.75][rng.index(4)];
            Value::Float(rng.range_i64(-1_000_000, 1_000_000) as f64 + frac)
        }
        4 => Value::Str(gen_string(rng).into()),
        5 => {
            let n = rng.index(4);
            Value::Array((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.index(4);
            Value::Object(
                (0..n)
                    .map(|i| (format!("k{i}_{}", gen_string(rng)).into(), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

fn gen_string(rng: &mut XorShift64) -> String {
    const POOL: [char; 16] = [
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '–', '漢',
        '😀',
    ];
    let n = rng.index(12);
    (0..n).map(|_| POOL[rng.index(POOL.len())]).collect()
}

#[test]
fn encode_decode_round_trips_generated_values() {
    for seed in 1..=40u64 {
        let mut rng = XorShift64::new(seed);
        for case in 0..50 {
            let v = gen_value(&mut rng, 0);
            let enc = v.encode();
            let back = parse(&enc).unwrap_or_else(|e| {
                panic!("seed {seed} case {case}: {enc} failed to reparse: {e}")
            });
            assert_eq!(back, v, "seed {seed} case {case}: {enc}");
            // Encoding is a fixed point: decode(encode(v)) encodes the same.
            assert_eq!(back.encode(), enc, "seed {seed} case {case}");
        }
    }
}

#[test]
fn malformed_corpus_errors_without_panicking() {
    let deep_array = "[".repeat(MAX_DEPTH * 8);
    let deep_object = "{\"k\":".repeat(MAX_DEPTH * 8);
    let long_string = format!("\"{}", "a".repeat(1 << 16)); // unterminated
    let corpus: Vec<String> = [
        "", " ", "nul", "truE", "+1", "01x", "--2", "1.2.3", ".5",
        "\"", "\"\\", "\"\\u", "\"\\u00", "\"\\uD800\"", "\"\\uD800\\uD800\"",
        "\"\\x41\"", "[", "[,", "[1 2]", "[1,,2]", "{", "{]", "{\"a\"",
        "{\"a\":", "{\"a\":1,", "{\"a\":1 \"b\":2}", "{1:2}", "{\"a\" 1}",
        "[}", "}{", "1}", "[1]]", "{\"a\":1}}", "\u{0}", "\t\t\t",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([deep_array, deep_object, long_string])
    .collect();
    for bad in &corpus {
        // The assertion is twofold: an Err comes back, and we got here at
        // all (a stack overflow would abort the process).
        let r = parse(bad);
        assert!(r.is_err(), "{:?} should fail, got {r:?}", &bad[..bad.len().min(60)]);
    }
}

#[test]
fn mutation_fuzz_never_panics() {
    // Start from realistic protocol frames and hammer them with random
    // byte edits. Any outcome is acceptable except a panic/abort.
    let seeds = [
        r#"{"op":"alias","session":"s1","level":"merges","pairs":[["a.b","c.d"]]}"#,
        r#"{"ok":true,"results":[true,false],"n":-12,"f":3.75}"#,
        r#"{"op":"load","bench":"ktree","scale":2}"#,
        r#"[{"k":[1,2,{"x":null}]},"tail"]"#,
    ];
    let mut rng = XorShift64::new(0xF422);
    let mut parsed_ok = 0u32;
    for _ in 0..4000 {
        let mut bytes = seeds[rng.index(seeds.len())].as_bytes().to_vec();
        for _ in 0..1 + rng.index(4) {
            let i = rng.index(bytes.len());
            match rng.below(3) {
                0 => bytes[i] = rng.below(256) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, rng.below(128) as u8),
            }
            if bytes.is_empty() {
                bytes.push(b'{');
            }
        }
        // The wire layer lossy-decodes, so mirror that here.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if parse(&text).is_ok() {
            parsed_ok += 1;
        }
    }
    // Sanity: the fuzzer is not so destructive that nothing ever parses.
    assert!(parsed_ok > 0, "mutator never produced valid JSON");
}

#[test]
fn parser_depth_limit_matches_constant() {
    let at = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
    assert!(parse(&at).is_ok());
    let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
    let err = parse(&over).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}
