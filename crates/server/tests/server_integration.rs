//! End-to-end tests driving a real `tbaad` server over TCP (and, on
//! unix, a Unix-domain socket) with the [`tbaa_server::Client`].
//!
//! The headline test is `concurrent_clients_share_compilation`: eight
//! concurrent connections over two distinct benchsuite sessions prove
//! that (a) each program compiles exactly once, (b) batched `alias`
//! replies are byte-identical to serial single-query replies, and
//! (c) `shutdown` drains in-flight requests without dropping a reply.

use std::time::Duration;

use tbaa_server::{Client, ClientError, ErrCode, Server, ServerConfig, ServerHandle};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind(config).expect("bind ephemeral server").spawn()
}

fn connect(handle: &ServerHandle) -> Client {
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    c
}

/// The `"results":[...]` portion of a raw alias reply line.
fn results_bytes(raw: &str) -> &str {
    let start = raw.find("\"results\":[").expect("alias reply has results");
    let open = start + "\"results\":".len();
    let close = raw[open..].find(']').expect("results array closes") + open;
    &raw[open..=close]
}

/// Query pairs drawn from a session's addressable paths: every ordered
/// combination of the first few, so batches mix aliasing and
/// non-aliasing answers.
fn query_pairs(paths: &[String]) -> Vec<(String, String)> {
    let take = paths.len().min(4);
    let mut pairs = Vec::new();
    for i in 0..take {
        for j in i..take {
            pairs.push((paths[i].clone(), paths[j].clone()));
        }
    }
    assert!(!pairs.is_empty(), "benchsuite program has no paths");
    pairs
}

/// ISSUE acceptance test: ≥ 8 concurrent connections, ≥ 2 sessions.
#[test]
fn concurrent_clients_share_compilation() {
    let handle = spawn_server(ServerConfig::default());
    const PROGRAMS: [&str; 2] = ["ktree", "format"];
    const CLIENTS: usize = 8;

    std::thread::scope(|scope| {
        for i in 0..CLIENTS {
            let handle = &handle;
            scope.spawn(move || {
                let program = PROGRAMS[i % PROGRAMS.len()];
                let mut client = connect(handle);
                let load = client
                    .load_bench_with(program, 1, true)
                    .expect("load benchsuite program");
                assert!(!load.session.is_empty());
                assert!(load.heap_refs > 0);
                let pairs = query_pairs(&load.paths);

                // (b) batched replies must be byte-identical to the
                // concatenation of serial single-query replies.
                for _round in 0..3 {
                    let batched = client
                        .alias(&load.session, None, None, &pairs)
                        .expect("batched alias");
                    assert_eq!(batched.results.len(), pairs.len());
                    let mut serial_parts = Vec::new();
                    for pair in &pairs {
                        let single = client
                            .alias(&load.session, None, None, std::slice::from_ref(pair))
                            .expect("single alias");
                        assert_eq!(single.results.len(), 1);
                        let part = results_bytes(&single.raw);
                        // strip the brackets of the 1-element array
                        serial_parts.push(part[1..part.len() - 1].to_string());
                    }
                    let reassembled = format!("[{}]", serial_parts.join(","));
                    assert_eq!(
                        results_bytes(&batched.raw),
                        reassembled,
                        "batched vs serial results diverge for {program}"
                    );
                    // Everything but the results must also match: same
                    // session, level, world in both reply shapes.
                    let single_prefix = {
                        let single = client
                            .alias(&load.session, None, None, std::slice::from_ref(&pairs[0]))
                            .expect("single alias");
                        single.raw[..single.raw.find("\"results\"").unwrap()].to_string()
                    };
                    let batched_prefix =
                        batched.raw[..batched.raw.find("\"results\"").unwrap()].to_string();
                    assert_eq!(single_prefix, batched_prefix);
                }

                // A second load of the same content is a cache hit with
                // the same session id.
                let again = client.load_bench(program, 1).expect("reload");
                assert!(again.cached, "second load of {program} must be warm");
                assert_eq!(again.session, load.session);
            });
        }
    });

    // (a) each program compiled exactly once, via the stats verb.
    let mut observer = connect(&handle);
    let stats = observer.stats().expect("stats");
    assert_eq!(
        stats.counter("sessions.compiles"),
        PROGRAMS.len() as i64,
        "each of the {} programs must compile exactly once: {}",
        PROGRAMS.len(),
        stats.raw
    );
    let hits = stats.counter("sessions.hits");
    assert!(hits >= CLIENTS as i64, "expected ≥{CLIENTS} cache hits, got {hits}");
    assert_eq!(stats.live_sessions, PROGRAMS.len() as i64);

    // (c) shutdown drains in-flight requests without dropping a reply:
    // every client writes its query *before* anyone reads, a separate
    // connection fires `shutdown`, and only then do the clients read.
    let mut drainers: Vec<(Client, usize)> = (0..CLIENTS)
        .map(|i| {
            let program = PROGRAMS[i % PROGRAMS.len()];
            let mut client = connect(&handle);
            let load = client
                .load_bench_with(program, 1, true)
                .expect("load for drain test");
            let pairs = query_pairs(&load.paths);
            let req = format!(
                r#"{{"op":"alias","session":"{}","pairs":[{}]}}"#,
                load.session,
                pairs
                    .iter()
                    .map(|(a, b)| format!(r#"["{a}","{b}"]"#))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            client.send_raw(&[req]).expect("buffer in-flight request");
            (client, pairs.len())
        })
        .collect();

    observer.shutdown().expect("shutdown acknowledged");

    for (client, expected_len) in &mut drainers {
        let raw = client.read_reply_line().expect("drained reply arrives");
        assert!(
            raw.contains(r#""ok":true"#),
            "in-flight request must be served during drain: {raw}"
        );
        let results = results_bytes(&raw);
        let count = results.matches("true").count() + results.matches("false").count();
        assert_eq!(count, *expected_len, "complete results in drained reply");
    }

    handle.join().expect("server drains and exits cleanly");
}

/// Sessions persist across connections: load in one, query in another.
#[test]
fn sessions_survive_reconnects() {
    let handle = spawn_server(ServerConfig::default());
    let session = {
        let mut c = connect(&handle);
        c.load_bench("slisp", 1).expect("load").session
    }; // connection dropped here
    let mut c2 = connect(&handle);
    let pairs = c2.pairs(&session, Some("typedecl"), None).expect("pairs");
    assert!(pairs.references > 0);
    let rle = c2.rle(&session, None, None).expect("rle");
    assert!(rle.removed >= rle.eliminated);
    assert!(c2.unload(&session).expect("unload"));
    match c2.pairs(&session, None, None) {
        Err(ClientError::Server(err)) => assert_eq!(err.code, ErrCode::NoSession),
        other => panic!("query after unload must fail: {other:?}"),
    }
    c2.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Compile failures come back as structured diagnostics over the wire,
/// and the connection stays usable afterwards.
#[test]
fn compile_errors_are_structured_and_non_fatal() {
    let handle = spawn_server(ServerConfig::default());
    let mut c = connect(&handle);
    match c.load_source("MODULE Broken := ;") {
        Err(ClientError::Server(err)) => {
            assert_eq!(err.code, ErrCode::Compile);
            assert!(!err.diagnostics.is_empty());
            let d = &err.diagnostics[0];
            assert!(!d.phase.is_empty());
            assert!(d.start >= 0 && d.end >= d.start);
            assert!(!d.message.is_empty());
        }
        other => panic!("broken source must be a compile error: {other:?}"),
    }
    // Same connection still serves good requests.
    let load = c
        .load_source(
            "MODULE M; TYPE T = OBJECT f: INTEGER; END; VAR t: T; x: INTEGER; \
             BEGIN t := NEW(T); t.f := 1; x := t.f; END M.",
        )
        .expect("good source compiles");
    let alias = c
        .alias(
            &load.session,
            Some("merges"),
            Some("closed"),
            &[("t.f".to_string(), "t.f".to_string())],
        )
        .expect("alias");
    assert_eq!(alias.results, vec![true]);
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Garbage lines get error replies; the worker does not hang or die.
#[test]
fn malformed_lines_get_error_replies() {
    let handle = spawn_server(ServerConfig::default());
    let mut c = connect(&handle);
    let replies = c
        .pipeline_raw(&[
            "not json at all".to_string(),
            r#"{"op":"frobnicate"}"#.to_string(),
            r#"{"op":"alias","session":"s404","ap1":"a","ap2":"b"}"#.to_string(),
            r#"{"op":"stats"}"#.to_string(),
        ])
        .expect("all four lines get replies");
    assert!(replies[0].contains(r#""kind":"parse""#), "{}", replies[0]);
    assert!(replies[1].contains(r#""kind":"proto""#), "{}", replies[1]);
    assert!(replies[2].contains(r#""kind":"no_session""#), "{}", replies[2]);
    assert!(replies[3].contains(r#""ok":true"#), "{}", replies[3]);
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// More connections than workers: excess connections queue, none starve.
#[test]
fn connection_queue_exceeding_workers() {
    let handle = spawn_server(ServerConfig::builder().workers(2).build());
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let handle = &handle;
            scope.spawn(move || {
                let mut c = connect(handle);
                let load = c.load_bench("pp", 1).expect("load");
                let p = c.pairs(&load.session, None, None).expect("pairs");
                assert!(p.references > 0);
                // Close promptly so the worker frees up for queued peers.
            });
        }
    });
    let mut c = connect(&handle);
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// The Unix-domain socket speaks the same protocol, and the socket file
/// is removed after drain.
#[cfg(unix)]
#[test]
fn unix_socket_roundtrip() {
    let sock = std::env::temp_dir().join(format!("tbaad-test-{}.sock", std::process::id()));
    let handle = spawn_server(ServerConfig::builder().unix_path(sock.clone()).build());
    let mut c = Client::connect_unix(&sock).expect("connect over unix socket");
    c.set_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    let load = c.load_bench("dom", 1).expect("load over unix socket");
    let p = c.pairs(&load.session, None, None).expect("pairs");
    assert!(p.global_pairs >= p.local_pairs);
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
    assert!(!sock.exists(), "socket file removed after drain");
}
