//! LRU-churn: drive the session store past capacity and prove the
//! eviction machinery honest.
//!
//! A capacity-2 daemon is walked through a deterministic load sequence
//! that forces two evictions, asserting after each step that
//! * evicted sessions recompile correctly (fresh id, `cached:false`,
//!   byte-exact query replies against the `tbaa_bench::load` oracle),
//! * the `stats` eviction/compile/hit counters match the hand-counted
//!   sequence exactly, and
//! * no stale engine is ever served: a purged session id answers
//!   `no_session`, and the recompiled session's replies match the
//!   oracle byte-for-byte.

use std::sync::Arc;

use tbaa::analysis::Level;
use tbaa::World;
use tbaa_bench::load::{CheckOutcome, Content, DiffChecker, LineSource, ReqKind, Wire};
use tbaa_server::json::{parse, Value};
use tbaa_server::{Server, ServerConfig};

fn counter(stats: &Value, name: &str) -> i64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(0)
}

struct Driver {
    writer: Wire,
    src: LineSource,
}

impl Driver {
    fn request(&mut self, line: &str) -> String {
        self.writer.write_line(line).expect("send");
        self.src.read_line_blocking().expect("reply")
    }

    fn stats(&mut self) -> Value<'static> {
        let raw = self.request(r#"{"op":"stats"}"#);
        parse(&raw).expect("stats parses").into_owned()
    }
}

#[test]
fn eviction_recompile_counters_and_no_stale_engines() {
    let contents = vec![
        Content::Bench { name: "ktree".into(), scale: 1 },
        Content::Bench { name: "format".into(), scale: 1 },
        Content::Bench { name: "slisp".into(), scale: 1 },
    ];
    let checker = DiffChecker::new(&contents);
    let [a, b, c] = [&contents[0], &contents[1], &contents[2]];

    let handle = Server::bind(ServerConfig::builder().session_capacity(2).build())
        .expect("bind")
        .spawn();
    let wire = Wire::connect_tcp(handle.addr()).expect("connect");
    let writer = wire.try_clone().expect("clone");
    let mut d = Driver {
        writer,
        src: LineSource::new(wire),
    };

    // Regression pin: the uptime clock starts at *bind* time, so the
    // very first reply the daemon ever sends already reports a positive
    // uptime (it used to be possible to observe a zero).
    let first = d.stats();
    let uptime = first.get("uptime_us").and_then(Value::as_i64).unwrap_or(0);
    assert!(uptime > 0, "uptime_us must be positive from the first reply: {first:?}");

    // One sequential connection → a fully deterministic LRU walk.
    let load = |d: &mut Driver, content: &Content, checker: &DiffChecker| -> (String, bool) {
        let raw = d.request(&content.load_line());
        let kind = ReqKind::Load { key: content.key() };
        let CheckOutcome::Loaded { sid } = checker.check(&kind, &raw) else {
            panic!("load failed: {raw}");
        };
        let cached = parse(&raw)
            .unwrap()
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap();
        (sid, cached)
    };

    // Load A, B: fills capacity. Compiles 1, 2; no evictions.
    let (sid_a, cached) = load(&mut d, a, &checker);
    assert!(!cached, "first load of A compiles");
    let (_sid_b, cached) = load(&mut d, b, &checker);
    assert!(!cached);
    let s = d.stats();
    assert_eq!(counter(&s, "sessions.compiles"), 2);
    assert_eq!(counter(&s, "sessions.evictions"), 0);
    assert_eq!(
        s.get("sessions").unwrap().get("live").unwrap().as_i64(),
        Some(2)
    );

    // Warm A's engine so an engine exists to go stale.
    let paths_a = checker.oracle().paths(&a.key());
    let pairs = vec![(paths_a[0].clone(), paths_a.last().unwrap().clone())];
    let alias_line = |sid: &str, p: &[(String, String)]| {
        format!(
            r#"{{"op":"alias","session":"{sid}","level":"merges","world":"closed","pairs":[["{}","{}"]]}}"#,
            p[0].0, p[0].1
        )
    };
    let raw = d.request(&alias_line(&sid_a, &pairs));
    let kind_a = |sid: &str, p: Vec<(String, String)>| ReqKind::Alias {
        key: a.key(),
        sid: sid.to_string(),
        level: Level::SmFieldTypeRefs,
        world: World::Closed,
        pairs: p,
    };
    assert!(matches!(
        checker.check(&kind_a(&sid_a, pairs.clone()), &raw),
        CheckOutcome::Ok
    ));

    // Touch B (so A is coldest), then load C: A must be evicted.
    let (_sid_b2, cached) = load(&mut d, b, &checker);
    assert!(cached, "B is still live");
    let (_sid_c, cached) = load(&mut d, c, &checker);
    assert!(!cached);
    let s = d.stats();
    assert_eq!(counter(&s, "sessions.compiles"), 3);
    assert_eq!(counter(&s, "sessions.evictions"), 1, "A evicted");
    assert_eq!(counter(&s, "sessions.hits"), 1, "the cached B reload");

    // Stale engine check #1: A's purged id must answer no_session —
    // never a stale (or crossed) engine.
    let raw = d.request(&alias_line(&sid_a, &pairs));
    let err = parse(&raw).expect("error reply parses");
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        err.get("error").unwrap().get("kind").and_then(Value::as_str),
        Some("no_session"),
        "{raw}"
    );

    // Reload A: recompile (cached:false, fresh id), evicting B.
    let (sid_a2, cached) = load(&mut d, a, &checker);
    assert!(!cached, "evicted A must recompile, not hit");
    assert_ne!(sid_a2, sid_a, "recompiled session gets a fresh id");
    let s = d.stats();
    assert_eq!(counter(&s, "sessions.compiles"), 4);
    assert_eq!(counter(&s, "sessions.evictions"), 2, "B evicted in turn");
    assert_eq!(
        s.get("sessions").unwrap().get("live").unwrap().as_i64(),
        Some(2),
        "capacity bound holds"
    );

    // Stale engine check #2: the recompiled A serves byte-exact answers
    // for a fresh engine build — all levels, both worlds.
    for (level_str, level) in [
        ("typedecl", Level::TypeDecl),
        ("fields", Level::FieldTypeDecl),
        ("merges", Level::SmFieldTypeRefs),
    ] {
        for (world_str, world) in [("closed", World::Closed), ("open", World::Open)] {
            let line = format!(
                r#"{{"op":"alias","session":"{sid_a2}","level":"{level_str}","world":"{world_str}","pairs":[["{}","{}"]]}}"#,
                pairs[0].0, pairs[0].1
            );
            let raw = d.request(&line);
            let kind = ReqKind::Alias {
                key: a.key(),
                sid: sid_a2.clone(),
                level,
                world,
                pairs: pairs.clone(),
            };
            assert!(
                matches!(checker.check(&kind, &raw), CheckOutcome::Ok),
                "recompiled A diverged at {level_str}/{world_str}:\n{}",
                checker.details().join("\n")
            );
        }
    }

    // The engine table in `stats` lists only live ids — evicted ids gone.
    let s = d.stats();
    let engines = s.get("engines").expect("engines listed");
    assert!(engines.get(&sid_a2).is_some(), "live session listed");
    assert!(engines.get(&sid_a).is_none(), "evicted id not listed");

    assert_eq!(checker.mismatches(), 0, "{:?}", checker.details());

    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}

/// Churn from many threads: hammer a capacity-1 store with competing
/// contents and assert global counter consistency at the end — every
/// miss compiled, every admit beyond capacity evicted, and the server
/// survives with zero panics.
#[test]
fn concurrent_churn_keeps_counters_consistent() {
    let contents: Arc<Vec<Content>> = Arc::new(vec![
        Content::Bench { name: "ktree".into(), scale: 1 },
        Content::Bench { name: "format".into(), scale: 1 },
    ]);
    let handle = Server::bind(ServerConfig::builder().session_capacity(1).build())
        .expect("bind")
        .spawn();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for t in 0..4 {
            let contents = contents.clone();
            scope.spawn(move || {
                let wire = Wire::connect_tcp(addr).expect("connect");
                let mut writer = wire.try_clone().expect("clone");
                let mut src = LineSource::new(wire);
                for i in 0..25 {
                    let content = &contents[(t + i) % contents.len()];
                    writer.write_line(&content.load_line()).expect("send");
                    let raw = src.read_line_blocking().expect("reply");
                    assert!(raw.contains("\"ok\":true"), "{raw}");
                }
            });
        }
    });

    let wire = Wire::connect_tcp(addr).expect("connect");
    let writer = wire.try_clone().expect("clone");
    let mut d = Driver {
        writer,
        src: LineSource::new(wire),
    };
    let s = d.stats();
    let compiles = counter(&s, "sessions.compiles");
    let hits = counter(&s, "sessions.hits");
    let misses = counter(&s, "sessions.misses");
    let evictions = counter(&s, "sessions.evictions");
    let live = s
        .get("sessions")
        .unwrap()
        .get("live")
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(hits + misses, 100, "every load classified");
    assert!(compiles >= 2, "both contents compiled at least once");
    assert!(compiles <= misses, "every compile was a miss");
    // Exact conservation (compiles - evictions == live) holds only
    // sequentially: a hit thread may re-admit a key whose slot a racing
    // eviction just removed, so one compile can be evicted twice. What
    // must hold at quiescence is the one-sided bound — every compiled
    // session not currently live was evicted at least once.
    assert!(
        evictions >= compiles - live,
        "evicted at least compiles - live times ({evictions} vs {compiles} - {live})"
    );
    assert!(live <= 1, "capacity bound holds under concurrency");
    assert_eq!(counter(&s, "requests.panics"), 0);

    handle.state().request_shutdown();
    handle.join().expect("clean shutdown");
}
