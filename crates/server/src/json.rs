//! A minimal, dependency-free JSON value type with encoder and decoder.
//!
//! The workspace is path-only (no registry), so `tbaad`'s wire format is
//! hand-rolled here rather than pulled from `serde_json`. The subset is
//! deliberately small but complete for the protocol's needs:
//!
//! * [`Value`] distinguishes [`Value::Int`] from [`Value::Float`] so
//!   counters round-trip without a trailing `.0` and replies are
//!   byte-stable;
//! * objects preserve insertion order, so encoding is deterministic —
//!   the integration tests compare raw reply bytes;
//! * the decoder accepts arbitrary standard JSON (nesting, all escape
//!   forms including `\uXXXX` surrogate pairs) and reports the byte
//!   offset of the first error;
//! * strings and object keys are [`Cow`]s borrowing from the input:
//!   escape-free strings (the overwhelming protocol case — ops, session
//!   ids, access paths) decode with **zero copies**, and encoding via
//!   [`Value::encode_into`] appends to a caller-owned buffer so the hot
//!   path allocates nothing per reply.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;

/// A JSON value borrowing string payloads from the decoded input where
/// possible. Objects keep their key order. `Value<'static>` is the
/// fully-owned form (see [`Value::into_owned`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string — borrowed from the input when it decoded escape-free.
    Str(Cow<'a, str>),
    /// An array.
    Array(Vec<Value<'a>>),
    /// An object, in insertion order.
    Object(Vec<(Cow<'a, str>, Value<'a>)>),
}

impl<'a> Value<'a> {
    /// Builds an object from `(key, value)` pairs, preserving order. The
    /// keys are borrowed as-is — no per-key allocation.
    pub fn object(pairs: Vec<(&'a str, Value<'a>)>) -> Value<'a> {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value<'a>> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes and returns a key's value from an object, so callers can
    /// move decoded `Cow` payloads out without cloning.
    pub fn take(&mut self, key: &str) -> Option<Value<'a>> {
        match self {
            Value::Object(pairs) => {
                let i = pairs.iter().position(|(k, _)| k == key)?;
                Some(pairs.remove(i).1)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload as a `Cow`, consuming the value.
    pub fn into_str(self) -> Option<Cow<'a, str>> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepting integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value<'a>]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Detaches the value from whatever input it borrowed.
    pub fn into_owned(self) -> Value<'static> {
        match self {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(b),
            Value::Int(i) => Value::Int(i),
            Value::Float(f) => Value::Float(f),
            Value::Str(s) => Value::Str(Cow::Owned(s.into_owned())),
            Value::Array(items) => {
                Value::Array(items.into_iter().map(Value::into_owned).collect())
            }
            Value::Object(pairs) => Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| (Cow::Owned(k.into_owned()), v.into_owned()))
                    .collect(),
            ),
        }
    }

    /// Encodes the value as compact JSON (no whitespace) into a fresh
    /// string. Prefer [`Value::encode_into`] on hot paths.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the compact JSON encoding to `out` — the zero-allocation
    /// path when the caller reuses the buffer across replies.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no Inf/NaN; null is the interoperable choice.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
/// Shared by the `Value` encoder and the direct-write reply paths so
/// every emitter escapes identically — the byte-stability invariant.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the decoder accepts. The recursive-descent
/// parser uses one stack frame per `[`/`{` level, so without a bound a
/// hostile `[[[[…` line overflows the thread stack — an *abort*, not a
/// panic, which `catch_unwind` cannot contain. 128 is far beyond any
/// legitimate protocol frame.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error. The
/// returned value borrows escape-free strings from `input`.
pub fn parse(input: &str) -> Result<Value<'_>, JsonError> {
    let mut p = Parser {
        src: input,
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value<'a>) -> Result<Value<'a>, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value<'a>, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value<'a>, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value<'a>, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    /// Decodes a string literal. The fast path scans bytes until the
    /// closing quote and returns a borrow of the input — zero copies for
    /// escape-free strings. Only on the first backslash does it fall to
    /// the allocating slow path, seeded with the already-scanned prefix.
    fn string(&mut self) -> Result<Cow<'a, str>, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    let s = &self.src[start..self.pos];
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\') => break,
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                // Input is &str: bytes ≥ 0x80 are inside multi-byte chars,
                // none of which can be `"`, `\` or a control byte — so a
                // byte-at-a-time scan never splits a char boundary here.
                Some(_) => self.pos += 1,
            }
        }
        let mut s = String::from(&self.src[start..self.pos]);
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Cow::Owned(s));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the next
                    // char boundary is well-defined).
                    let c = self.src[self.pos..].chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value<'a>, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for (src, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Int(42)),
            ("-7", Value::Int(-7)),
            ("1.5", Value::Float(1.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), v, "{src}");
            assert_eq!(parse(&v.encode()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Value::Int(3).encode(), "3");
        assert_eq!(Value::Float(3.5).encode(), "3.5");
    }

    #[test]
    fn object_preserves_order_and_round_trips() {
        let v = Value::object(vec![
            ("z", Value::Int(1)),
            ("a", Value::Array(vec![Value::Bool(true), Value::Null])),
            ("nested", Value::object(vec![("k", Value::Str("v".into()))])),
        ]);
        let enc = v.encode();
        assert_eq!(enc, r#"{"z":1,"a":[true,null],"nested":{"k":"v"}}"#);
        assert_eq!(parse(&enc).unwrap(), v);
    }

    #[test]
    fn escape_free_strings_decode_zero_copy() {
        let src = r#"{"op":"alias","session":"s-1","aps":["g.next","t.f"]}"#;
        let v = parse(src).unwrap();
        let range = src.as_ptr() as usize..src.as_ptr() as usize + src.len();
        // Every string payload AND every object key must borrow from `src`.
        fn walk<'a>(v: &'a Value<'_>, sink: &mut Vec<&'a Cow<'a, str>>) {
            match v {
                Value::Str(s) => sink.push(s),
                Value::Array(items) => items.iter().for_each(|i| walk(i, sink)),
                Value::Object(pairs) => pairs.iter().for_each(|(k, v)| {
                    sink.push(k);
                    walk(v, sink);
                }),
                _ => {}
            }
        }
        let mut strings = Vec::new();
        walk(&v, &mut strings);
        assert_eq!(strings.len(), 7, "3 keys + 4 string payloads");
        for s in strings {
            assert!(matches!(s, Cow::Borrowed(_)), "{s:?} should be borrowed");
            assert!(
                range.contains(&(s.as_ptr() as usize)),
                "{s:?} should point into the input"
            );
        }
        // A single escape falls back to an owned copy — of that string only.
        let esc = parse(r#"{"a":"x\ny","b":"plain"}"#).unwrap();
        assert!(matches!(esc.get("a"), Some(Value::Str(Cow::Owned(_)))));
        assert!(matches!(esc.get("b"), Some(Value::Str(Cow::Borrowed(_)))));
    }

    #[test]
    fn take_moves_values_out() {
        let mut v = parse(r#"{"op":"load","source":"MODULE M; END M."}"#).unwrap();
        let op = v.take("op").unwrap();
        assert_eq!(op.as_str(), Some("load"));
        assert!(v.take("op").is_none(), "take removes the pair");
        assert!(v.get("source").is_some(), "other keys survive");
    }

    #[test]
    fn into_owned_detaches_from_input() {
        let owned = {
            let src = String::from(r#"{"k":"v","a":["x"]}"#);
            parse(&src).unwrap().into_owned()
        };
        assert_eq!(owned.get("k").and_then(Value::as_str), Some("v"));
        assert_eq!(owned.encode(), r#"{"k":"v","a":["x"]}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}bell";
        let enc = Value::Str(s.into()).encode();
        assert_eq!(parse(&enc).unwrap(), Value::Str(s.into()));
        // Decoder-side escapes we never emit.
        assert_eq!(
            parse(r#""\u0041\/\b\f""#).unwrap(),
            Value::Str("A/\u{8}\u{c}".into())
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".into())
        );
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::Str("héllo – ≠ 漢".into());
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"\\q\"",
            "\"unterminated", "[1,]",
            "\"\\ud83d\"", // lone high surrogate
            "{\"a\":1,}",
            "\"ctrl\u{1}char\"",
            "\"esc\\n then ctrl\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_an_error_not_an_abort() {
        // One past the limit must error; a stack overflow would abort the
        // whole test process, so merely returning here is the assertion.
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Mixed nesting hits the same guard.
        let mixed = "{\"k\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse(&mixed).is_err());
        // Exactly at the limit still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // And depth is per-nesting, not cumulative across siblings.
        let wide = format!("[{}]", vec!["[]"; MAX_DEPTH * 2].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"f":2.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
