//! Shared line-protocol plumbing for `tbaad` and `tbaa-router`.
//!
//! Both the daemon and the router speak the same newline-delimited JSON
//! protocol, so the transport layer lives here once: a duplex [`Conn`]
//! over TCP or a Unix-domain socket, a timeout-surviving [`LineReader`],
//! a [`DualListener`] that polls both listener families, and the
//! accept-loop/worker-pool skeleton [`serve`] parameterized by a
//! [`LineService`]. The bench crate re-exports these types as its wire
//! harness, so the load generator exercises the exact I/O code the
//! daemon runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check shutdown/drain flags.
pub const POLL_TICK: Duration = Duration::from_millis(50);
/// Accept-loop poll interval.
pub const ACCEPT_TICK: Duration = Duration::from_millis(10);
/// Most pipelined lines served per batch before replies are flushed.
const MAX_BATCH: usize = 64;

/// One duplex peer connection (TCP or Unix).
pub enum Conn {
    /// A TCP stream (nodelay is set by [`Conn::connect_tcp`]).
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects over TCP with `TCP_NODELAY` (latency beats batching for
    /// a line protocol).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Conn::Tcp(stream))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Conn> {
        Ok(Conn::Unix(UnixStream::connect(path)?))
    }

    /// Clones the underlying socket (for split read/write halves).
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (None = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Sets the write timeout (None = block forever).
    pub fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(d),
        }
    }

    /// Writes one request line (appending the newline) and flushes.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.write_all(line.as_bytes())?;
        self.write_all(b"\n")?;
        self.flush()
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// What one [`LineReader::tick`] produced.
pub enum Tick {
    /// A complete line (without the newline).
    Line(String),
    /// No complete line yet (timeout); `true` if a partial line is pending.
    Idle(bool),
    /// Peer closed the connection.
    Eof,
}

/// A buffered line reader that survives read timeouts: partial bytes
/// accumulate across [`tick`](LineReader::tick)s instead of being lost.
pub struct LineReader {
    reader: BufReader<Conn>,
    pending: Vec<u8>,
}

impl LineReader {
    /// Wraps a connection (typically the read half of a
    /// [`Conn::try_clone`] pair).
    pub fn new(conn: Conn) -> LineReader {
        LineReader {
            reader: BufReader::new(conn),
            pending: Vec::new(),
        }
    }

    /// The underlying connection (e.g. to adjust timeouts).
    pub fn get_ref(&self) -> &Conn {
        self.reader.get_ref()
    }

    /// One read attempt, honoring the socket's read timeout.
    ///
    /// A line flushed by EOF without a trailing newline is still served
    /// as a [`Tick::Line`] — the serve loop's lenient behavior for
    /// half-closed clients.
    pub fn tick(&mut self) -> std::io::Result<Tick> {
        match self.reader.read_until(b'\n', &mut self.pending) {
            Ok(0) => {
                if self.pending.is_empty() {
                    Ok(Tick::Eof)
                } else {
                    // EOF flushed a final unterminated line; serve it.
                    let line = String::from_utf8_lossy(&self.pending).into_owned();
                    self.pending.clear();
                    Ok(Tick::Line(line))
                }
            }
            Ok(_) => {
                // `read_until` also returns `Ok(n > 0)` when EOF (rather
                // than the delimiter) ends the read — that's the same
                // "final unterminated line" case as above, served leniently.
                if self.pending.last() == Some(&b'\n') {
                    self.pending.pop();
                    if self.pending.last() == Some(&b'\r') {
                        self.pending.pop();
                    }
                }
                let line = String::from_utf8_lossy(&self.pending).into_owned();
                self.pending.clear();
                Ok(Tick::Line(line))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_until` keeps partial bytes in `pending` across ticks.
                Ok(Tick::Idle(!self.pending.is_empty()))
            }
            Err(e) => Err(e),
        }
    }

    /// Whether a complete line is already sitting in the read buffer —
    /// answerable without touching the socket, so batch collection never
    /// blocks on a peer that has nothing more to say.
    pub fn buffered_line(&self) -> bool {
        self.pending.contains(&b'\n') || self.reader.buffer().contains(&b'\n')
    }

    /// Blocks until a full line arrives, looping over timeouts.
    /// EOF is an `UnexpectedEof` error.
    pub fn read_line_blocking(&mut self) -> std::io::Result<String> {
        loop {
            match self.tick()? {
                Tick::Line(line) => return Ok(line),
                Tick::Idle(_) => continue,
                Tick::Eof => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    ))
                }
            }
        }
    }

    /// Reads one *reply* line with strict framing: EOF — even with a
    /// partial line buffered — and read timeouts are errors, never data.
    /// This is what a proxy must use for backend replies: a half-written
    /// reply from a dying backend must fail the exchange (and trigger a
    /// retry), not be forwarded as if complete.
    pub fn read_line_strict(&mut self) -> std::io::Result<String> {
        loop {
            match self.reader.read_until(b'\n', &mut self.pending) {
                Ok(0) => {
                    let what = if self.pending.is_empty() {
                        "peer closed before replying"
                    } else {
                        "peer closed mid-reply"
                    };
                    self.pending.clear();
                    return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, what));
                }
                Ok(_) if self.pending.last() == Some(&b'\n') => {
                    self.pending.pop();
                    if self.pending.last() == Some(&b'\r') {
                        self.pending.pop();
                    }
                    let line = String::from_utf8_lossy(&self.pending).into_owned();
                    self.pending.clear();
                    return Ok(line);
                }
                // read_until returns early only on delimiter or EOF; a
                // short read without either means EOF with a partial.
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for reply",
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking TCP listener plus, on unix, an optional Unix-domain
/// listener, polled together by one accept loop.
pub struct DualListener {
    tcp: TcpListener,
    local_addr: SocketAddr,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    #[cfg(unix)]
    unix_path: Option<std::path::PathBuf>,
}

impl DualListener {
    /// Binds `addr` (TCP; port 0 picks an ephemeral port) and, when
    /// given, `unix_path` (a stale socket file from a dead process is
    /// removed first).
    pub fn bind(addr: &str, unix_path: Option<&std::path::Path>) -> std::io::Result<DualListener> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let tcp = TcpListener::bind(&addrs[..])?;
        tcp.set_nonblocking(true)?;
        let local_addr = tcp.local_addr()?;
        #[cfg(unix)]
        let unix = match unix_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        #[cfg(not(unix))]
        let _ = unix_path;
        Ok(DualListener {
            tcp,
            local_addr,
            #[cfg(unix)]
            unix,
            #[cfg(unix)]
            unix_path: unix_path.map(|p| p.to_path_buf()),
        })
    }

    /// The bound TCP address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Polls both listeners once; returns a connection if one is ready.
    pub fn poll_accept(&self) -> std::io::Result<Option<Conn>> {
        match self.tcp.accept() {
            Ok((stream, _peer)) => return Ok(Some(Conn::Tcp(stream))),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(e),
        }
        #[cfg(unix)]
        if let Some(l) = &self.unix {
            match l.accept() {
                Ok((stream, _peer)) => return Ok(Some(Conn::Unix(stream))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Removes the Unix socket file, if any (idempotent).
    pub fn cleanup(&self) {
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A line-protocol service plugged into [`serve`]: turns request lines
/// into reply lines. Implementations must be callable from many worker
/// threads at once.
pub trait LineService: Send + Sync + 'static {
    /// Handles one request line, appending the reply line (no newline)
    /// to `out`. The buffer is owned by the connection worker and reused
    /// across requests, so steady-state replies allocate nothing.
    fn handle(&self, line: &str, out: &mut String);

    /// Handles a batch of pipelined request lines in order, appending
    /// one newline-terminated reply per line to `out`. The default
    /// serves them one at a time; a proxy can override this to forward
    /// same-destination runs in one exchange.
    fn handle_batch(&self, lines: &[String], out: &mut String) {
        for l in lines {
            self.handle(l, out);
            out.push('\n');
        }
    }

    /// Whether the service wants the accept loop stopped and
    /// connections drained.
    fn draining(&self) -> bool;

    /// Called when a worker picks up a connection.
    fn on_connect(&self) {}

    /// Called when a worker is done with a connection (any exit path).
    fn on_disconnect(&self) {}
}

/// Timeouts and sizing for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker count == maximum concurrently served connections.
    pub workers: usize,
    /// Per-request I/O timeout: a peer that stalls mid-line or refuses
    /// its reply for longer than this is disconnected.
    pub io_timeout: Duration,
    /// How long a draining worker waits for already-sent bytes to
    /// surface after shutdown before closing its connection.
    pub drain_grace: Duration,
}

/// Runs the accept loop + bounded worker pool until the service reports
/// draining, then drains every worker and cleans up the listener.
pub fn serve(
    listener: DualListener,
    opts: ServeOptions,
    service: Arc<dyn LineService>,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<Conn>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(opts.workers);
    for i in 0..opts.workers.max(1) {
        let rx = rx.clone();
        let service = service.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("line-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only long enough to claim one
                    // connection (a guard in the match scrutinee would pin
                    // it for the whole serve).
                    let received = {
                        let guard = rx.lock().expect("rx poisoned");
                        guard.recv()
                    };
                    let Ok(conn) = received else {
                        break; // accept loop gone: drain done
                    };
                    serve_connection(conn, &*service, opts);
                })
                .expect("spawn worker"),
        );
    }

    while !service.draining() {
        match listener.poll_accept()? {
            Some(conn) => {
                let _ = tx.send(conn);
            }
            None => std::thread::sleep(ACCEPT_TICK),
        }
    }

    // Graceful drain: stop handing out work, let workers finish.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    listener.cleanup();
    Ok(())
}

fn serve_connection(conn: Conn, service: &dyn LineService, opts: ServeOptions) {
    service.on_connect();
    // Balance the disconnect hook on every exit path (early returns too).
    struct DisconnectGuard<'a>(&'a dyn LineService);
    impl Drop for DisconnectGuard<'_> {
        fn drop(&mut self) {
            self.0.on_disconnect();
        }
    }
    let _guard = DisconnectGuard(service);

    let _ = conn.set_read_timeout(Some(POLL_TICK));
    let _ = conn.set_write_timeout(Some(opts.io_timeout));
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(read_half);
    let mut writer = conn;
    // Time of the first byte of a partial line (per-request read timeout).
    let mut partial_since: Option<Instant> = None;
    // When draining after shutdown, the moment of the last served line.
    let mut drain_since: Option<Instant> = None;
    // Reused across iterations: the batch vector and the reply buffer
    // reach steady-state capacity once, then the loop stops allocating.
    let mut batch: Vec<String> = Vec::new();
    let mut out = String::new();

    loop {
        match reader.tick() {
            Ok(Tick::Line(line)) => {
                partial_since = None;
                // Collect whatever the peer has already pipelined into one
                // batch; `buffered_line` never touches the socket, so this
                // adds no latency for one-line-at-a-time clients.
                batch.clear();
                if !line.trim().is_empty() {
                    batch.push(line);
                }
                while batch.len() < MAX_BATCH && reader.buffered_line() {
                    match reader.tick() {
                        Ok(Tick::Line(l)) => {
                            if !l.trim().is_empty() {
                                batch.push(l);
                            }
                        }
                        _ => break,
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                out.clear();
                service.handle_batch(&batch, &mut out);
                if writer
                    .write_all(out.as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return; // peer gone mid-reply
                }
                if service.draining() {
                    // The grace window is measured from the first moment
                    // this connection observed the drain — NOT reset per
                    // served line — so shutdown is bounded even under
                    // continuous traffic (a killed-but-thread-backed
                    // backend must actually stop answering, or fault
                    // injection upstream never sees it die).
                    let since = *drain_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > opts.drain_grace {
                        return;
                    }
                }
            }
            Ok(Tick::Idle(has_partial)) => {
                if has_partial {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > opts.io_timeout {
                        return; // stalled mid-request
                    }
                } else {
                    partial_since = None;
                }
                if service.draining() {
                    // Drain: anything the peer already sent is either
                    // buffered or arrives within the grace window.
                    let since = *drain_since.get_or_insert_with(Instant::now);
                    if !has_partial && since.elapsed() > opts.drain_grace {
                        return;
                    }
                }
            }
            Ok(Tick::Eof) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LineService for Echo {
        fn handle(&self, line: &str, out: &mut String) {
            out.push_str("echo:");
            out.push_str(line);
        }
        fn draining(&self) -> bool {
            false
        }
    }

    #[test]
    fn line_reader_strict_vs_lenient_partial_at_eof() {
        let listener = DualListener::bind("127.0.0.1:0", None).expect("bind");
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let mut conn = Conn::connect_tcp(addr).expect("connect");
            conn.write_all(b"complete\npart").expect("write");
            // drop: EOF with a partial line pending
        });
        let conn = loop {
            if let Some(c) = listener.poll_accept().expect("accept") {
                break c;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        t.join().unwrap();
        let reader = conn.try_clone().expect("clone");
        // Lenient: the partial is served as a line.
        let mut lenient = LineReader::new(reader);
        assert_eq!(lenient.read_line_blocking().expect("line"), "complete");
        assert!(matches!(lenient.tick().expect("tick"), Tick::Line(l) if l == "part"));
        assert!(matches!(lenient.tick().expect("tick"), Tick::Eof));
        // Strict: a second reader over the same (now-drained) socket
        // reports EOF as an error, never a line.
        let mut strict = LineReader::new(conn);
        let err = strict.read_line_strict().expect_err("eof is an error");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn buffered_line_detects_pipelined_input_without_blocking() {
        let listener = DualListener::bind("127.0.0.1:0", None).expect("bind");
        let addr = listener.local_addr();
        let mut client = Conn::connect_tcp(addr).expect("connect");
        client.write_all(b"a\nb\n").expect("write");
        let conn = loop {
            if let Some(c) = listener.poll_accept().expect("accept") {
                break c;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut reader = LineReader::new(conn);
        assert_eq!(reader.read_line_blocking().expect("first"), "a");
        // "b\n" is already in the BufReader; no socket read needed.
        assert!(reader.buffered_line());
        assert_eq!(reader.read_line_blocking().expect("second"), "b");
        assert!(!reader.buffered_line());
    }

    #[test]
    fn serve_echoes_batches_in_order() {
        let listener = DualListener::bind("127.0.0.1:0", None).expect("bind");
        let addr = listener.local_addr();
        let service = Arc::new(Echo);
        let opts = ServeOptions {
            workers: 2,
            io_timeout: Duration::from_secs(5),
            drain_grace: Duration::from_millis(50),
        };
        // Serve in a scoped fashion: the Echo service never drains, so
        // run the loop on a thread and detach after asserting.
        let svc = service.clone();
        std::thread::spawn(move || {
            let _ = serve(listener, opts, svc);
        });
        let mut conn = Conn::connect_tcp(addr).expect("connect");
        conn.write_all(b"one\ntwo\nthree\n").expect("write");
        let mut reader = LineReader::new(conn.try_clone().expect("clone"));
        assert_eq!(reader.read_line_blocking().unwrap(), "echo:one");
        assert_eq!(reader.read_line_blocking().unwrap(), "echo:two");
        assert_eq!(reader.read_line_blocking().unwrap(), "echo:three");
    }
}
