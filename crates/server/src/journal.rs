//! Durable session journal: a write-ahead log of admitted `load`s.
//!
//! A daemon configured with `--journal-dir` appends one record per
//! successful `load` (the canonical load line plus the minted session
//! id) and one tombstone per `unload`. On restart the surviving prefix
//! is replayed through [`crate::session::SessionStore::restore_line`],
//! so a recovered daemon reports the *same* session ids and
//! byte-identical replies — and, because replay routes through the
//! store-level `IncrCompiler`, recovery cost shows up in the `incr.*`
//! counters (mostly hits for superseding loads).
//!
//! ## File format
//!
//! ```text
//! "TBAAJRN1"                                  8-byte magic header
//! [u32 le payload_len][u64 le fnv1a(payload)][payload]   per record
//! ```
//!
//! Payloads are JSON via the in-tree codec ([`crate::json`]):
//!
//! * `{"seq":N,"op":"load","sid":"s3","line":"{…}"}` — an admitted load
//!   (every successful load is journaled, hits included, so replay
//!   reproduces LRU recency by last-load order);
//! * `{"seq":N,"op":"unload","sid":"s3"}` — an explicit unload;
//! * `{"seq":N,"op":"mark","next_sid":M}` — a session-id watermark,
//!   written by compaction so ids of records it dropped are never
//!   re-minted after recovery.
//!
//! ## Durability policy
//!
//! Every append is written and flushed to the OS immediately (so a
//! `kill -9` of the daemon loses nothing — page cache survives the
//! process), and `fsync`ed every [`SYNC_EVERY`] appends (bounding the
//! window a *machine* crash can lose). Compaction rewrites the file as
//! temp-file + rename with the temp file fsynced before the rename and
//! the directory fsynced after it, so the rewrite is atomic against
//! power loss too — never worse than the [`SYNC_EVERY`] window.
//!
//! Appends are made from inside the session store's admission critical
//! section ([`crate::session::SessionStore`] holds its index lock
//! across the append), so journal order is exactly admission order
//! even under concurrent loads racing unloads.
//!
//! ## Recovery ordering guarantees
//!
//! [`scan`] accepts the longest well-formed prefix: it stops — cleanly,
//! never with an error — at the first record whose frame is truncated,
//! whose checksum mismatches, whose payload fails to parse, or whose
//! sequence number is not strictly greater than its predecessor's. The
//! one exception is an *exact* duplicate (same seq, byte-identical
//! payload — a double-append), which is skipped and counted. The
//! surviving records are folded newest-wins per content key, tombstones
//! removed, and the remainder replayed in sequence order — so a
//! capacity-K store re-evicts in journal order and ends in the same
//! LRU state the crashed daemon had.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::{parse, Value};
use crate::metrics::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};
use crate::proto::{decode_request, Request};
use crate::session::{content_hash, SessionKey};

/// File header: magic + format version.
pub const MAGIC: &[u8; 8] = b"TBAAJRN1";

/// Frame overhead per record: u32 length prefix + u64 FNV-1a checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Records larger than this are treated as torn (a corrupted length
/// prefix would otherwise ask the scanner to skip gigabytes).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Appends between `fsync`s — the bounded power-loss window.
pub const SYNC_EVERY: u64 = 8;

/// Compaction trigger: at least this many records on disk *and* fewer
/// than half of them live.
const COMPACT_MIN_RECORDS: u64 = 64;

/// The journal file inside `--journal-dir`.
pub const FILE_NAME: &str = "sessions.jrn";

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number (strictly increasing within a file).
    pub seq: u64,
    /// What happened.
    pub op: RecordOp,
}

/// The operation a [`Record`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordOp {
    /// A successful `load`: the minted session id and the canonical
    /// load line to replay.
    Load {
        /// Session id (`s3`).
        sid: String,
        /// Canonical `{"op":"load",…}` request line.
        line: String,
    },
    /// An explicit `unload` of a live session.
    Unload {
        /// Session id that was unloaded.
        sid: String,
    },
    /// Session-id watermark: recovery must mint ids ≥ `next_sid`.
    Mark {
        /// First id safe to mint.
        next_sid: u64,
    },
}

/// Why [`decode_record`] rejected the bytes at an offset. Every variant
/// means the same thing to recovery — *stop here* — but the property
/// tests pin each cause separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the frame header or the declared payload length.
    Truncated,
    /// Zero-length payload (never written; a torn frame).
    ZeroLength,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLong,
    /// FNV-1a checksum mismatch.
    BadChecksum,
    /// Checksum matched but the payload is not a well-formed record.
    BadPayload,
}

/// Encodes one record as a framed journal entry, appending to `out`.
pub fn encode_record(rec: &Record, out: &mut Vec<u8>) {
    let payload = encode_payload(rec);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&content_hash(payload.as_bytes()).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
}

fn encode_payload(rec: &Record) -> String {
    let seq = Value::Int(rec.seq as i64);
    match &rec.op {
        RecordOp::Load { sid, line } => Value::object(vec![
            ("seq", seq),
            ("op", Value::Str("load".into())),
            ("sid", Value::Str(sid.as_str().into())),
            ("line", Value::Str(line.as_str().into())),
        ]),
        RecordOp::Unload { sid } => Value::object(vec![
            ("seq", seq),
            ("op", Value::Str("unload".into())),
            ("sid", Value::Str(sid.as_str().into())),
        ]),
        RecordOp::Mark { next_sid } => Value::object(vec![
            ("seq", seq),
            ("op", Value::Str("mark".into())),
            ("next_sid", Value::Int(*next_sid as i64)),
        ]),
    }
    .encode()
}

/// Decodes the record starting at `buf[0]`. Returns the record and the
/// total bytes consumed (frame header + payload).
pub fn decode_record(buf: &[u8]) -> Result<(Record, usize), DecodeError> {
    if buf.len() < FRAME_HEADER {
        return Err(DecodeError::Truncated);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len == 0 {
        return Err(DecodeError::ZeroLength);
    }
    if len > MAX_PAYLOAD {
        return Err(DecodeError::TooLong);
    }
    if buf.len() < FRAME_HEADER + len {
        return Err(DecodeError::Truncated);
    }
    let sum = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    if content_hash(payload) != sum {
        return Err(DecodeError::BadChecksum);
    }
    let text = std::str::from_utf8(payload).map_err(|_| DecodeError::BadPayload)?;
    let rec = decode_payload(text).ok_or(DecodeError::BadPayload)?;
    Ok((rec, FRAME_HEADER + len))
}

fn decode_payload(text: &str) -> Option<Record> {
    let v = parse(text).ok()?;
    let seq = u64::try_from(v.get("seq")?.as_i64()?).ok()?;
    let op = match v.get("op")?.as_str()? {
        "load" => RecordOp::Load {
            sid: v.get("sid")?.as_str()?.to_string(),
            line: v.get("line")?.as_str()?.to_string(),
        },
        "unload" => RecordOp::Unload {
            sid: v.get("sid")?.as_str()?.to_string(),
        },
        "mark" => RecordOp::Mark {
            next_sid: u64::try_from(v.get("next_sid")?.as_i64()?).ok()?,
        },
        _ => return None,
    };
    Some(Record { seq, op })
}

/// Result of scanning a journal file's bytes.
#[derive(Debug, Default)]
pub struct Scan {
    /// Records in the surviving prefix, in file order.
    pub records: Vec<Record>,
    /// Bytes of the file covered by the surviving prefix (including the
    /// magic header).
    pub valid_bytes: usize,
    /// Whether anything after the surviving prefix was discarded.
    pub torn: bool,
    /// Exact double-appends skipped (same seq, identical payload).
    pub dup_skipped: u64,
}

/// Scans journal bytes into the longest well-formed prefix. Never
/// errors: corruption of any kind simply ends the prefix (see the
/// module docs for the exact rules).
pub fn scan(bytes: &[u8]) -> Scan {
    let mut out = Scan::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        out.torn = !bytes.is_empty();
        return out;
    }
    let mut pos = MAGIC.len();
    out.valid_bytes = pos;
    let mut last: Option<Record> = None;
    while pos < bytes.len() {
        let Ok((rec, consumed)) = decode_record(&bytes[pos..]) else {
            out.torn = true;
            break;
        };
        match &last {
            Some(prev) if rec == *prev => {
                // Exact double-append: harmless, skip.
                out.dup_skipped += 1;
                pos += consumed;
                out.valid_bytes = pos;
                continue;
            }
            Some(prev) if rec.seq <= prev.seq => {
                // Conflicting or reordered sequence number: the prefix
                // ends *before* this record.
                out.torn = true;
                break;
            }
            _ => {}
        }
        pos += consumed;
        out.valid_bytes = pos;
        last = Some(rec.clone());
        out.records.push(rec);
    }
    out
}

/// A live (not superseded, not unloaded) journaled load, in recency
/// order — the unit of replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveLoad {
    /// Content key display (`bench:ktree@1`, `src:…`) — the compaction
    /// identity: a later load of the same content supersedes this one.
    pub key: String,
    /// The session id the daemon had minted for it.
    pub sid: String,
    /// Canonical load line to replay.
    pub line: String,
}

/// What [`Journal::open`] recovered from a previous daemon's file.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Surviving loads in journal order — the replay list.
    pub loads: Vec<LiveLoad>,
    /// First session-id number safe to mint: one past the highest id
    /// named by *any* scanned record (superseded and unloaded loads
    /// and marks included). The caller must advance the store's id
    /// counter here before serving — replaying `loads` alone is not
    /// enough, because the highest-minted sid may have been unloaded
    /// pre-crash, and re-minting it would silently point a stale
    /// client at a different session.
    pub next_sid: u64,
}

/// Derives the content-key display of a canonical journaled load line.
pub fn key_of_load_line(line: &str) -> Option<String> {
    match decode_request(line).ok()? {
        Request::Load {
            source: Some(src),
            bench: None,
            ..
        } => Some(
            SessionKey::Source {
                hash: content_hash(src.as_bytes()),
            }
            .display(),
        ),
        Request::Load {
            source: None,
            bench: Some(name),
            scale,
            ..
        } => Some(
            SessionKey::Bench {
                name: name.to_string(),
                scale,
            }
            .display(),
        ),
        _ => None,
    }
}

/// Folds a scanned record prefix into the replay list plus the
/// session-id watermark (`max_sid` over every record seen, including
/// superseded ones and marks — ids must never be re-minted).
pub fn fold(records: &[Record]) -> (Vec<LiveLoad>, u64) {
    let mut live: Vec<LiveLoad> = Vec::new();
    let mut max_sid = 0u64;
    for rec in records {
        match &rec.op {
            RecordOp::Load { sid, line } => {
                if let Some(n) = sid_number(sid) {
                    max_sid = max_sid.max(n);
                }
                let Some(key) = key_of_load_line(line) else {
                    continue;
                };
                live.retain(|l| l.key != key);
                live.push(LiveLoad {
                    key,
                    sid: sid.clone(),
                    line: line.clone(),
                });
            }
            RecordOp::Unload { sid } => live.retain(|l| &l.sid != sid),
            RecordOp::Mark { next_sid } => max_sid = max_sid.max(next_sid.saturating_sub(1)),
        }
    }
    (live, max_sid)
}

fn sid_number(sid: &str) -> Option<u64> {
    sid.strip_prefix('s').and_then(|t| t.parse().ok())
}

struct JournalState {
    file: File,
    next_seq: u64,
    /// Highest session-id number ever journaled (watermark source).
    max_sid: u64,
    /// Records in the file, superseded ones included.
    records: u64,
    /// Recency-ordered mirror of the live set, so compaction never has
    /// to re-read the file.
    live: Vec<LiveLoad>,
    /// Appends since the last fsync.
    unsynced: u64,
}

/// An open journal: the append/compact half of the crash-recovery
/// story. [`Journal::open`] is the recovery half.
pub struct Journal {
    path: PathBuf,
    state: Mutex<JournalState>,
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    compactions: Arc<Counter>,
    fsyncs: Arc<Counter>,
    errors: Arc<Counter>,
    /// Wall time of each append (lock + encode + write + any fsync or
    /// compaction). Kept separate from `compile_us`, which by design
    /// stops before admission journals the load — this histogram is
    /// where the WAL cost shows up instead.
    append_us: Arc<Histogram>,
}

impl Journal {
    /// Opens (creating if needed) the journal under `dir`, recovering
    /// whatever a previous daemon left behind. Returns the journal plus
    /// a [`Recovery`]: the surviving loads for the caller to replay
    /// through the store — in journal order, so LRU eviction during
    /// replay matches the pre-crash daemon — and the session-id
    /// watermark the store must advance to before serving. The
    /// recovered file is rewritten compacted.
    ///
    /// Registers (at zero) every `journal.*` counter, so `stats`
    /// carries them from the first request whenever journaling is on.
    pub fn open(dir: &Path, metrics: &Registry) -> std::io::Result<(Journal, Recovery)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(FILE_NAME);
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scanned = scan(&existing);
        let (live, max_sid) = fold(&scanned.records);

        // Eagerly register the counters recovery and replay report into.
        metrics.counter("journal.replayed").add(0);
        metrics.counter("journal.recovered_records").add(scanned.records.len() as u64);
        metrics.counter("journal.torn").add(u64::from(scanned.torn));
        metrics.counter("journal.dup_skipped").add(scanned.dup_skipped);
        let appends = metrics.counter("journal.appends");
        let bytes = metrics.counter("journal.bytes");
        let compactions = metrics.counter("journal.compactions");
        let fsyncs = metrics.counter("journal.fsyncs");
        let errors = metrics.counter("journal.errors");
        let append_us = metrics.histogram("journal.append_us", LATENCY_US_BUCKETS);

        // Rewrite compacted: a mark preserving the id watermark, then
        // the live loads renumbered from seq 2. Dropping superseded or
        // torn bytes on open counts as a compaction.
        let compacted = scanned.torn
            || scanned.dup_skipped > 0
            || scanned.records.len() > live.len() + 1;
        let mut next_seq = 1u64;
        let mut buf: Vec<u8> = Vec::with_capacity(existing.len().min(1 << 20));
        buf.extend_from_slice(MAGIC);
        if max_sid > 0 {
            encode_record(
                &Record {
                    seq: next_seq,
                    op: RecordOp::Mark {
                        next_sid: max_sid + 1,
                    },
                },
                &mut buf,
            );
            next_seq += 1;
        }
        for load in &live {
            encode_record(
                &Record {
                    seq: next_seq,
                    op: RecordOp::Load {
                        sid: load.sid.clone(),
                        line: load.line.clone(),
                    },
                },
                &mut buf,
            );
            next_seq += 1;
        }
        let file = replace_file_durably(dir, &path, &buf)?;
        bytes.add(buf.len() as u64);
        if compacted {
            compactions.inc();
        }

        let journal = Journal {
            path,
            state: Mutex::new(JournalState {
                file,
                next_seq,
                max_sid,
                records: live.len() as u64 + u64::from(max_sid > 0),
                live: live.clone(),
                unsynced: 0,
            }),
            appends,
            bytes,
            compactions,
            fsyncs,
            errors,
            append_us,
        };
        Ok((
            journal,
            Recovery {
                loads: live,
                next_sid: max_sid + 1,
            },
        ))
    }

    /// Journals one admitted load. `key` is the content-key display,
    /// `line` the canonical load request line. Best-effort: an I/O
    /// failure is counted (`journal.errors`), never surfaced to the
    /// client whose load already succeeded.
    pub fn append_load(&self, key: &str, sid: &str, line: &str) {
        let t0 = std::time::Instant::now();
        let mut st = self.state.lock().expect("journal poisoned");
        let rec = Record {
            seq: st.next_seq,
            op: RecordOp::Load {
                sid: sid.to_string(),
                line: line.to_string(),
            },
        };
        if let Some(n) = sid_number(sid) {
            st.max_sid = st.max_sid.max(n);
        }
        st.live.retain(|l| l.key != key);
        st.live.push(LiveLoad {
            key: key.to_string(),
            sid: sid.to_string(),
            line: line.to_string(),
        });
        self.write_record(&mut st, &rec);
        self.maybe_compact(&mut st);
        self.append_us.observe_duration(t0.elapsed());
    }

    /// Journals an `unload` tombstone.
    pub fn append_unload(&self, sid: &str) {
        let t0 = std::time::Instant::now();
        let mut st = self.state.lock().expect("journal poisoned");
        let rec = Record {
            seq: st.next_seq,
            op: RecordOp::Unload {
                sid: sid.to_string(),
            },
        };
        st.live.retain(|l| l.sid != sid);
        self.write_record(&mut st, &rec);
        self.maybe_compact(&mut st);
        self.append_us.observe_duration(t0.elapsed());
    }

    /// Forces an fsync (used on graceful shutdown).
    pub fn sync(&self) {
        let mut st = self.state.lock().expect("journal poisoned");
        if st.unsynced > 0 && st.file.sync_data().is_ok() {
            self.fsyncs.inc();
            st.unsynced = 0;
        }
    }

    /// The journal file path (for tests and the fault harness).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_record(&self, st: &mut JournalState, rec: &Record) {
        let mut buf = Vec::new();
        encode_record(rec, &mut buf);
        match st.file.write_all(&buf).and_then(|()| st.file.flush()) {
            Ok(()) => {
                st.next_seq += 1;
                st.records += 1;
                st.unsynced += 1;
                self.appends.inc();
                self.bytes.add(buf.len() as u64);
                if st.unsynced >= SYNC_EVERY {
                    if st.file.sync_data().is_ok() {
                        self.fsyncs.inc();
                    }
                    st.unsynced = 0;
                }
            }
            Err(_) => self.errors.inc(),
        }
    }

    /// Rewrites the file to just a mark + the live set once superseded
    /// records dominate (≥ [`COMPACT_MIN_RECORDS`] on disk, under half
    /// live). Power-loss atomic via [`replace_file_durably`]; original
    /// ids survive in the mark, sequence numbers restart at 1.
    fn maybe_compact(&self, st: &mut JournalState) {
        if st.records < COMPACT_MIN_RECORDS || st.live.len() as u64 * 2 >= st.records {
            return;
        }
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(MAGIC);
        let mut next_seq = 1u64;
        if st.max_sid > 0 {
            encode_record(
                &Record {
                    seq: next_seq,
                    op: RecordOp::Mark {
                        next_sid: st.max_sid + 1,
                    },
                },
                &mut buf,
            );
            next_seq += 1;
        }
        for load in &st.live {
            encode_record(
                &Record {
                    seq: next_seq,
                    op: RecordOp::Load {
                        sid: load.sid.clone(),
                        line: load.line.clone(),
                    },
                },
                &mut buf,
            );
            next_seq += 1;
        }
        let dir = self.path.parent().expect("journal path has a parent");
        match replace_file_durably(dir, &self.path, &buf) {
            Ok(file) => {
                st.file = file;
                st.next_seq = next_seq;
                st.records = st.live.len() as u64 + u64::from(st.max_sid > 0);
                st.unsynced = 0;
                self.compactions.inc();
                self.bytes.add(buf.len() as u64);
                self.fsyncs.inc();
            }
            Err(_) => self.errors.inc(),
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.sync();
    }
}

/// Durably replaces the journal file with `buf` and returns a fresh
/// append handle. Rename alone only orders the replacement against
/// other *operations*, not against power loss: the tmp file's bytes
/// must reach disk before the rename makes them the journal, and the
/// rename itself lives in the directory, so both are fsynced — tmp
/// file before the rename, parent directory after. A crash at any
/// point leaves either the complete old file or the complete new one,
/// never an empty or partial journal.
fn replace_file_durably(dir: &Path, path: &Path, buf: &[u8]) -> std::io::Result<File> {
    let tmp = dir.join(format!("{FILE_NAME}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(buf)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    OpenOptions::new().append(true).open(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_rec(seq: u64, sid: &str, bench: &str) -> Record {
        Record {
            seq,
            op: RecordOp::Load {
                sid: sid.into(),
                line: format!(r#"{{"op":"load","bench":"{bench}","scale":1}}"#),
            },
        }
    }

    fn encode_all(recs: &[Record]) -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        for r in recs {
            encode_record(r, &mut buf);
        }
        buf
    }

    #[test]
    fn round_trips_each_record_kind() {
        for rec in [
            load_rec(1, "s1", "ktree"),
            Record {
                seq: 2,
                op: RecordOp::Unload { sid: "s1".into() },
            },
            Record {
                seq: 3,
                op: RecordOp::Mark { next_sid: 17 },
            },
        ] {
            let mut buf = Vec::new();
            encode_record(&rec, &mut buf);
            let (back, used) = decode_record(&buf).expect("decodes");
            assert_eq!(back, rec);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn scan_stops_cleanly_at_torn_tail() {
        let recs = [load_rec(1, "s1", "ktree"), load_rec(2, "s2", "slisp")];
        let mut bytes = encode_all(&recs);
        bytes.truncate(bytes.len() - 3);
        let scanned = scan(&bytes);
        assert_eq!(scanned.records, vec![recs[0].clone()]);
        assert!(scanned.torn);
    }

    #[test]
    fn scan_skips_exact_duplicates_but_stops_on_conflicts() {
        let a = load_rec(1, "s1", "ktree");
        let b = load_rec(2, "s2", "slisp");
        let dup = encode_all(&[a.clone(), a.clone(), b.clone()]);
        let scanned = scan(&dup);
        assert_eq!(scanned.records, vec![a.clone(), b.clone()]);
        assert_eq!(scanned.dup_skipped, 1);
        assert!(!scanned.torn);

        // Same seq, different payload: prefix ends before the conflict.
        let conflict = encode_all(&[a.clone(), load_rec(1, "s9", "format"), b]);
        let scanned = scan(&conflict);
        assert_eq!(scanned.records, vec![a]);
        assert!(scanned.torn);
    }

    #[test]
    fn fold_compacts_superseded_and_unloaded() {
        let src = r#"{"op":"load","source":"MODULE X; END X."}"#;
        let records = vec![
            load_rec(1, "s1", "ktree"),
            Record {
                seq: 2,
                op: RecordOp::Load {
                    sid: "s2".into(),
                    line: src.into(),
                },
            },
            // ktree re-loaded after eviction: supersedes s1, moves to back.
            load_rec(3, "s3", "ktree"),
            Record {
                seq: 4,
                op: RecordOp::Unload { sid: "s2".into() },
            },
        ];
        let (live, max_sid) = fold(&records);
        assert_eq!(max_sid, 3);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].sid, "s3");
        assert_eq!(live[0].key, "bench:ktree@1");
    }

    #[test]
    fn mark_floors_the_id_watermark() {
        let (live, max_sid) = fold(&[
            Record {
                seq: 1,
                op: RecordOp::Mark { next_sid: 42 },
            },
            load_rec(2, "s5", "ktree"),
        ]);
        assert_eq!(max_sid, 41, "mark outranks the highest live sid");
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn open_recovers_appends_across_reopen() {
        let dir = std::env::temp_dir().join(format!("tbaa-jrn-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let metrics = Registry::new();
        {
            let (journal, recovered) = Journal::open(&dir, &metrics).expect("open");
            assert!(recovered.loads.is_empty());
            journal.append_load(
                "bench:ktree@1",
                "s1",
                r#"{"op":"load","bench":"ktree","scale":1}"#,
            );
            journal.append_load(
                "bench:slisp@1",
                "s2",
                r#"{"op":"load","bench":"slisp","scale":1}"#,
            );
            journal.append_unload("s1");
        }
        let metrics2 = Registry::new();
        let (_journal, recovered) = Journal::open(&dir, &metrics2).expect("reopen");
        assert_eq!(recovered.loads.len(), 1);
        assert_eq!(recovered.loads[0].sid, "s2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_watermark_covers_an_unloaded_top_sid() {
        // load s1, load s2, unload s2, crash: the replay list is just
        // s1, but the watermark must still cover s2 — otherwise the
        // next fresh load would re-mint it and a stale client's s2
        // would silently resolve to a different session.
        let dir = std::env::temp_dir().join(format!(
            "tbaa-jrn-watermark-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let (journal, _) = Journal::open(&dir, &Registry::new()).expect("open");
            journal.append_load(
                "bench:ktree@1",
                "s1",
                r#"{"op":"load","bench":"ktree","scale":1}"#,
            );
            journal.append_load(
                "bench:slisp@1",
                "s2",
                r#"{"op":"load","bench":"slisp","scale":1}"#,
            );
            journal.append_unload("s2");
        }
        let (_journal, recovered) = Journal::open(&dir, &Registry::new()).expect("reopen");
        assert_eq!(recovered.loads.len(), 1);
        assert_eq!(recovered.loads[0].sid, "s1");
        assert_eq!(
            recovered.next_sid, 3,
            "the watermark covers the unloaded s2, not just the replayed s1"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
