//! # tbaa-server — `tbaad`, a persistent concurrent alias-query service
//!
//! Every other entry point in this workspace pays a full compile per
//! alias question: `tbaac` recompiles the program on each invocation,
//! and the evaluation `Engine`'s caches die with the `paper-tables`
//! process. This crate turns the paper's analyses (TypeDecl /
//! FieldTypeDecl / SMFieldTypeRefs — Diwan, McKinley & Moss, PLDI 1998)
//! into a long-lived service: programs are compiled **once** into
//! cached sessions, analyses are memoized per `(level, world)`, and any
//! number of clients query `may_alias` interactively over a trivial
//! wire protocol.
//!
//! ## The protocol
//!
//! Newline-delimited JSON over TCP (and, on unix, an optional
//! Unix-domain socket). One request object per line, one reply object
//! per line; see [`proto`] for the verb table. A session survives
//! across connections, so an IDE-style client can `load` once and issue
//! thousands of point or batched queries without ever re-compiling:
//!
//! ```text
//! → {"op":"load","bench":"ktree","scale":2}
//! ← {"ok":true,"session":"s1","key":"bench:ktree@2","cached":false,...}
//! → {"op":"alias","session":"s1","pairs":[["n.left","n.right"],["n.left","m.key"]]}
//! ← {"ok":true,"session":"s1","level":"SMFieldTypeRefs","world":"Closed","results":[true,false]}
//! ```
//!
//! ## Architecture
//!
//! * [`json`] — hand-rolled minimal JSON (the workspace is path-only);
//! * [`proto`] — request/reply schema over [`json::Value`];
//! * [`metrics`] — atomic counters / gauges / histograms, snapshot to
//!   JSON via the `stats` verb (reusable by any other subsystem);
//! * [`session`] — content-keyed LRU session cache built on the shared
//!   [`tbaa::memo::Memo`] (the same exactly-once discipline as the
//!   evaluation engine in `crates/bench`);
//! * [`net`] — the shared transport layer (duplex connections, line
//!   readers, dual TCP/Unix listeners, the accept-loop/worker-pool
//!   skeleton) used by both `tbaad` and `tbaa-router`;
//! * [`journal`] — the durable session journal (`--journal-dir`):
//!   checksummed write-ahead log of admitted loads, compaction, and
//!   crash recovery that replays the surviving prefix through the
//!   store's incremental compiler;
//! * [`fault`] — seeded fault-schedule harness that injects torn
//!   records, truncations, bit-flips, and duplicate sequence numbers
//!   into journal files, so recovery edge cases are deterministic
//!   unit tests;
//! * [`reply`] — typed reply decoding ([`Reply`], [`ErrCode`]);
//! * [`server`] — request dispatch, `catch_unwind` request isolation,
//!   graceful drain on `shutdown`, on top of [`net::serve`];
//! * [`client`] — a blocking [`Client`] used by `tbaac query`, the
//!   router, and the integration tests.
//!
//! Run it: `tbaad --addr 127.0.0.1:4980` (or `tbaac serve`), then
//! `tbaac query --bench ktree alias n.left n.right`.

pub mod client;
pub mod fault;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod reply;
pub mod server;
pub mod session;

#[allow(deprecated)]
pub use server::Config;

pub use client::{Client, ClientError};
pub use metrics::Registry;
pub use reply::{
    AliasReply, ErrCode, ErrorReply, LoadReply, PairsReply, Reply, RleReply, StatsReply,
    WireDiagnostic,
};
pub use server::{Server, ServerConfig, ServerConfigBuilder, ServerHandle, ServerState};
pub use session::{Session, SessionKey, SessionStore};
