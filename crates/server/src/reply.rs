//! Typed protocol replies.
//!
//! Every wire reply line decodes into a [`Reply`], discriminated by the
//! fields the server puts on it (the protocol has no reply-type tag;
//! field presence is the tag). The raw line is kept on every variant so
//! byte-differential harnesses can compare wire bytes, not just decoded
//! values.

use crate::json::{parse, Value};

/// Machine-matchable error categories, parsed from the wire `kind`.
///
/// [`ErrCode::Other`] absorbs kinds newer than this client; match on
/// [`ErrorReply::kind`] for exact forward-compatible dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line was not valid JSON.
    Parse,
    /// The request violated the protocol (unknown op, bad fields).
    Proto,
    /// The source failed to compile (diagnostics attached).
    Compile,
    /// Unknown benchmark name.
    NoBench,
    /// The session id is not live (never existed, evicted, unloaded).
    NoSession,
    /// An access path the session's program does not contain.
    UnknownPath,
    /// The request panicked server-side (contained; worker lives on).
    Panic,
    /// A router could not reach the owning backend after retries.
    Unavailable,
    /// Any kind this client does not know.
    Other,
}

impl ErrCode {
    /// Maps a wire `kind` string to its code.
    pub fn from_kind(kind: &str) -> ErrCode {
        match kind {
            "parse" => ErrCode::Parse,
            "proto" => ErrCode::Proto,
            "compile" => ErrCode::Compile,
            "no_bench" => ErrCode::NoBench,
            "no_session" => ErrCode::NoSession,
            "unknown_path" => ErrCode::UnknownPath,
            "panic" => ErrCode::Panic,
            "unavailable" => ErrCode::Unavailable,
            _ => ErrCode::Other,
        }
    }
}

/// One front-end diagnostic as carried over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Compiler phase (`lex`, `parse`, `check`, `lower`).
    pub phase: String,
    /// Byte span start.
    pub start: i64,
    /// Byte span end.
    pub end: i64,
    /// The message.
    pub message: String,
}

/// A structured `{"ok":false,...}` reply.
#[derive(Debug, Clone)]
pub struct ErrorReply {
    /// The machine-matchable category of [`ErrorReply::kind`].
    pub code: ErrCode,
    /// The wire `kind` string, verbatim.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// Structured compiler diagnostics, when `kind == "compile"`.
    pub diagnostics: Vec<WireDiagnostic>,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `load` reply.
#[derive(Debug, Clone)]
pub struct LoadReply {
    /// Session id to use in subsequent queries.
    pub session: String,
    /// Whether the program was already warm in the server's cache.
    pub cached: bool,
    /// Stable content key (`bench:ktree@2`, `src:…`).
    pub key: String,
    /// Heap reference sites in the program.
    pub heap_refs: i64,
    /// Addressable access paths (only when requested via `paths:true`).
    pub paths: Vec<String>,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `alias` reply.
#[derive(Debug, Clone)]
pub struct AliasReply {
    /// One verdict per queried pair, in request order.
    pub results: Vec<bool>,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `pairs` reply (Table-5 style counts).
#[derive(Debug, Clone)]
pub struct PairsReply {
    /// Heap reference expressions in the program.
    pub references: i64,
    /// Intraprocedural may-alias pairs.
    pub local_pairs: i64,
    /// Whole-program may-alias pairs.
    pub global_pairs: i64,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `rle` reply (static RLE report).
#[derive(Debug, Clone)]
pub struct RleReply {
    /// Loads hoisted out of loops.
    pub hoisted: i64,
    /// Loads replaced by register references.
    pub eliminated: i64,
    /// Total removed (the Table 6 metric).
    pub removed: i64,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `stats` reply.
#[derive(Debug, Clone)]
pub struct StatsReply {
    /// Microseconds since the server bound its listeners (always ≥ 1).
    pub uptime_us: i64,
    /// Live sessions.
    pub live_sessions: i64,
    /// Session capacity (LRU bound).
    pub session_capacity: i64,
    /// The full decoded reply object (counters, gauges, histograms,
    /// engines, and — through a router — the merged `router` section).
    pub value: Value<'static>,
    /// The raw reply line.
    pub raw: String,
}

impl StatsReply {
    /// A counter from the `stats.counters` section (0 when absent).
    pub fn counter(&self, name: &str) -> i64 {
        self.section("counters", name)
    }

    /// A gauge from the `stats.gauges` section (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.section("gauges", name)
    }

    fn section(&self, section: &str, name: &str) -> i64 {
        self.value
            .get("stats")
            .and_then(|s| s.get(section))
            .and_then(|c| c.get(name))
            .and_then(Value::as_i64)
            .unwrap_or(0)
    }
}

/// One decoded reply line, success or failure.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A `load` succeeded.
    Loaded(LoadReply),
    /// An `alias` batch was answered.
    Alias(AliasReply),
    /// A `pairs` count was answered.
    Pairs(PairsReply),
    /// An `rle` report was produced.
    Rle(RleReply),
    /// A `stats` snapshot.
    Stats(StatsReply),
    /// An `unload` was processed; `unloaded` says whether it was live.
    Unloaded {
        /// Whether the session was live.
        unloaded: bool,
        /// The raw reply line.
        raw: String,
    },
    /// The server acknowledged `shutdown` and is draining.
    Draining {
        /// The raw reply line.
        raw: String,
    },
    /// The server answered `{"ok":false,...}`.
    Err(ErrorReply),
}

fn int(v: &Value, key: &str) -> i64 {
    v.get(key).and_then(Value::as_i64).unwrap_or(-1)
}

fn text(v: &Value, key: &str) -> String {
    v.get(key).and_then(Value::as_str).unwrap_or("").to_string()
}

impl Reply {
    /// Decodes one raw reply line. Fails (with a description) only when
    /// the line is not a protocol reply at all — a server error is a
    /// successful decode to [`Reply::Err`].
    pub fn decode(raw: &str) -> Result<Reply, String> {
        let v = parse(raw).map_err(|e| format!("bad reply: {e}: {raw}"))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => {}
            Some(false) => return Ok(Reply::Err(decode_error(&v, raw))),
            None => return Err(format!("reply without `ok`: {raw}")),
        }
        // Field presence is the reply-type tag.
        if v.get("results").is_some() {
            return Ok(Reply::Alias(AliasReply {
                results: v
                    .get("results")
                    .and_then(Value::as_array)
                    .map(|a| a.iter().map(|r| r.as_bool().unwrap_or(false)).collect())
                    .unwrap_or_default(),
                raw: raw.to_string(),
            }));
        }
        if v.get("references").is_some() {
            return Ok(Reply::Pairs(PairsReply {
                references: int(&v, "references"),
                local_pairs: int(&v, "local_pairs"),
                global_pairs: int(&v, "global_pairs"),
                raw: raw.to_string(),
            }));
        }
        if v.get("hoisted").is_some() {
            return Ok(Reply::Rle(RleReply {
                hoisted: int(&v, "hoisted"),
                eliminated: int(&v, "eliminated"),
                removed: int(&v, "removed"),
                raw: raw.to_string(),
            }));
        }
        if v.get("cached").is_some() {
            return Ok(Reply::Loaded(LoadReply {
                session: text(&v, "session"),
                cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
                key: text(&v, "key"),
                heap_refs: int(&v, "heap_refs"),
                paths: v
                    .get("paths")
                    .and_then(Value::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Value::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default(),
                raw: raw.to_string(),
            }));
        }
        if v.get("stats").is_some() {
            let sessions = v.get("sessions");
            return Ok(Reply::Stats(StatsReply {
                uptime_us: int(&v, "uptime_us"),
                live_sessions: sessions
                    .and_then(|s| s.get("live"))
                    .and_then(Value::as_i64)
                    .unwrap_or(0),
                session_capacity: sessions
                    .and_then(|s| s.get("capacity"))
                    .and_then(Value::as_i64)
                    .unwrap_or(0),
                value: v.into_owned(),
                raw: raw.to_string(),
            }));
        }
        if let Some(unloaded) = v.get("unloaded").and_then(Value::as_bool) {
            return Ok(Reply::Unloaded {
                unloaded,
                raw: raw.to_string(),
            });
        }
        if v.get("draining").is_some() {
            return Ok(Reply::Draining {
                raw: raw.to_string(),
            });
        }
        Err(format!("unrecognized ok reply shape: {raw}"))
    }

    /// The raw wire line this reply decoded from.
    pub fn raw(&self) -> &str {
        match self {
            Reply::Loaded(r) => &r.raw,
            Reply::Alias(r) => &r.raw,
            Reply::Pairs(r) => &r.raw,
            Reply::Rle(r) => &r.raw,
            Reply::Stats(r) => &r.raw,
            Reply::Unloaded { raw, .. } | Reply::Draining { raw } => raw,
            Reply::Err(e) => &e.raw,
        }
    }

    /// Promotes [`Reply::Err`] to a `Result` error, passing every
    /// success variant through.
    pub fn into_result(self) -> Result<Reply, ErrorReply> {
        match self {
            Reply::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

fn decode_error(v: &Value, raw: &str) -> ErrorReply {
    let err = v.get("error");
    let get = |k: &str| {
        err.and_then(|e| e.get(k))
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let diagnostics = err
        .and_then(|e| e.get("diagnostics"))
        .and_then(Value::as_array)
        .map(|ds| {
            ds.iter()
                .map(|d| WireDiagnostic {
                    phase: text(d, "phase"),
                    start: d.get("start").and_then(Value::as_i64).unwrap_or(-1),
                    end: d.get("end").and_then(Value::as_i64).unwrap_or(-1),
                    message: text(d, "message"),
                })
                .collect()
        })
        .unwrap_or_default();
    let kind = get("kind");
    ErrorReply {
        code: ErrCode::from_kind(&kind),
        kind,
        message: get("message"),
        diagnostics,
        raw: raw.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type ShapeCheck = fn(&Reply) -> bool;

    #[test]
    fn decode_discriminates_every_reply_shape() {
        let cases: Vec<(&str, ShapeCheck)> = vec![
            (
                r#"{"ok":true,"session":"s1","key":"bench:ktree@1","cached":false,"funcs":3,"instrs":10,"heap_refs":4}"#,
                |r| matches!(r, Reply::Loaded(l) if l.session == "s1" && !l.cached),
            ),
            (
                r#"{"ok":true,"session":"s1","level":"SMFieldTypeRefs","world":"Closed","results":[true,false]}"#,
                |r| matches!(r, Reply::Alias(a) if a.results == vec![true, false]),
            ),
            (
                r#"{"ok":true,"session":"s1","level":"TypeDecl","world":"Open","references":9,"local_pairs":3,"global_pairs":7}"#,
                |r| matches!(r, Reply::Pairs(p) if p.references == 9 && p.global_pairs == 7),
            ),
            (
                r#"{"ok":true,"session":"s1","level":"TypeDecl","world":"Open","hoisted":1,"eliminated":2,"removed":3}"#,
                |r| matches!(r, Reply::Rle(x) if x.removed == 3),
            ),
            (
                r#"{"ok":true,"uptime_us":42,"stats":{"counters":{"requests.alias":5}},"sessions":{"live":2,"capacity":32},"engines":{}}"#,
                |r| {
                    matches!(r, Reply::Stats(s)
                        if s.uptime_us == 42 && s.live_sessions == 2 && s.counter("requests.alias") == 5)
                },
            ),
            (r#"{"ok":true,"unloaded":true}"#, |r| {
                matches!(r, Reply::Unloaded { unloaded: true, .. })
            }),
            (r#"{"ok":true,"draining":true}"#, |r| {
                matches!(r, Reply::Draining { .. })
            }),
        ];
        for (raw, check) in cases {
            let reply = Reply::decode(raw).expect(raw);
            assert!(check(&reply), "wrong variant for {raw}: {reply:?}");
            assert_eq!(reply.raw(), raw);
        }
    }

    #[test]
    fn decode_errors_are_typed() {
        let raw = r#"{"ok":false,"error":{"kind":"no_session","message":"no live session `s9`"}}"#;
        let Reply::Err(e) = Reply::decode(raw).unwrap() else {
            panic!("expected Err variant");
        };
        assert_eq!(e.code, ErrCode::NoSession);
        assert_eq!(e.kind, "no_session");
        assert!(e.message.contains("s9"));
        assert!(e.diagnostics.is_empty());

        let raw = r#"{"ok":false,"error":{"kind":"compile","message":"2 errors","diagnostics":[{"phase":"parse","start":0,"end":6,"message":"bad"}]}}"#;
        let Reply::Err(e) = Reply::decode(raw).unwrap() else {
            panic!("expected Err variant");
        };
        assert_eq!(e.code, ErrCode::Compile);
        assert_eq!(e.diagnostics.len(), 1);
        assert_eq!(e.diagnostics[0].phase, "parse");

        let Reply::Err(e) =
            Reply::decode(r#"{"ok":false,"error":{"kind":"from_the_future","message":"?"}}"#)
                .unwrap()
        else {
            panic!("expected Err variant");
        };
        assert_eq!(e.code, ErrCode::Other);
        assert_eq!(e.kind, "from_the_future");
    }

    #[test]
    fn junk_is_a_decode_failure_not_a_variant() {
        assert!(Reply::decode("not json").is_err());
        assert!(Reply::decode(r#"{"no_ok_field":1}"#).is_err());
        assert!(Reply::decode(r#"{"ok":true,"mystery":1}"#).is_err());
    }
}
