//! The `tbaad` daemon: accept loop, worker pool, request dispatch.
//!
//! Clients speak the newline-delimited JSON protocol of [`crate::proto`]
//! over TCP (always) and, on unix, optionally over a Unix-domain socket.
//! The accept loop, worker pool, and connection plumbing live in
//! [`crate::net`] (shared with `tbaa-router`); this module owns request
//! dispatch against the session store.
//!
//! Failure isolation: every request is dispatched inside
//! [`std::panic::catch_unwind`], so a panicking compile or analysis
//! produces a structured `{"ok":false,"error":{"kind":"panic",..}}`
//! reply and the worker lives on — one poisoned request can never take
//! down another client's session (the session cache's memo slots are
//! panic-safe: a panicked build leaves the slot unset for retry).
//!
//! Shutdown is graceful: the `shutdown` verb flips a flag; the accept
//! loop stops taking connections, and each worker *drains* its
//! connection — requests already sent (buffered in the socket) are still
//! served and replied to — before closing. [`Server::run`] returns once
//! every worker has drained.

use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::fmt::Write as _;

use tbaa::analysis::{AliasAnalysis, Level};
use tbaa::{census_alias_pairs, World};
use tbaa_opt::rle::run_rle;

use crate::journal::Journal;
use crate::json::{write_json_string, Value};
use crate::metrics::{Registry, LATENCY_US_BUCKETS};
use crate::net::{self, DualListener, LineService, ServeOptions};
use crate::proto::{
    self, compile_error_reply, decode_request, error_reply, ok_reply, Request,
};
use crate::session::{Session, SessionStore};

/// Server configuration. `Default` is suitable for tests and local use;
/// for anything else, prefer [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Optional Unix-domain socket path (unix only; ignored elsewhere).
    pub unix_path: Option<std::path::PathBuf>,
    /// Worker count == maximum concurrently served connections.
    pub workers: usize,
    /// Maximum live sessions (LRU beyond this).
    pub session_capacity: usize,
    /// Per-request I/O timeout: a peer that stalls mid-line or refuses
    /// to accept its reply for longer than this is disconnected.
    pub io_timeout: Duration,
    /// How long a draining worker waits for already-sent bytes to
    /// surface after `shutdown` before closing its connection.
    pub drain_grace: Duration,
    /// Directory for the durable session journal ([`crate::journal`]).
    /// `None` (the default) disables journaling; with a directory set,
    /// admitted loads are logged and replayed on restart, so a daemon
    /// killed mid-run comes back with the same session ids.
    pub journal_dir: Option<std::path::PathBuf>,
    /// Worker-thread budget for cold-compile lowering fan-out and
    /// row-parallel engine builds. `0` (the default) means one worker
    /// per host core; output is byte-identical at any setting.
    pub compile_threads: usize,
    /// Engines to build eagerly right after a load is admitted: `0`
    /// disables prewarming, `1` (the default) builds the default
    /// `(level, world)` engine so the first query pays no engine build.
    pub prewarm: usize,
}

/// The old name of [`ServerConfig`].
#[deprecated(since = "0.2.0", note = "renamed to `ServerConfig`; build one with `ServerConfig::builder()`")]
pub type Config = ServerConfig;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            unix_path: None,
            workers: 16,
            session_capacity: 32,
            io_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_millis(500),
            journal_dir: None,
            compile_threads: 0,
            prewarm: 1,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`], mirroring
    /// `OptOptions::builder()` so daemon and router share one config
    /// idiom.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`]; see [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// TCP bind address (port 0 for ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Unix-domain socket path (unix only; ignored elsewhere).
    pub fn unix_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.unix_path = Some(path.into());
        self
    }

    /// Worker count == maximum concurrently served connections.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Maximum live sessions (LRU beyond this).
    pub fn session_capacity(mut self, n: usize) -> Self {
        self.config.session_capacity = n;
        self
    }

    /// Per-request I/O timeout.
    pub fn io_timeout(mut self, d: Duration) -> Self {
        self.config.io_timeout = d;
        self
    }

    /// Post-shutdown drain window per connection.
    pub fn drain_grace(mut self, d: Duration) -> Self {
        self.config.drain_grace = d;
        self
    }

    /// Durable session-journal directory (enables crash recovery).
    pub fn journal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.journal_dir = Some(dir.into());
        self
    }

    /// Worker-thread budget for compiles (0 = one per host core).
    pub fn compile_threads(mut self, n: usize) -> Self {
        self.config.compile_threads = n;
        self
    }

    /// Engines to prewarm per admitted load (0 = off, 1 = default).
    pub fn prewarm(mut self, n: usize) -> Self {
        self.config.prewarm = n;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// Shared server state: sessions, metrics, the shutdown flag.
pub struct ServerState {
    store: SessionStore,
    journal: Option<Arc<Journal>>,
    metrics: Arc<Registry>,
    shutdown: AtomicBool,
    started: Instant,
    /// Engines to build eagerly after each admitted load (0 = off).
    prewarm: usize,
}

impl ServerState {
    /// `started` is the uptime epoch: [`Server::bind`] passes the moment
    /// the listeners were bound, so `stats` reports a meaningful
    /// `uptime_us` from the very first request.
    ///
    /// With a `journal_dir` configured this is also where crash
    /// recovery happens — the surviving journal prefix is replayed
    /// through the store (and its incremental compiler) *before* any
    /// listener accepts a connection, so the first client already sees
    /// the pre-crash session ids.
    fn new(config: &ServerConfig, started: Instant) -> std::io::Result<Self> {
        let metrics = Arc::new(Registry::new());
        let store = SessionStore::new(config.session_capacity, metrics.clone())
            .with_compile_threads(config.compile_threads);
        let journal = match &config.journal_dir {
            None => None,
            Some(dir) => {
                let (journal, recovery) = Journal::open(dir, &metrics)?;
                // Apply the session-id watermark before anything else:
                // the highest-minted pre-crash sid may belong to an
                // unloaded session the replay below never touches, and
                // re-minting it would hand a stale client's id to a
                // different session.
                store.reserve_ids(recovery.next_sid);
                let replayed = metrics.counter("journal.replayed");
                let failures = metrics.counter("journal.replay_failures");
                for load in recovery.loads {
                    match store.restore_line(&load.sid, &load.line) {
                        Ok(()) => replayed.inc(),
                        // A journaled load that no longer compiles (or
                        // names a vanished bench) is dropped, never fatal:
                        // recovery serves the sessions that still make
                        // sense and counts the rest.
                        Err(_) => failures.inc(),
                    }
                }
                // Attach only after replay: the restored loads are
                // already in the freshly compacted file. From here on
                // the store journals every admission and unload itself,
                // inside its admission critical section.
                let journal = Arc::new(journal);
                store.attach_journal(journal.clone());
                Some(journal)
            }
        };
        Ok(ServerState {
            store,
            journal,
            metrics,
            shutdown: AtomicBool::new(false),
            started,
            prewarm: config.prewarm,
        })
    }

    /// The durable session journal, when `--journal-dir` is configured.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_deref()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (same effect as the wire verb).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The metrics registry (for embedding or inspection).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The session store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    config: ServerConfig,
    state: Arc<ServerState>,
    listener: DualListener,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The TCP address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics, store, shutdown flag).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Whether the server thread has exited.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Waits for the server to drain and exit.
    pub fn join(self) -> std::io::Result<()> {
        self.join.join().expect("server thread panicked")
    }
}

/// Adapts [`ServerState`] dispatch to the generic serve loop.
struct TbaadService {
    state: Arc<ServerState>,
}

impl LineService for TbaadService {
    fn handle(&self, line: &str, out: &mut String) {
        handle_line(&self.state, line, out);
    }

    fn draining(&self) -> bool {
        self.state.is_shutting_down()
    }

    fn on_connect(&self) {
        self.state.metrics().counter("connections.accepted").inc();
        self.state.metrics().gauge("connections.active").inc();
    }

    fn on_disconnect(&self) {
        self.state.metrics().gauge("connections.active").dec();
    }
}

impl Server {
    /// Binds the listeners described by `config`. The uptime clock
    /// starts here, not at the first request.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let started = Instant::now();
        let listener = DualListener::bind(&config.addr, config.unix_path.as_deref())?;
        let state = Arc::new(ServerState::new(&config, started)?);
        Ok(Server {
            config,
            state,
            listener,
        })
    }

    /// Positional constructor from the pre-builder era.
    #[deprecated(
        since = "0.2.0",
        note = "use `Server::bind(ServerConfig::builder().addr(..).workers(..).session_capacity(..).build())`"
    )]
    pub fn new(addr: &str, workers: usize, session_capacity: usize) -> std::io::Result<Server> {
        Server::bind(
            ServerConfig::builder()
                .addr(addr)
                .workers(workers)
                .session_capacity(session_capacity)
                .build(),
        )
    }

    /// The bound TCP address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// The shared state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = self.state.clone();
        let join = std::thread::Builder::new()
            .name("tbaad-accept".into())
            .spawn(move || self.run())
            .expect("spawn server thread");
        ServerHandle { addr, state, join }
    }

    /// Serves until a `shutdown` request arrives and every worker has
    /// drained its connection.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            config,
            state,
            listener,
        } = self;
        let opts = ServeOptions {
            workers: config.workers,
            io_timeout: config.io_timeout,
            drain_grace: config.drain_grace,
        };
        net::serve(listener, opts, Arc::new(TbaadService { state }))
    }
}

/// Parses and dispatches one request line, appending exactly one reply
/// line (no newline) to `out`; never panics. The buffer is reused by the
/// connection worker across requests, so the hot verbs allocate nothing
/// per reply.
fn handle_line(state: &Arc<ServerState>, line: &str, out: &mut String) {
    let metrics = state.metrics();
    let inflight = metrics.gauge("inflight");
    inflight.inc();
    let t0 = Instant::now();

    let start = out.len();
    let mut verb: Option<&'static str> = None;
    match decode_request(line) {
        Err(proto::ProtoError::Json(e)) => {
            metrics.counter("requests.invalid").inc();
            error_reply("parse", &e.to_string()).encode_into(out);
        }
        Err(proto::ProtoError::Invalid(m)) => {
            metrics.counter("requests.invalid").inc();
            error_reply("proto", &m).encode_into(out);
        }
        Ok(req) => {
            verb = Some(proto::verb(&req));
            metrics.counter(&format!("requests.{}", proto::verb(&req))).inc();
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| dispatch(state, req, out)))
            {
                metrics.counter("requests.panics").inc();
                let msg = panic_message(payload.as_ref());
                // Drop whatever partial reply the panicking dispatch wrote.
                out.truncate(start);
                error_reply("panic", &format!("request panicked: {msg}")).encode_into(out);
            }
        }
    }
    // Every error reply starts with this prefix (`error_reply` /
    // `compile_error_reply` put `ok` first), every success reply with
    // `{"ok":true` — so the error counter needs no reply re-parse.
    if out[start..].starts_with(r#"{"ok":false"#) {
        metrics.counter("requests.errors").inc();
    }
    let elapsed = t0.elapsed();
    metrics
        .histogram("request_us", LATENCY_US_BUCKETS)
        .observe_duration(elapsed);
    // Per-verb service-time histograms: the load harness correlates these
    // with its client-observed latencies to separate queueing from service.
    if let Some(v) = verb {
        metrics
            .histogram(&format!("request_us.{v}"), LATENCY_US_BUCKETS)
            .observe_duration(elapsed);
    }
    inflight.dec();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn with_session(
    state: &ServerState,
    id: &str,
    out: &mut String,
    f: impl FnOnce(&Session, &mut String),
) {
    match state.store().by_id(id) {
        None => error_reply("no_session", &format!("no live session `{id}`")).encode_into(out),
        Some(slot) => match slot.as_ref() {
            Ok(session) => f(session, out),
            // Unreachable in practice: failed compiles are never admitted.
            Err(diags) => compile_error_reply(diags).encode_into(out),
        },
    }
}

/// Writes the shared `{"ok":true,"session":..,"level":..,"world":..`
/// prefix of the hot-verb replies — field order and escaping identical
/// to what `ok_reply` + `Value::encode` produced.
fn write_reply_head(session: &str, level: Level, world: World, out: &mut String) {
    out.push_str(r#"{"ok":true,"session":"#);
    write_json_string(session, out);
    out.push_str(r#","level":"#);
    write_json_string(proto::level_name(level), out);
    out.push_str(r#","world":"#);
    write_json_string(proto::world_name(world), out);
}

fn write_int_field(name: &str, v: i64, out: &mut String) {
    out.push(',');
    write_json_string(name, out);
    out.push(':');
    let _ = write!(out, "{v}");
}

fn dispatch(state: &Arc<ServerState>, req: Request<'_>, out: &mut String) {
    let metrics = state.metrics();
    match req {
        Request::Load {
            source,
            bench,
            scale,
            paths,
        } => {
            let loaded = match (&source, &bench) {
                (Some(src), None) => Ok(state.store().load_source(src)),
                (None, Some(name)) => state.store().load_bench(name, scale),
                _ => unreachable!("decode_request enforces exactly one"),
            };
            match loaded {
                Err(msg) => error_reply("no_bench", &msg).encode_into(out),
                Ok((slot, cached)) => match slot.as_ref() {
                    Err(diags) => compile_error_reply(diags).encode_into(out),
                    Ok(session) => {
                        // Admission-time prewarm: build the default
                        // `(level, world)` engine before replying, so the
                        // first query against this session pays zero
                        // engine-build latency. Memoized — a re-load of a
                        // warm session is a no-op here.
                        if state.prewarm > 0 {
                            let _ = session.engine(proto::DEFAULT_LEVEL, proto::DEFAULT_WORLD);
                        }
                        // The admission itself was journaled by the store
                        // (inside its admission critical section), so the
                        // journal's order matches admission order.
                        let mut fields = vec![
                            ("session", Value::Str(session.id.as_str().into())),
                            ("key", Value::Str(session.key.display().into())),
                            ("cached", Value::Bool(cached)),
                            ("funcs", Value::Int(session.program.funcs.len() as i64)),
                            ("instrs", Value::Int(session.program.instr_count() as i64)),
                            (
                                "heap_refs",
                                Value::Int(session.program.heap_ref_sites().len() as i64),
                            ),
                        ];
                        if paths {
                            fields.push((
                                "paths",
                                Value::Array(
                                    session
                                        .known_paths()
                                        .into_iter()
                                        .map(|p| Value::Str(p.into()))
                                        .collect(),
                                ),
                            ));
                        }
                        ok_reply(fields).encode_into(out);
                    }
                },
            }
        }
        Request::Alias {
            session,
            level,
            world,
            pairs,
        } => with_session(state, &session, out, |s, out| {
            let engine = s.engine(level, world);
            let t0 = Instant::now();
            // Optimistic emit: write the reply head and results directly;
            // an unknown path truncates back to `reply_start` and emits
            // the error instead — one resolution per path either way.
            // Echo the id the client addressed, not `s.id`: a stale id can
            // legitimately resolve to a recompiled session of the same
            // content (load/evict races re-admit old ids), and the reply
            // must stay deterministic for the requester.
            let reply_start = out.len();
            write_reply_head(&session, level, world, out);
            out.push_str(r#","results":["#);
            for (i, (a, b)) in pairs.iter().enumerate() {
                let (Some(ap_a), Some(ap_b)) = (s.resolve_path(a), s.resolve_path(b)) else {
                    let missing = if s.resolve_path(a).is_none() { a } else { b };
                    out.truncate(reply_start);
                    error_reply(
                        "unknown_path",
                        &format!(
                            "unknown access path `{missing}` ({} addressable paths in session `{}`)",
                            s.known_paths().len(),
                            s.id
                        ),
                    )
                    .encode_into(out);
                    return;
                };
                if i > 0 {
                    out.push(',');
                }
                out.push_str(if engine.may_alias(&s.program.aps, ap_a, ap_b) {
                    "true"
                } else {
                    "false"
                });
            }
            out.push_str("]}");
            metrics
                .histogram("query_us", LATENCY_US_BUCKETS)
                .observe_duration(t0.elapsed());
            metrics.counter("queries.alias").add(pairs.len() as u64);
            s.note_queries_served(pairs.len() as u64);
        }),
        Request::Pairs {
            session,
            level,
            world,
        } => with_session(state, &session, out, |s, out| {
            let engine = s.engine(level, world);
            let t0 = Instant::now();
            let report = census_alias_pairs(&s.program, &engine);
            metrics
                .histogram("query_us", LATENCY_US_BUCKETS)
                .observe_duration(t0.elapsed());
            metrics.counter("census.dense_rows").add(report.dense_rows);
            metrics
                .counter("census.fallback_pairs")
                .add(report.fallback_pairs);
            write_reply_head(&session, level, world, out);
            write_int_field("references", report.counts.references as i64, out);
            write_int_field("local_pairs", report.counts.local_pairs as i64, out);
            write_int_field("global_pairs", report.counts.global_pairs as i64, out);
            out.push('}');
        }),
        Request::Rle {
            session,
            level,
            world,
        } => with_session(state, &session, out, |s, out| {
            // RLE rewrites its program clone and interns new access
            // paths; the engine answers post-compile ids through its
            // naive-oracle fallback.
            let engine = s.engine(level, world);
            let t0 = Instant::now();
            let mut prog = (*s.program).clone();
            let stats = run_rle(&mut prog, &*engine);
            metrics
                .histogram("rle_us", LATENCY_US_BUCKETS)
                .observe_duration(t0.elapsed());
            write_reply_head(&session, level, world, out);
            write_int_field("hoisted", stats.hoisted as i64, out);
            write_int_field("eliminated", stats.eliminated as i64, out);
            write_int_field("removed", stats.removed() as i64, out);
            out.push('}');
        }),
        Request::Stats => {
            // Create the census counters on first `stats` so the snapshot
            // always carries them, even before the first `pairs` request.
            metrics.counter("census.dense_rows").add(0);
            metrics.counter("census.fallback_pairs").add(0);
            let engines: Vec<_> = state
                .store()
                .engine_stats()
                .into_iter()
                .map(|(id, served, s)| {
                    (
                        id.into(),
                        Value::object(vec![
                            ("queries_served", Value::Int(served as i64)),
                            ("dense_pairs", Value::Int(s.dense_pairs as i64)),
                            ("memo_hits", Value::Int(s.memo_hits as i64)),
                            ("memo_misses", Value::Int(s.memo_misses as i64)),
                            ("fallbacks", Value::Int(s.fallbacks as i64)),
                            ("memo_len", Value::Int(s.memo_len as i64)),
                            ("nodes", Value::Int(s.nodes as i64)),
                            ("build_us", Value::Int(s.build_us as i64)),
                        ]),
                    )
                })
                .collect();
            ok_reply(vec![
                // Clamped to ≥ 1 so the field is present *and positive*
                // from the very first request after bind.
                (
                    "uptime_us",
                    Value::Int((state.started.elapsed().as_micros() as i64).max(1)),
                ),
                ("stats", metrics.snapshot()),
                (
                    "sessions",
                    Value::object(vec![
                        ("live", Value::Int(state.store().live() as i64)),
                        ("capacity", Value::Int(state.store().capacity() as i64)),
                    ]),
                ),
                ("engines", Value::Object(engines)),
            ])
            .encode_into(out);
        }
        Request::Unload { session } => {
            // The store journals the tombstone itself, under its
            // admission lock, so it can never be reordered against a
            // racing load of the same content.
            let unloaded = state.store().unload(&session);
            ok_reply(vec![("unloaded", Value::Bool(unloaded))]).encode_into(out)
        }
        Request::Shutdown => {
            state.request_shutdown();
            if let Some(journal) = state.journal() {
                journal.sync();
            }
            ok_reply(vec![("draining", Value::Bool(true))]).encode_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> Arc<ServerState> {
        Arc::new(ServerState::new(&ServerConfig::default(), Instant::now()).expect("state"))
    }

    /// Buffered `handle_line` + reply re-parse, for test assertions.
    fn handle(state: &Arc<ServerState>, line: &str) -> Value<'static> {
        let mut out = String::new();
        handle_line(state, line, &mut out);
        crate::json::parse(&out).expect("reply is json").into_owned()
    }

    const SMOKE: &str = "MODULE M; TYPE T = OBJECT f: INTEGER; END; VAR t: T; x: INTEGER; BEGIN t := NEW(T); t.f := 1; x := t.f; END M.";

    fn load(state: &Arc<ServerState>, source: &str) -> String {
        let reply = handle(
            state,
            &Value::object(vec![
                ("op", Value::Str("load".into())),
                ("source", Value::Str(source.into())),
            ])
            .encode(),
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply:?}");
        reply.get("session").unwrap().as_str().unwrap().to_string()
    }

    #[test]
    fn load_alias_roundtrip_in_process() {
        let st = state();
        let sid = load(&st, SMOKE);
        let reply = handle(
            &st,
            &format!(r#"{{"op":"alias","session":"{sid}","pairs":[["t.f","t.f"]]}}"#),
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
        let results = reply.get("results").unwrap().as_array().unwrap();
        assert_eq!(results, &[Value::Bool(true)]);
    }

    #[test]
    fn unknown_path_is_structured_error() {
        let st = state();
        let sid = load(&st, SMOKE);
        let reply = handle(
            &st,
            &format!(r#"{{"op":"alias","session":"{sid}","ap1":"t.f","ap2":"nope"}}"#),
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
        let err = reply.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("unknown_path"));
    }

    #[test]
    fn malformed_source_returns_compile_diagnostics() {
        let st = state();
        let reply = handle(
            &st,
            &Value::object(vec![
                ("op", Value::Str("load".into())),
                ("source", Value::Str("MODULE Broken".into())),
            ])
            .encode(),
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
        let err = reply.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("compile"));
        assert!(!err.get("diagnostics").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn bad_json_and_bad_ops_reply_instead_of_dropping() {
        let st = state();
        let r1 = handle(&st, "this is not json");
        assert_eq!(
            r1.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("parse")
        );
        let r2 = handle(&st, r#"{"op":"zap"}"#);
        assert_eq!(
            r2.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("proto")
        );
        let r3 = handle(&st, r#"{"op":"alias","session":"s99","ap1":"a","ap2":"b"}"#);
        assert_eq!(
            r3.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("no_session")
        );
    }

    #[test]
    fn panicking_request_is_contained() {
        let st = state();
        // A panic inside dispatch must become a structured reply. Force
        // one through the catch_unwind boundary directly.
        let reply = match catch_unwind(AssertUnwindSafe(|| -> Value {
            panic!("boom");
        })) {
            Ok(v) => v,
            Err(p) => error_reply("panic", &format!("request panicked: {}", panic_message(p.as_ref()))),
        };
        assert_eq!(
            reply.get("error").unwrap().get("message").unwrap().as_str(),
            Some("request panicked: boom")
        );
        // And the server state stays usable afterwards.
        let sid = load(&st, SMOKE);
        assert!(st.store().by_id(&sid).is_some());
    }

    #[test]
    fn stats_reflects_requests() {
        let st = state();
        let sid = load(&st, SMOKE);
        handle(
            &st,
            &format!(r#"{{"op":"alias","session":"{sid}","ap1":"t.f","ap2":"t.f"}}"#),
        );
        let stats = handle(&st, r#"{"op":"stats"}"#);
        let counters = stats.get("stats").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("requests.load").unwrap().as_i64(), Some(1));
        assert_eq!(counters.get("requests.alias").unwrap().as_i64(), Some(1));
        assert_eq!(counters.get("sessions.compiles").unwrap().as_i64(), Some(1));
        assert_eq!(counters.get("engines.built").unwrap().as_i64(), Some(1));
        assert_eq!(
            stats.get("sessions").unwrap().get("live").unwrap().as_i64(),
            Some(1)
        );
        let engine = stats.get("engines").unwrap().get(&sid).unwrap();
        assert_eq!(engine.get("queries_served").unwrap().as_i64(), Some(1));
        assert!(engine.get("dense_pairs").unwrap().as_i64().unwrap() > 0);
        assert_eq!(engine.get("fallbacks").unwrap().as_i64(), Some(0));
        assert!(engine.get("nodes").unwrap().as_i64().unwrap() > 0);
    }

    /// The `engines.built` counter from a `stats` reply.
    fn engines_built(state: &Arc<ServerState>) -> i64 {
        let stats = handle(state, r#"{"op":"stats"}"#);
        stats
            .get("stats")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("engines.built")
            .map_or(0, |v| v.as_i64().unwrap())
    }

    #[test]
    fn prewarm_builds_default_engine_at_load_time() {
        // Default config has prewarm = 1: the load itself builds the
        // default (level, world) engine, so the first query finds it
        // memoized and `engines.built` never moves past 1.
        let st = state();
        let sid = load(&st, SMOKE);
        assert_eq!(engines_built(&st), 1, "load alone must build the engine");
        handle(
            &st,
            &format!(r#"{{"op":"alias","session":"{sid}","ap1":"t.f","ap2":"t.f"}}"#),
        );
        assert_eq!(engines_built(&st), 1, "first query must not build again");
    }

    #[test]
    fn prewarm_zero_defers_engine_build_to_first_query() {
        let config = ServerConfig::builder().prewarm(0).build();
        let st = Arc::new(ServerState::new(&config, Instant::now()).expect("state"));
        let sid = load(&st, SMOKE);
        assert_eq!(engines_built(&st), 0, "prewarm=0 must not build at load");
        handle(
            &st,
            &format!(r#"{{"op":"alias","session":"{sid}","ap1":"t.f","ap2":"t.f"}}"#),
        );
        assert_eq!(engines_built(&st), 1);
    }

    #[test]
    fn uptime_is_present_and_positive_from_the_first_request() {
        // The clock starts when the state is created (bind time), not
        // when the first request lands — and the clamp guarantees a
        // positive value even if the two are nanoseconds apart.
        let st = state();
        let stats = handle(&st, r#"{"op":"stats"}"#);
        let uptime = stats.get("uptime_us").unwrap().as_i64().unwrap();
        assert!(uptime >= 1, "uptime_us must be positive, got {uptime}");
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let st = state();
        let reply = handle(&st, r#"{"op":"shutdown"}"#);
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
        assert!(st.is_shutting_down());
    }

    #[test]
    fn builder_mirrors_field_assignment() {
        let built = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .workers(3)
            .session_capacity(7)
            .io_timeout(Duration::from_secs(2))
            .drain_grace(Duration::from_millis(10))
            .compile_threads(5)
            .prewarm(0)
            .build();
        assert_eq!(built.workers, 3);
        assert_eq!(built.session_capacity, 7);
        assert_eq!(built.io_timeout, Duration::from_secs(2));
        assert_eq!(built.drain_grace, Duration::from_millis(10));
        assert_eq!(built.compile_threads, 5);
        assert_eq!(built.prewarm, 0);
        assert!(built.unix_path.is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_positional_constructor_still_binds() {
        let server = Server::new("127.0.0.1:0", 2, 4).expect("bind");
        assert_ne!(server.local_addr().port(), 0);
    }
}
