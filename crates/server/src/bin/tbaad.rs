//! `tbaad` — the TBAA alias-query daemon.
//!
//! ```text
//! tbaad [--addr HOST:PORT] [--socket PATH] [--workers N] [--capacity N]
//!       [--journal-dir DIR] [--compile-threads N] [--prewarm N]
//!
//!   --addr             TCP bind address (default 127.0.0.1:4980; use :0 for
//!                      an ephemeral port — the chosen one is printed)
//!   --socket           additionally serve a Unix-domain socket (unix only)
//!   --workers          worker threads == max concurrent connections (default 16)
//!   --capacity         max cached sessions before LRU eviction (default 32)
//!   --journal-dir      durable session journal: admitted loads are logged
//!                      here and replayed on restart (crash recovery)
//!   --compile-threads  worker threads for cold-compile fan-out and engine
//!                      builds (default 0 = one per host core; output is
//!                      byte-identical at any setting)
//!   --prewarm          engines built eagerly per admitted load (default 1 =
//!                      the default (level, world) engine; 0 = off)
//! ```
//!
//! On startup the daemon prints exactly one line to stdout:
//!
//! ```text
//! tbaad listening on 127.0.0.1:4980
//! ```
//!
//! so scripts can scrape the (possibly ephemeral) port. It exits 0 after
//! a client sends `{"op":"shutdown"}` and all in-flight requests drain.

use std::process::ExitCode;

use tbaa_server::{Server, ServerConfig};

const USAGE: &str = "tbaad [--addr HOST:PORT] [--socket PATH] [--workers N] [--capacity N] [--journal-dir DIR] [--compile-threads N] [--prewarm N]";

fn main() -> ExitCode {
    let mut config = ServerConfig::builder().addr("127.0.0.1:4980").build();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match flag {
            "--addr" => match value(i) {
                Some(a) => config.addr = a.clone(),
                None => return usage("--addr needs HOST:PORT"),
            },
            "--socket" => match value(i) {
                Some(p) => config.unix_path = Some(p.into()),
                None => return usage("--socket needs PATH"),
            },
            "--workers" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--capacity" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => config.session_capacity = n,
                _ => return usage("--capacity needs a positive integer"),
            },
            "--journal-dir" => match value(i) {
                Some(d) => config.journal_dir = Some(d.into()),
                None => return usage("--journal-dir needs DIR"),
            },
            "--compile-threads" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => config.compile_threads = n,
                None => return usage("--compile-threads needs an integer (0 = auto)"),
            },
            "--prewarm" => match value(i).and_then(|s| s.parse().ok()) {
                Some(n) => config.prewarm = n,
                None => return usage("--prewarm needs an integer (0 = off)"),
            },
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }

    #[cfg(not(unix))]
    if config.unix_path.take().is_some() {
        eprintln!("tbaad: --socket ignored (not a unix platform)");
    }

    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tbaad: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tbaad listening on {}", server.local_addr());
    // Line-buffer stdout may hold the line back when piped; force it out
    // so wrapper scripts can scrape the port immediately.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => {
            eprintln!("tbaad: drained and exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tbaad: server error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tbaad: {msg}");
    eprintln!("usage: {USAGE}");
    ExitCode::FAILURE
}
