//! A small lock-free metrics registry — the repo's first observability
//! layer.
//!
//! Three instrument kinds, all safe to update from any thread without
//! locking:
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a signed up/down value (e.g. in-flight requests);
//! * [`Histogram`] — fixed upper-bound buckets plus sum/count, for
//!   latency distributions.
//!
//! A [`Registry`] names instruments and snapshots them all at once; the
//! snapshot renders to the in-tree [`json::Value`](crate::json::Value)
//! so `tbaad`'s `stats` verb can ship it over the wire. Nothing here is
//! server-specific: the evaluation `Engine` in `crates/bench` (or any
//! future subsystem) can register its own counters against the same
//! type.
//!
//! Instruments are handed out as `Arc`s and updated directly — the
//! registry is consulted only at snapshot time, so the hot path is one
//! atomic op per event.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Value;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram buckets for latencies recorded in **microseconds**:
/// 50µs … 1s, roughly ×2–×2.5 apart. Values above the last bound land in
/// the implicit `+Inf` bucket.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A fixed-bucket histogram (cumulative-style: `observe` finds the first
/// bucket whose upper bound holds the value).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// One slot per bound, plus a final `+Inf` slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds (ascending).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The snapshot encoding of this histogram: `count`, `sum`, `mean`,
    /// and the non-empty `[le, n]` buckets. Public so aggregators (the
    /// router's per-shard stats) can render histograms outside a
    /// [`Registry`] snapshot.
    pub fn to_json(&self) -> Value<'static> {
        let count = self.count();
        let sum = self.sum();
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        let mut buckets = Vec::new();
        for (i, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n == 0 {
                continue; // keep the wire format small
            }
            let le = match self.bounds.get(i) {
                Some(b) => Value::Int(*b as i64),
                None => Value::Str("inf".into()),
            };
            buckets.push(Value::Array(vec![le, Value::Int(n as i64)]));
        }
        Value::object(vec![
            ("count", Value::Int(count as i64)),
            ("sum", Value::Int(sum as i64)),
            ("mean", Value::Float((mean * 1000.0).round() / 1000.0)),
            ("buckets", Value::Array(buckets)),
        ])
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments with one-shot JSON snapshots.
#[derive(Default)]
pub struct Registry {
    items: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut items = self.items.lock().expect("registry poisoned");
        for (n, i) in items.iter() {
            if n == name {
                if let Instrument::Counter(c) = i {
                    return c.clone();
                }
                panic!("metric `{name}` registered with a different kind");
            }
        }
        let c = Arc::new(Counter::default());
        items.push((name.to_string(), Instrument::Counter(c.clone())));
        c
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut items = self.items.lock().expect("registry poisoned");
        for (n, i) in items.iter() {
            if n == name {
                if let Instrument::Gauge(g) = i {
                    return g.clone();
                }
                panic!("metric `{name}` registered with a different kind");
            }
        }
        let g = Arc::new(Gauge::default());
        items.push((name.to_string(), Instrument::Gauge(g.clone())));
        g
    }

    /// Returns the histogram named `name`, creating it (over `bounds`) on
    /// first use.
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        let mut items = self.items.lock().expect("registry poisoned");
        for (n, i) in items.iter() {
            if n == name {
                if let Instrument::Histogram(h) = i {
                    return h.clone();
                }
                panic!("metric `{name}` registered with a different kind");
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        items.push((name.to_string(), Instrument::Histogram(h.clone())));
        h
    }

    /// Snapshots every instrument into one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`, each section
    /// in registration order.
    pub fn snapshot(&self) -> Value<'static> {
        let items = self.items.lock().expect("registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, inst) in items.iter() {
            match inst {
                Instrument::Counter(c) => {
                    counters.push((name.clone().into(), Value::Int(c.get() as i64)));
                }
                Instrument::Gauge(g) => gauges.push((name.clone().into(), Value::Int(g.get()))),
                Instrument::Histogram(h) => histograms.push((name.clone().into(), h.to_json())),
            }
        }
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("reqs");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("reqs").get(), 5, "same name, same instrument");
        let g = r.gauge("inflight");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[10, 100]);
        for v in [5, 7, 50, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5062);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_i64(), Some(4));
        // buckets: le=10 → 2, le=100 → 1, inf → 1
        let buckets = j.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 3);
    }

    #[test]
    fn snapshot_renders_ordered_json() {
        let r = Registry::new();
        r.counter("a").inc();
        r.gauge("g").set(-2);
        r.histogram("h", &[10]).observe(3);
        let s = r.snapshot().encode();
        assert!(s.contains("\"counters\":{\"a\":1}"), "{s}");
        assert!(s.contains("\"gauges\":{\"g\":-2}"), "{s}");
        assert!(s.contains("\"h\":{\"count\":1"), "{s}");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
