//! Sessions: compiled programs the server keeps warm between requests.
//!
//! A *session* is one compiled program (`Arc<Program>`) plus a memo of
//! built [`Tbaa`] analyses per `(level, world)` — the same
//! compile-once / analyze-once discipline as the evaluation `Engine` in
//! `crates/bench`, via the shared [`tbaa::memo::Memo`].
//!
//! The [`SessionStore`] is keyed by **content** ([`SessionKey`]): loading
//! the same benchsuite program (or byte-identical source) twice — even
//! concurrently from many connections — compiles it exactly once and
//! returns the same session id. Capacity is bounded by an LRU policy;
//! `unload` evicts explicitly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mini_m3::Diagnostics;
use tbaa::analysis::{Level, Tbaa};
use tbaa::memo::Memo;
use tbaa::{CompiledAliasEngine, CompiledStats, World};
use tbaa_benchsuite::Benchmark;
use tbaa_ir::ir::Program;
use tbaa_ir::path::ApId;
use tbaa_ir::pretty;

use tbaa_incr::IncrCompiler;

use crate::journal::Journal;
use crate::json::Value;
use crate::metrics::{Counter, Gauge, Histogram, Registry, LATENCY_US_BUCKETS};

/// Content identity of a session.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SessionKey {
    /// A named benchsuite program at a workload scale.
    Bench {
        /// Program name (e.g. `ktree`).
        name: String,
        /// Workload scale.
        scale: u32,
    },
    /// Inline source, identified by a 64-bit FNV-1a hash of the bytes.
    Source {
        /// Content hash.
        hash: u64,
    },
}

impl SessionKey {
    /// A stable, human-readable spelling (`bench:ktree@2`, `src:1a2b…`).
    pub fn display(&self) -> String {
        match self {
            SessionKey::Bench { name, scale } => format!("bench:{name}@{scale}"),
            SessionKey::Source { hash } => format!("src:{hash:016x}"),
        }
    }
}

/// FNV-1a, the classic 64-bit offset/prime pair.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One compiled program plus its memoized analyses.
pub struct Session {
    /// The id handed to clients (`s1`, `s2`, …; stable per content).
    pub id: String,
    /// Content identity.
    pub key: SessionKey,
    /// The compiled program.
    pub program: Arc<Program>,
    /// Pretty access-path string → interned ApId, for query resolution.
    paths: HashMap<String, ApId>,
    analyses: Memo<(Level, World), Tbaa>,
    engines: Memo<(Level, World), CompiledAliasEngine>,
    analyses_requested: Arc<Counter>,
    analyses_built: Arc<Counter>,
    analysis_us: Arc<Histogram>,
    engines_built: Arc<Counter>,
    engine_build_us: Arc<Histogram>,
    /// Worker-thread budget for engine builds (row-parallel dense fill).
    /// Capped by host cores inside `compile_with_threads`, so `1` on a
    /// single-core box regardless of the configured value.
    compile_threads: usize,
    /// Alias queries served against this session's engines. Counted
    /// here (per session) because the engine's dense query path is
    /// deliberately uninstrumented.
    queries_served: AtomicU64,
}

impl Session {
    fn new(
        id: String,
        key: SessionKey,
        program: Program,
        metrics: &Registry,
        compile_threads: usize,
    ) -> Self {
        let program = Arc::new(program);
        let mut paths = HashMap::new();
        for (_f, ap, _is_store) in program.heap_ref_sites() {
            paths
                .entry(pretty::access_path(&program, ap))
                .or_insert(ap);
        }
        Session {
            id,
            key,
            program,
            paths,
            analyses: Memo::new(),
            engines: Memo::new(),
            analyses_requested: metrics.counter("analyses.requested"),
            analyses_built: metrics.counter("analyses.built"),
            analysis_us: metrics.histogram("analysis_us", LATENCY_US_BUCKETS),
            engines_built: metrics.counter("engines.built"),
            engine_build_us: metrics.histogram("engine_build_us", LATENCY_US_BUCKETS),
            compile_threads,
            queries_served: AtomicU64::new(0),
        }
    }

    /// The analysis for `(level, world)`, built at most once per session.
    pub fn analysis(&self, level: Level, world: World) -> Arc<Tbaa> {
        self.analyses_requested.inc();
        self.analyses.get_or_build((level, world), || {
            self.analyses_built.inc();
            let t0 = Instant::now();
            let tbaa = Tbaa::build(&self.program, level, world);
            self.analysis_us.observe_duration(t0.elapsed());
            tbaa
        })
    }

    /// The compiled query engine for `(level, world)`, built at most
    /// once per session on top of the memoized [`Tbaa`] analysis. Alias
    /// and pair queries route through this; the raw analysis stays
    /// available for clients that need the naive oracle.
    pub fn engine(&self, level: Level, world: World) -> Arc<CompiledAliasEngine> {
        let analysis = self.analysis(level, world);
        self.engines.get_or_build((level, world), || {
            self.engines_built.inc();
            let t0 = Instant::now();
            let engine = CompiledAliasEngine::compile_with_threads(
                &self.program,
                analysis,
                self.compile_threads,
            );
            self.engine_build_us.observe_duration(t0.elapsed());
            engine
        })
    }

    /// Records `n` alias queries served against this session's engines.
    pub fn note_queries_served(&self, n: u64) {
        self.queries_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Alias queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Aggregated query-engine counters across every engine this session
    /// has compiled (all `(level, world)` variants summed).
    pub fn engine_stats(&self) -> CompiledStats {
        let mut total = CompiledStats::default();
        for key in self.engines.keys() {
            let Some(engine) = self.engines.get(&key) else {
                continue;
            };
            let s = engine.stats();
            total.queries += s.queries;
            total.memo_hits += s.memo_hits;
            total.memo_misses += s.memo_misses;
            total.fallbacks += s.fallbacks;
            total.dense_pairs += s.dense_pairs;
            total.memo_len += s.memo_len;
            total.nodes += s.nodes;
            total.build_us += s.build_us;
        }
        total
    }

    /// Resolves a pretty access-path string (as printed by
    /// `tbaa_ir::pretty::access_path`, e.g. `t.f` or `v^.next`) to its
    /// interned id. Only paths that occur at heap reference sites are
    /// addressable.
    pub fn resolve_path(&self, path: &str) -> Option<ApId> {
        self.paths.get(path).copied()
    }

    /// The addressable access paths, sorted (for error messages / docs).
    pub fn known_paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.paths.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

type SessionSlot = Result<Session, Diagnostics>;

/// A bounded, content-keyed, compile-once session cache.
///
/// Compiles route through a store-level [`IncrCompiler`]: a superseding
/// load whose source differs only locally replays the unchanged
/// functions' lowering and analysis summaries from the function-granular
/// unit cache (`tbaa-incr`) instead of re-lowering the whole program.
/// The unit cache outlives session LRU eviction, so evicting and
/// reloading the same content is an all-hit incremental rebuild.
pub struct SessionStore {
    capacity: usize,
    sessions: Memo<SessionKey, SessionSlot>,
    /// LRU order (front = coldest) plus the id → key index.
    index: Mutex<StoreIndex>,
    next_id: AtomicU64,
    /// The durable journal, attached after recovery replay. Appends
    /// happen inside the index-lock critical section of [`Self::admit`]
    /// and [`Self::unload`], so journal order is admission order.
    journal: OnceLock<Arc<Journal>>,
    incr: IncrCompiler,
    /// Worker-thread budget for cold-compile fan-out and engine builds.
    /// Always ≥ 1; `with_compile_threads(0)` resolves to the host core
    /// count, and every consumer re-caps by cores/work anyway.
    compile_threads: usize,
    metrics: Arc<Registry>,
    compiles: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    compile_us: Arc<Histogram>,
    compile_analyze_us: Arc<Histogram>,
    compile_lower_us: Arc<Histogram>,
    compile_merge_us: Arc<Histogram>,
    incr_func_hits: Arc<Counter>,
    incr_func_misses: Arc<Counter>,
    incr_reuse_ratio: Arc<Gauge>,
    incr_rebuild_us: Arc<Histogram>,
}

#[derive(Default)]
struct StoreIndex {
    lru: Vec<SessionKey>,
    by_id: HashMap<String, SessionKey>,
}

impl SessionStore {
    /// A store holding at most `capacity` live sessions.
    pub fn new(capacity: usize, metrics: Arc<Registry>) -> Self {
        SessionStore {
            capacity: capacity.max(1),
            sessions: Memo::new(),
            index: Mutex::new(StoreIndex::default()),
            next_id: AtomicU64::new(1),
            journal: OnceLock::new(),
            incr: IncrCompiler::new(),
            compile_threads: 1,
            compiles: metrics.counter("sessions.compiles"),
            hits: metrics.counter("sessions.hits"),
            misses: metrics.counter("sessions.misses"),
            evictions: metrics.counter("sessions.evictions"),
            compile_us: metrics.histogram("compile_us", LATENCY_US_BUCKETS),
            compile_analyze_us: metrics.histogram("compile.analyze_us", LATENCY_US_BUCKETS),
            compile_lower_us: metrics.histogram("compile.lower_us", LATENCY_US_BUCKETS),
            compile_merge_us: metrics.histogram("compile.merge_us", LATENCY_US_BUCKETS),
            incr_func_hits: metrics.counter("incr.func_hits"),
            incr_func_misses: metrics.counter("incr.func_misses"),
            incr_reuse_ratio: metrics.gauge("incr.reuse_ratio"),
            incr_rebuild_us: metrics.histogram("incr.rebuild_us", LATENCY_US_BUCKETS),
            metrics,
        }
    }

    /// Sets the worker-thread budget for cold-compile lowering fan-out
    /// and row-parallel engine builds. `0` means "one worker per host
    /// core"; any value is still re-capped by cores and by the amount
    /// of work at each use site, so over-asking is harmless and output
    /// stays byte-identical at every setting.
    #[must_use]
    pub fn with_compile_threads(mut self, threads: usize) -> Self {
        self.compile_threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }

    /// Compiles source through the function-granular incremental cache,
    /// recording reuse metrics and per-stage compile timings. Output
    /// (including diagnostics) is byte-identical to a from-scratch
    /// `tbaa_ir::compile_to_ir` at any thread count.
    fn compile_incr(&self, source: &str) -> Result<Program, Diagnostics> {
        let t0 = Instant::now();
        let workers = tbaa_ir::effective_workers(self.compile_threads, usize::MAX);
        let (result, report) = self.incr.compile_with_threads(source, workers);
        self.incr_rebuild_us.observe_duration(t0.elapsed());
        self.compile_analyze_us.observe(report.analyze_us);
        self.compile_lower_us.observe(report.lower_us);
        self.compile_merge_us.observe(report.merge_us);
        self.incr_func_hits.add(report.func_hits);
        self.incr_func_misses.add(report.func_misses);
        // Percent of functions reused by the most recent compile — a
        // gauge, so `stats` shows how incremental the latest load was.
        self.incr_reuse_ratio
            .set((report.reuse_ratio() * 100.0).round() as i64);
        result
    }

    /// Attaches the durable journal. Called once, after recovery
    /// replay — the restored loads are already in the (freshly
    /// compacted) file, so replay must not re-append them. From here
    /// on every admission and unload is journaled from inside the
    /// index-lock critical section, so the journal's append order is
    /// exactly the store's admission order: replay reproduces LRU
    /// recency even when concurrent loads race unloads near capacity.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// Advances the session-id counter so future mints start at
    /// `next_sid` or later — the recovery watermark. Must be applied
    /// before serving: the highest pre-crash id may belong to an
    /// unloaded session that replay never touches, and re-minting it
    /// would silently point a stale client at a different session.
    pub fn reserve_ids(&self, next_sid: u64) {
        self.next_id.fetch_max(next_sid, Ordering::Relaxed);
    }

    /// Maximum number of live sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live sessions.
    pub fn live(&self) -> usize {
        self.index.lock().expect("store poisoned").lru.len()
    }

    /// Loads a benchsuite program (compiling at most once per
    /// `(name, scale)`, no matter how many threads race). The boolean is
    /// `true` when the session was already warm (a cache hit).
    pub fn load_bench(&self, name: &str, scale: u32) -> Result<(Arc<SessionSlot>, bool), String> {
        let bench = Benchmark::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        let key = SessionKey::Bench {
            name: name.to_string(),
            scale,
        };
        let line = self.journal.get().map(|_| {
            Value::object(vec![
                ("op", Value::Str("load".into())),
                ("bench", Value::Str(name.into())),
                ("scale", Value::Int(scale as i64)),
            ])
            .encode()
        });
        Ok(self.load_with(key, line, || self.compile_incr(&bench.source_at_scale(scale))))
    }

    /// Loads inline source (compiling at most once per content hash).
    /// The boolean is `true` on a cache hit.
    pub fn load_source(&self, source: &str) -> (Arc<SessionSlot>, bool) {
        let key = SessionKey::Source {
            hash: content_hash(source.as_bytes()),
        };
        let line = self.journal.get().map(|_| {
            Value::object(vec![
                ("op", Value::Str("load".into())),
                ("source", Value::Str(source.into())),
            ])
            .encode()
        });
        self.load_with(key, line, || self.compile_incr(source))
    }

    /// `journal_line` is the canonical re-issuable request line to
    /// journal on admission (hits included: replay order is how
    /// recovery reproduces LRU recency), or `None` when journaling is
    /// off. Re-canonicalized by the caller so replay never sees
    /// client-specific extras like `"paths":true`.
    fn load_with(
        &self,
        key: SessionKey,
        journal_line: Option<String>,
        compile: impl FnOnce() -> Result<Program, Diagnostics>,
    ) -> (Arc<SessionSlot>, bool) {
        let mut built_here = false;
        let slot = self.sessions.get_or_build(key.clone(), || {
            built_here = true;
            self.compiles.inc();
            let t0 = Instant::now();
            let compiled = compile();
            self.compile_us.observe_duration(t0.elapsed());
            compiled.map(|program| {
                let id = format!("s{}", self.next_id.fetch_add(1, Ordering::Relaxed));
                Session::new(id, key.clone(), program, &self.metrics, self.compile_threads)
            })
        });
        let cached = match (&*slot, built_here) {
            (Err(_), _) => {
                // Don't cache failures: the client may retry with fixed
                // source, and a failed compile holds no reusable state.
                self.sessions.remove(&key);
                self.misses.inc();
                false
            }
            (Ok(session), true) => {
                self.misses.inc();
                self.admit(key, &session.id, journal_line.as_deref());
                false
            }
            (Ok(session), false) => {
                self.hits.inc();
                // Admit (not just touch): a hit thread can win the memo
                // race and reply before the builder thread has indexed
                // the id — its client's next query must still resolve.
                self.admit(key, &session.id, journal_line.as_deref());
                true
            }
        };
        (slot, cached)
    }

    /// Re-admits a journaled load under its *original* session id —
    /// the replay half of crash recovery ([`crate::journal`]). The line
    /// is a canonical `{"op":"load",…}` request; compilation routes
    /// through the incremental cache like any other load, so recovery
    /// cost is visible in the `incr.*` counters. Admission obeys the
    /// normal LRU policy: replaying in journal order re-evicts exactly
    /// what the crashed daemon had evicted. The id counter is advanced
    /// past every restored id so future mints can never collide.
    pub fn restore_line(&self, id: &str, line: &str) -> Result<(), String> {
        let req = crate::proto::decode_request(line).map_err(|e| e.to_string())?;
        let crate::proto::Request::Load { source, bench, scale, .. } = req else {
            return Err("journal record is not a load".into());
        };
        match (&source, &bench) {
            (Some(src), None) => {
                let key = SessionKey::Source {
                    hash: content_hash(src.as_bytes()),
                };
                self.restore_with(id, key, || self.compile_incr(src))
            }
            (None, Some(name)) => {
                let bench = Benchmark::by_name(name)
                    .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
                let key = SessionKey::Bench {
                    name: name.to_string(),
                    scale,
                };
                self.restore_with(id, key, || self.compile_incr(&bench.source_at_scale(scale)))
            }
            _ => Err("journal load has neither source nor bench".into()),
        }
    }

    fn restore_with(
        &self,
        id: &str,
        key: SessionKey,
        compile: impl FnOnce() -> Result<Program, Diagnostics>,
    ) -> Result<(), String> {
        // Never re-mint a restored id, even if its session is later
        // superseded or unloaded.
        if let Some(n) = id.strip_prefix('s').and_then(|t| t.parse::<u64>().ok()) {
            self.next_id.fetch_max(n + 1, Ordering::Relaxed);
        }
        let slot = self.sessions.get_or_build(key.clone(), || {
            self.compiles.inc();
            let t0 = Instant::now();
            let compiled = compile();
            self.compile_us.observe_duration(t0.elapsed());
            compiled.map(|program| {
                Session::new(
                    id.to_string(),
                    key.clone(),
                    program,
                    &self.metrics,
                    self.compile_threads,
                )
            })
        });
        match slot.as_ref() {
            Err(diags) => {
                self.sessions.remove(&key);
                Err(format!(
                    "restored source does not compile ({} diagnostic{})",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                ))
            }
            Ok(session) => {
                // No journal line: replay must not re-append records the
                // recovered (already compacted) file still holds.
                self.admit(key, &session.id, None);
                Ok(())
            }
        }
    }

    /// Looks a session up by client-visible id, refreshing its LRU slot.
    pub fn by_id(&self, id: &str) -> Option<Arc<SessionSlot>> {
        let key = {
            let index = self.index.lock().expect("store poisoned");
            index.by_id.get(id)?.clone()
        };
        let slot = self.sessions.get(&key)?;
        self.touch(&key);
        Some(slot)
    }

    /// Per-session query-engine counters for every live session —
    /// `(id, queries served, aggregated engine stats)` — sorted by id
    /// (so `stats` replies are deterministic).
    pub fn engine_stats(&self) -> Vec<(String, u64, CompiledStats)> {
        let ids: Vec<(String, SessionKey)> = {
            let index = self.index.lock().expect("store poisoned");
            index
                .by_id
                .iter()
                .map(|(id, key)| (id.clone(), key.clone()))
                .collect()
        };
        let mut out: Vec<(String, u64, CompiledStats)> = ids
            .into_iter()
            .filter_map(|(id, key)| {
                let slot = self.sessions.get(&key)?;
                let session = slot.as_ref().as_ref().ok()?;
                Some((id, session.queries_served(), session.engine_stats()))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drops a session by id. Returns whether it was live. The journal
    /// tombstone (when journaling is on) is appended while the index
    /// lock is still held, for the same admission-ordering guarantee
    /// as [`Self::admit`].
    pub fn unload(&self, id: &str) -> bool {
        let key = {
            let mut index = self.index.lock().expect("store poisoned");
            let Some(key) = index.by_id.remove(id) else {
                return false;
            };
            index.lru.retain(|k| k != &key);
            if let Some(journal) = self.journal.get() {
                journal.append_unload(id);
            }
            key
        };
        self.sessions.remove(&key);
        true
    }

    fn admit(&self, key: SessionKey, id: &str, journal_line: Option<&str>) {
        let key_display = journal_line.map(|_| key.display());
        let evicted: Vec<SessionKey> = {
            let mut index = self.index.lock().expect("store poisoned");
            index.by_id.insert(id.to_string(), key.clone());
            index.lru.retain(|k| k != &key);
            index.lru.push(key);
            // Journal while the admission lock is still held: the
            // append order on disk is then exactly the order admissions
            // (and unloads) took effect, so replay can never resurrect
            // a session whose unload raced its load, or misorder LRU
            // recency near capacity.
            if let (Some(journal), Some(line)) = (self.journal.get(), journal_line) {
                journal.append_load(key_display.as_deref().unwrap_or_default(), id, line);
            }
            let mut evicted = Vec::new();
            while index.lru.len() > self.capacity {
                let cold = index.lru.remove(0);
                index.by_id.retain(|_, k| k != &cold);
                evicted.push(cold);
            }
            evicted
        };
        for key in evicted {
            self.evictions.inc();
            self.sessions.remove(&key);
        }
    }

    fn touch(&self, key: &SessionKey) {
        let mut index = self.index.lock().expect("store poisoned");
        if let Some(pos) = index.lru.iter().position(|k| k == key) {
            let k = index.lru.remove(pos);
            index.lru.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbaa::AliasAnalysis;

    const SMOKE: &str = "MODULE M;
         TYPE T = OBJECT f: INTEGER; END;
         VAR t: T; x, y: INTEGER;
         BEGIN t := NEW(T); t.f := 1; x := t.f; y := t.f; END M.";

    fn store(capacity: usize) -> SessionStore {
        SessionStore::new(capacity, Arc::new(Registry::new()))
    }

    #[test]
    fn load_is_idempotent_per_content() {
        let store = store(8);
        let (a, a_cached) = store.load_bench("ktree", 1).unwrap();
        let (b, b_cached) = store.load_bench("ktree", 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a_cached && b_cached);
        assert_eq!(store.compiles.get(), 1);
        assert_eq!(store.hits.get(), 1);
        let s = a.as_ref().as_ref().unwrap();
        assert_eq!(store.by_id(&s.id).map(|x| Arc::ptr_eq(&x, &a)), Some(true));
        // A different scale is a different session.
        store.load_bench("ktree", 2).unwrap();
        assert_eq!(store.compiles.get(), 2);
        assert_eq!(store.live(), 2);
    }

    #[test]
    fn source_sessions_hash_content() {
        let store = store(8);
        let (a, _) = store.load_source(SMOKE);
        let (b, cached) = store.load_source(SMOKE);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cached);
        assert_eq!(store.compiles.get(), 1);
        let s = a.as_ref().as_ref().unwrap();
        assert!(s.resolve_path("t.f").is_some());
        assert!(s.resolve_path("nope").is_none());
    }

    #[test]
    fn analyses_build_once_per_level_world() {
        let store = store(8);
        let (slot, _) = store.load_source(SMOKE);
        let s = slot.as_ref().as_ref().unwrap();
        let a1 = s.analysis(Level::SmFieldTypeRefs, World::Closed);
        let a2 = s.analysis(Level::SmFieldTypeRefs, World::Closed);
        assert!(Arc::ptr_eq(&a1, &a2));
        let open = s.analysis(Level::SmFieldTypeRefs, World::Open);
        assert!(!Arc::ptr_eq(&a1, &open));
        assert_eq!(s.analyses_built.get(), 2);
        assert_eq!(s.analyses_requested.get(), 3);
    }

    #[test]
    fn engines_build_once_and_report_stats() {
        let store = store(8);
        let (slot, _) = store.load_source(SMOKE);
        let s = slot.as_ref().as_ref().unwrap();
        let e1 = s.engine(Level::SmFieldTypeRefs, World::Closed);
        let e2 = s.engine(Level::SmFieldTypeRefs, World::Closed);
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!(s.engines_built.get(), 1);
        // Building the engine goes through the analysis memo too.
        assert_eq!(s.analyses_built.get(), 1);
        let ap = s.resolve_path("t.f").unwrap();
        assert!(e1.may_alias(&s.program.aps, ap, ap));
        s.note_queries_served(1);
        let per_session = store.engine_stats();
        assert_eq!(per_session.len(), 1);
        let (id, served, stats) = &per_session[0];
        assert_eq!(id, &s.id);
        assert_eq!(*served, 1);
        assert!(stats.dense_pairs > 0, "small programs precompute densely");
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn compile_failures_are_not_cached() {
        let store = store(8);
        let (bad, cached) = store.load_source("MODULE Broken");
        assert!(bad.as_ref().is_err());
        assert!(!cached);
        assert_eq!(store.live(), 0);
        let (again, _) = store.load_source("MODULE Broken");
        assert!(again.as_ref().is_err());
        assert_eq!(store.compiles.get(), 2, "failures recompile");
    }

    #[test]
    fn lru_evicts_coldest() {
        let store = store(2);
        let (a, _) = store.load_bench("ktree", 1).unwrap();
        let a_id = a.as_ref().as_ref().unwrap().id.clone();
        store.load_bench("format", 1).unwrap();
        // Touch ktree so format is coldest.
        store.load_bench("ktree", 1).unwrap();
        store.load_bench("slisp", 1).unwrap();
        assert_eq!(store.live(), 2);
        assert_eq!(store.evictions.get(), 1);
        assert!(store.by_id(&a_id).is_some(), "ktree survived (was touched)");
        // format was evicted; reloading recompiles.
        let before = store.compiles.get();
        store.load_bench("format", 1).unwrap();
        assert_eq!(store.compiles.get(), before + 1);
    }

    #[test]
    fn unload_drops_and_allows_reload() {
        let store = store(8);
        let (slot, _) = store.load_bench("ktree", 1).unwrap();
        let id = slot.as_ref().as_ref().unwrap().id.clone();
        assert!(store.unload(&id));
        assert!(!store.unload(&id), "second unload is a no-op");
        assert!(store.by_id(&id).is_none());
        assert_eq!(store.live(), 0);
    }

    #[test]
    fn restore_readmits_under_original_id_and_advances_the_counter() {
        let store = store(8);
        store
            .restore_line("s7", r#"{"op":"load","bench":"ktree","scale":1}"#)
            .expect("restore");
        let slot = store.by_id("s7").expect("restored id resolves");
        assert_eq!(
            slot.as_ref().as_ref().unwrap().key.display(),
            "bench:ktree@1"
        );
        // Fresh loads mint strictly past the restored watermark.
        let (s, _) = store.load_bench("format", 1).unwrap();
        assert_eq!(s.as_ref().as_ref().unwrap().id, "s8");
        // Restoring broken source reports, never admits.
        assert!(store
            .restore_line("s9", r#"{"op":"load","source":"MODULE Broken"}"#)
            .is_err());
        assert!(store.by_id("s9").is_none());
    }

    #[test]
    fn concurrent_loads_compile_once() {
        let store = store(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| store.load_bench("ktree", 1).unwrap());
            }
        });
        assert_eq!(store.compiles.get(), 1);
        assert_eq!(store.live(), 1);
    }
}
