//! A blocking client for the `tbaad` protocol.
//!
//! [`Client`] wraps one connection (TCP or, on unix, a Unix-domain
//! socket) and exposes one method per protocol verb, each returning the
//! typed replies of [`crate::reply`]. Raw reply lines stay available —
//! on every typed reply's `raw` field and through
//! [`Client::request_raw`]/[`Client::send_raw`] — so byte-differential
//! harnesses can compare wire bytes, not just decoded values.

use std::net::ToSocketAddrs;
use std::time::Duration;

use crate::json::Value;
use crate::net::{Conn, LineReader, Tick};
use crate::reply::{
    AliasReply, ErrorReply, LoadReply, PairsReply, Reply, RleReply, StatsReply,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The reply was not a valid protocol reply.
    Protocol(String),
    /// The server answered `{"ok":false,...}`.
    Server(ErrorReply),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => {
                write!(f, "server error ({}): {}", e.kind, e.message)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `tbaad` server (or a `tbaa-router` front tier —
/// the wire protocol is identical).
pub struct Client {
    reader: LineReader,
    writer: Conn,
}

impl Client {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::over(Conn::connect_tcp(addr)?)
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Client> {
        Self::over(Conn::connect_unix(path)?)
    }

    fn over(conn: Conn) -> std::io::Result<Client> {
        let reader = LineReader::new(conn.try_clone()?);
        Ok(Client {
            reader,
            writer: conn,
        })
    }

    /// Sets the read timeout for replies (None = block forever).
    pub fn set_timeout(&mut self, d: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(d)
    }

    /// Sends one raw request line and returns the raw reply line
    /// (newlines stripped). The lowest-level entry point; the typed
    /// helpers below are built on it.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_line(line)?;
        self.read_reply_line()
    }

    /// Sends several request lines at once, then reads that many
    /// replies. Useful for pipelining independent queries.
    pub fn pipeline_raw(&mut self, lines: &[String]) -> Result<Vec<String>, ClientError> {
        self.send_raw(lines)?;
        lines.iter().map(|_| self.read_reply_line()).collect()
    }

    /// Writes request lines without reading replies (for shutdown-drain
    /// testing). Pair with [`Client::read_reply_line`].
    pub fn send_raw(&mut self, lines: &[String]) -> Result<(), ClientError> {
        use std::io::Write;
        let mut batch = String::new();
        for line in lines {
            debug_assert!(!line.contains('\n'));
            batch.push_str(line);
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one reply line.
    pub fn read_reply_line(&mut self) -> Result<String, ClientError> {
        match self.reader.tick() {
            Ok(Tick::Line(line)) => Ok(line),
            // With no read timeout set, Idle cannot occur; with one
            // set via `set_timeout`, its expiry is an error, matching
            // blocking-read semantics.
            Ok(Tick::Idle(_)) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for reply",
            ))),
            Ok(Tick::Eof) => Err(ClientError::Protocol("server closed the connection".into())),
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Sends one request and decodes the typed [`Reply`]. A structured
    /// server error decodes to `Ok(Reply::Err(..))`; use
    /// [`Client::request_ok`] to promote those to [`ClientError`].
    pub fn request(&mut self, request: &Value) -> Result<Reply, ClientError> {
        let raw = self.request_raw(&request.encode())?;
        Reply::decode(&raw).map_err(ClientError::Protocol)
    }

    /// Like [`Client::request`], but a server error reply becomes
    /// [`ClientError::Server`].
    pub fn request_ok(&mut self, request: &Value) -> Result<Reply, ClientError> {
        self.request(request)?.into_result().map_err(ClientError::Server)
    }

    /// Loads a benchsuite program into a (possibly shared) session.
    pub fn load_bench(&mut self, name: &str, scale: u32) -> Result<LoadReply, ClientError> {
        self.load_bench_with(name, scale, false)
    }

    /// Like [`Client::load_bench`], optionally asking the server to list
    /// the session's addressable access paths in the reply.
    pub fn load_bench_with(
        &mut self,
        name: &str,
        scale: u32,
        want_paths: bool,
    ) -> Result<LoadReply, ClientError> {
        let mut fields = vec![
            ("op", Value::Str("load".into())),
            ("bench", Value::Str(name.into())),
            ("scale", Value::Int(scale as i64)),
        ];
        if want_paths {
            fields.push(("paths", Value::Bool(true)));
        }
        self.load_request(Value::object(fields))
    }

    /// Compiles inline MiniM3 source into a session.
    pub fn load_source(&mut self, source: &str) -> Result<LoadReply, ClientError> {
        self.load_source_with(source, false)
    }

    /// Like [`Client::load_source`], optionally asking the server to
    /// list the session's addressable access paths in the reply.
    pub fn load_source_with(
        &mut self,
        source: &str,
        want_paths: bool,
    ) -> Result<LoadReply, ClientError> {
        let mut fields = vec![
            ("op", Value::Str("load".into())),
            ("source", Value::Str(source.into())),
        ];
        if want_paths {
            fields.push(("paths", Value::Bool(true)));
        }
        self.load_request(Value::object(fields))
    }

    fn load_request(&mut self, req: Value<'_>) -> Result<LoadReply, ClientError> {
        match self.request_ok(&req)? {
            Reply::Loaded(r) => Ok(r),
            other => Err(Self::unexpected("load", &other)),
        }
    }

    fn unexpected(verb: &str, reply: &Reply) -> ClientError {
        ClientError::Protocol(format!("unexpected {verb} reply: {}", reply.raw()))
    }

    fn query_base<'a>(
        op: &'a str,
        session: &'a str,
        level: Option<&'a str>,
        world: Option<&'a str>,
    ) -> Vec<(std::borrow::Cow<'a, str>, Value<'a>)> {
        let mut fields = vec![
            ("op".into(), Value::Str(op.into())),
            ("session".into(), Value::Str(session.into())),
        ];
        if let Some(l) = level {
            fields.push(("level".into(), Value::Str(l.into())));
        }
        if let Some(w) = world {
            fields.push(("world".into(), Value::Str(w.into())));
        }
        fields
    }

    /// Runs a batch of `may_alias` queries (a single query is a batch of
    /// one). `level`/`world` default server-side to the paper's most
    /// precise configuration.
    pub fn alias(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
        pairs: &[(String, String)],
    ) -> Result<AliasReply, ClientError> {
        let mut fields = Self::query_base("alias", session, level, world);
        fields.push((
            "pairs".into(),
            Value::Array(
                pairs
                    .iter()
                    .map(|(a, b)| {
                        Value::Array(vec![
                            Value::Str(a.as_str().into()),
                            Value::Str(b.as_str().into()),
                        ])
                    })
                    .collect(),
            ),
        ));
        match self.request_ok(&Value::Object(fields))? {
            Reply::Alias(r) => Ok(r),
            other => Err(Self::unexpected("alias", &other)),
        }
    }

    /// Table-5 style static pair counts for the session's program.
    pub fn pairs(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
    ) -> Result<PairsReply, ClientError> {
        match self.request_ok(&Value::Object(Self::query_base("pairs", session, level, world)))? {
            Reply::Pairs(r) => Ok(r),
            other => Err(Self::unexpected("pairs", &other)),
        }
    }

    /// Runs RLE on a scratch copy of the session's program and returns
    /// the static report.
    pub fn rle(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
    ) -> Result<RleReply, ClientError> {
        match self.request_ok(&Value::Object(Self::query_base("rle", session, level, world)))? {
            Reply::Rle(r) => Ok(r),
            other => Err(Self::unexpected("rle", &other)),
        }
    }

    /// The server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request_ok(&Value::object(vec![("op", Value::Str("stats".into()))]))? {
            Reply::Stats(r) => Ok(r),
            other => Err(Self::unexpected("stats", &other)),
        }
    }

    /// Drops a session. Returns whether it was live.
    pub fn unload(&mut self, session: &str) -> Result<bool, ClientError> {
        match self.request_ok(&Value::object(vec![
            ("op", Value::Str("unload".into())),
            ("session", Value::Str(session.into())),
        ]))? {
            Reply::Unloaded { unloaded, .. } => Ok(unloaded),
            other => Err(Self::unexpected("unload", &other)),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request_ok(&Value::object(vec![("op", Value::Str("shutdown".into()))]))? {
            Reply::Draining { .. } => Ok(()),
            other => Err(Self::unexpected("shutdown", &other)),
        }
    }
}
