//! A blocking client for the `tbaad` protocol.
//!
//! [`Client`] wraps one connection (TCP or, on unix, a Unix-domain
//! socket) and exposes one method per protocol verb. Raw reply lines are
//! kept on the typed results so callers — the integration tests in
//! particular — can compare wire bytes, not just decoded values.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::json::{parse, Value};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The reply was not a valid protocol reply.
    Protocol(String),
    /// The server answered `{"ok":false,...}`.
    Server {
        /// Error kind (`parse`, `proto`, `compile`, `no_session`, …).
        kind: String,
        /// Human-readable message.
        message: String,
        /// Structured compiler diagnostics, when `kind == "compile"`.
        diagnostics: Vec<WireDiagnostic>,
        /// The raw reply line.
        raw: String,
    },
}

/// One front-end diagnostic as carried over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Compiler phase (`lex`, `parse`, `check`, `lower`).
    pub phase: String,
    /// Byte span start.
    pub start: i64,
    /// Byte span end.
    pub end: i64,
    /// The message.
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message, .. } => {
                write!(f, "server error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A successful `load` reply.
#[derive(Debug, Clone)]
pub struct LoadReply {
    /// Session id to use in subsequent queries.
    pub session: String,
    /// Whether the program was already warm in the server's cache.
    pub cached: bool,
    /// Stable content key (`bench:ktree@2`, `src:…`).
    pub key: String,
    /// Heap reference sites in the program.
    pub heap_refs: i64,
    /// Addressable access paths (only when requested via `paths:true`).
    pub paths: Vec<String>,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `alias` reply.
#[derive(Debug, Clone)]
pub struct AliasReply {
    /// One verdict per queried pair, in request order.
    pub results: Vec<bool>,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `pairs` reply (Table-5 style counts).
#[derive(Debug, Clone)]
pub struct PairsReply {
    /// Heap reference expressions in the program.
    pub references: i64,
    /// Intraprocedural may-alias pairs.
    pub local_pairs: i64,
    /// Whole-program may-alias pairs.
    pub global_pairs: i64,
    /// The raw reply line.
    pub raw: String,
}

/// A successful `rle` reply (static RLE report).
#[derive(Debug, Clone)]
pub struct RleReply {
    /// Loads hoisted out of loops.
    pub hoisted: i64,
    /// Loads replaced by register references.
    pub eliminated: i64,
    /// Total removed (the Table 6 metric).
    pub removed: i64,
    /// The raw reply line.
    pub raw: String,
}

/// One connection to a `tbaad` server.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::over(Stream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Client> {
        Self::over(Stream::Unix(UnixStream::connect(path)?))
    }

    fn over(stream: Stream) -> std::io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sets the read timeout for replies (None = block forever).
    pub fn set_timeout(&mut self, d: Option<Duration>) -> std::io::Result<()> {
        match self.reader.get_ref() {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Sends one raw request line and returns the raw reply line
    /// (newlines stripped). The lowest-level entry point; the typed
    /// helpers below are built on it.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    /// Sends several request lines at once, then reads that many
    /// replies. Useful for pipelining independent queries.
    pub fn pipeline_raw(&mut self, lines: &[String]) -> Result<Vec<String>, ClientError> {
        let mut batch = String::new();
        for line in lines {
            debug_assert!(!line.contains('\n'));
            batch.push_str(line);
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        lines.iter().map(|_| self.read_reply_line()).collect()
    }

    /// Writes request lines without reading replies (for shutdown-drain
    /// testing). Pair with [`Client::read_reply_line`].
    pub fn send_raw(&mut self, lines: &[String]) -> Result<(), ClientError> {
        let mut batch = String::new();
        for line in lines {
            batch.push_str(line);
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one reply line.
    pub fn read_reply_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn checked(&mut self, request: Value) -> Result<(Value, String), ClientError> {
        let raw = self.request_raw(&request.encode())?;
        let value =
            parse(&raw).map_err(|e| ClientError::Protocol(format!("bad reply: {e}: {raw}")))?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok((value, raw)),
            Some(false) => {
                let err = value.get("error");
                let get = |k: &str| {
                    err.and_then(|e| e.get(k))
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string()
                };
                let diagnostics = err
                    .and_then(|e| e.get("diagnostics"))
                    .and_then(Value::as_array)
                    .map(|ds| {
                        ds.iter()
                            .map(|d| WireDiagnostic {
                                phase: d
                                    .get("phase")
                                    .and_then(Value::as_str)
                                    .unwrap_or("")
                                    .to_string(),
                                start: d.get("start").and_then(Value::as_i64).unwrap_or(-1),
                                end: d.get("end").and_then(Value::as_i64).unwrap_or(-1),
                                message: d
                                    .get("message")
                                    .and_then(Value::as_str)
                                    .unwrap_or("")
                                    .to_string(),
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Err(ClientError::Server {
                    kind: get("kind"),
                    message: get("message"),
                    diagnostics,
                    raw,
                })
            }
            None => Err(ClientError::Protocol(format!("reply without `ok`: {raw}"))),
        }
    }

    fn int(v: &Value, key: &str) -> i64 {
        v.get(key).and_then(Value::as_i64).unwrap_or(-1)
    }

    /// Loads a benchsuite program into a (possibly shared) session.
    pub fn load_bench(&mut self, name: &str, scale: u32) -> Result<LoadReply, ClientError> {
        self.load_bench_with(name, scale, false)
    }

    /// Like [`Client::load_bench`], optionally asking the server to list
    /// the session's addressable access paths in the reply.
    pub fn load_bench_with(
        &mut self,
        name: &str,
        scale: u32,
        want_paths: bool,
    ) -> Result<LoadReply, ClientError> {
        let mut fields = vec![
            ("op", Value::Str("load".into())),
            ("bench", Value::Str(name.into())),
            ("scale", Value::Int(scale as i64)),
        ];
        if want_paths {
            fields.push(("paths", Value::Bool(true)));
        }
        self.load_request(Value::object(fields))
    }

    /// Compiles inline MiniM3 source into a session.
    pub fn load_source(&mut self, source: &str) -> Result<LoadReply, ClientError> {
        self.load_request(Value::object(vec![
            ("op", Value::Str("load".into())),
            ("source", Value::Str(source.into())),
        ]))
    }

    fn load_request(&mut self, req: Value) -> Result<LoadReply, ClientError> {
        let (v, raw) = self.checked(req)?;
        Ok(LoadReply {
            session: v
                .get("session")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
            key: v.get("key").and_then(Value::as_str).unwrap_or("").to_string(),
            heap_refs: Self::int(&v, "heap_refs"),
            paths: v
                .get("paths")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            raw,
        })
    }

    fn query_base(op: &str, session: &str, level: Option<&str>, world: Option<&str>) -> Vec<(String, Value)> {
        let mut fields = vec![
            ("op".to_string(), Value::Str(op.into())),
            ("session".to_string(), Value::Str(session.into())),
        ];
        if let Some(l) = level {
            fields.push(("level".to_string(), Value::Str(l.into())));
        }
        if let Some(w) = world {
            fields.push(("world".to_string(), Value::Str(w.into())));
        }
        fields
    }

    /// Runs a batch of `may_alias` queries (a single query is a batch of
    /// one). `level`/`world` default server-side to the paper's most
    /// precise configuration.
    pub fn alias(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
        pairs: &[(String, String)],
    ) -> Result<AliasReply, ClientError> {
        let mut fields = Self::query_base("alias", session, level, world);
        fields.push((
            "pairs".to_string(),
            Value::Array(
                pairs
                    .iter()
                    .map(|(a, b)| {
                        Value::Array(vec![Value::Str(a.clone()), Value::Str(b.clone())])
                    })
                    .collect(),
            ),
        ));
        let (v, raw) = self.checked(Value::Object(fields))?;
        let results = v
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Protocol(format!("alias reply without results: {raw}")))?
            .iter()
            .map(|r| r.as_bool().unwrap_or(false))
            .collect();
        Ok(AliasReply { results, raw })
    }

    /// Table-5 style static pair counts for the session's program.
    pub fn pairs(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
    ) -> Result<PairsReply, ClientError> {
        let (v, raw) =
            self.checked(Value::Object(Self::query_base("pairs", session, level, world)))?;
        Ok(PairsReply {
            references: Self::int(&v, "references"),
            local_pairs: Self::int(&v, "local_pairs"),
            global_pairs: Self::int(&v, "global_pairs"),
            raw,
        })
    }

    /// Runs RLE on a scratch copy of the session's program and returns
    /// the static report.
    pub fn rle(
        &mut self,
        session: &str,
        level: Option<&str>,
        world: Option<&str>,
    ) -> Result<RleReply, ClientError> {
        let (v, raw) =
            self.checked(Value::Object(Self::query_base("rle", session, level, world)))?;
        Ok(RleReply {
            hoisted: Self::int(&v, "hoisted"),
            eliminated: Self::int(&v, "eliminated"),
            removed: Self::int(&v, "removed"),
            raw,
        })
    }

    /// The server's metrics snapshot (the full `stats` reply object).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let (v, _raw) = self.checked(Value::object(vec![("op", Value::Str("stats".into()))]))?;
        Ok(v)
    }

    /// Drops a session. Returns whether it was live.
    pub fn unload(&mut self, session: &str) -> Result<bool, ClientError> {
        let (v, _raw) = self.checked(Value::object(vec![
            ("op", Value::Str("unload".into())),
            ("session", Value::Str(session.into())),
        ]))?;
        Ok(v.get("unloaded").and_then(Value::as_bool).unwrap_or(false))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.checked(Value::object(vec![("op", Value::Str("shutdown".into()))]))?;
        Ok(())
    }
}
