//! The `tbaad` wire protocol: newline-delimited JSON requests/replies.
//!
//! Every request is one JSON object on one line with an `"op"` field;
//! every reply is one JSON object on one line with an `"ok"` boolean.
//! Verbs:
//!
//! | op | request fields | success reply fields |
//! |---|---|---|
//! | `load` | `source` *or* `bench` (+`scale`, `paths?`) | `session`, `cached`, `funcs`, `instrs`, `heap_refs` (+`paths` when asked) |
//! | `alias` | `session`, `pairs:[[ap,ap],..]` *or* `ap1`+`ap2`, `level?`, `world?` | `session`, `level`, `world`, `results:[bool,..]` |
//! | `pairs` | `session`, `level?`, `world?` | `references`, `local_pairs`, `global_pairs` |
//! | `rle` | `session`, `level?`, `world?` | `hoisted`, `eliminated`, `removed` |
//! | `stats` | — | `stats` (metrics snapshot), `sessions` |
//! | `unload` | `session` | `unloaded` |
//! | `shutdown` | — | `draining` |
//!
//! Error replies are `{"ok":false,"error":{"kind":..,"message":..}}`;
//! compile failures additionally carry the front end's structured
//! diagnostics (`phase`, byte `span`, `message` — the same data
//! `Pipeline::run` returns in-process).
//!
//! [`Request`] borrows its string payloads from the request line — a
//! decoded `alias` batch allocates only its pair `Vec`, never copies of
//! the access paths or session id.

use std::borrow::Cow;

use mini_m3::Diagnostics;
use tbaa::analysis::Level;
use tbaa::World;

use crate::json::{parse, JsonError, Value};

/// Default workload scale for benchsuite loads that omit `scale`
/// (matches `tbaa_bench::DEFAULT_SCALE`).
pub const DEFAULT_SCALE: u32 = 2;
/// Default analysis level when a request omits `level`.
pub const DEFAULT_LEVEL: Level = Level::SmFieldTypeRefs;
/// Default world assumption when a request omits `world`.
pub const DEFAULT_WORLD: World = World::Closed;

/// A decoded request, borrowing strings from the request line where the
/// decoder could (escape-free payloads — the common case).
#[derive(Debug, Clone, PartialEq)]
pub enum Request<'a> {
    /// Compile a program into a session (idempotent per content).
    Load {
        /// Inline MiniM3 source (exclusive with `bench`).
        source: Option<Cow<'a, str>>,
        /// A `tbaa-benchsuite` program name (exclusive with `source`).
        bench: Option<Cow<'a, str>>,
        /// Workload scale for benchsuite programs.
        scale: u32,
        /// Whether the reply should list the addressable access paths.
        paths: bool,
    },
    /// One or more `may_alias` queries against a session.
    Alias {
        /// Session id from `load`.
        session: Cow<'a, str>,
        /// Analysis precision.
        level: Level,
        /// World assumption.
        world: World,
        /// Access-path pairs, e.g. `[["t.f","u.f"]]`.
        pairs: Vec<(Cow<'a, str>, Cow<'a, str>)>,
    },
    /// Table-5 style static pair counts for a session.
    Pairs {
        /// Session id from `load`.
        session: Cow<'a, str>,
        /// Analysis precision.
        level: Level,
        /// World assumption.
        world: World,
    },
    /// Run RLE on a copy of the session's program; return static stats.
    Rle {
        /// Session id from `load`.
        session: Cow<'a, str>,
        /// Analysis precision.
        level: Level,
        /// World assumption.
        world: World,
    },
    /// Server metrics snapshot.
    Stats,
    /// Drop a session from the cache.
    Unload {
        /// Session id from `load`.
        session: Cow<'a, str>,
    },
    /// Drain in-flight requests and exit.
    Shutdown,
}

/// Why a request could not be decoded or served.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was not valid JSON.
    Json(JsonError),
    /// The JSON did not match the protocol (missing/mistyped fields…).
    Invalid(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "{e}"),
            ProtoError::Invalid(m) => f.write_str(m),
        }
    }
}

/// Parses the `level` wire names (both the CLI spellings and the paper's).
pub fn parse_level(s: &str) -> Option<Level> {
    match s.to_ascii_lowercase().as_str() {
        "typedecl" => Some(Level::TypeDecl),
        "fields" | "fieldtypedecl" => Some(Level::FieldTypeDecl),
        "merges" | "smfieldtyperefs" => Some(Level::SmFieldTypeRefs),
        _ => None,
    }
}

/// Parses the `world` wire names.
pub fn parse_world(s: &str) -> Option<World> {
    match s.to_ascii_lowercase().as_str() {
        "closed" => Some(World::Closed),
        "open" => Some(World::Open),
        _ => None,
    }
}

/// The canonical wire spelling of a level (the paper's table name).
pub fn level_name(level: Level) -> &'static str {
    level.name()
}

/// The canonical wire spelling of a world.
pub fn world_name(world: World) -> &'static str {
    match world {
        World::Closed => "Closed",
        World::Open => "Open",
    }
}

fn take_str<'a>(v: &mut Value<'a>, key: &str) -> Result<Cow<'a, str>, ProtoError> {
    v.take(key)
        .and_then(Value::into_str)
        .ok_or_else(|| ProtoError::Invalid(format!("missing or non-string `{key}`")))
}

fn level_field(v: &Value<'_>) -> Result<Level, ProtoError> {
    match v.get("level") {
        None | Some(Value::Null) => Ok(DEFAULT_LEVEL),
        Some(Value::Str(s)) => {
            parse_level(s).ok_or_else(|| ProtoError::Invalid(format!("unknown level `{s}`")))
        }
        Some(_) => Err(ProtoError::Invalid("`level` must be a string".into())),
    }
}

fn world_field(v: &Value<'_>) -> Result<World, ProtoError> {
    match v.get("world") {
        None | Some(Value::Null) => Ok(DEFAULT_WORLD),
        Some(Value::Str(s)) => {
            parse_world(s).ok_or_else(|| ProtoError::Invalid(format!("unknown world `{s}`")))
        }
        Some(_) => Err(ProtoError::Invalid("`world` must be a string".into())),
    }
}

/// Decodes one request line. The result borrows from `line`.
pub fn decode_request(line: &str) -> Result<Request<'_>, ProtoError> {
    let mut v = parse(line).map_err(ProtoError::Json)?;
    let op = take_str(&mut v, "op")?;
    match op.as_ref() {
        "load" => {
            let source = v.take("source").and_then(Value::into_str);
            let bench = v.take("bench").and_then(Value::into_str);
            if source.is_some() == bench.is_some() {
                return Err(ProtoError::Invalid(
                    "`load` takes exactly one of `source` or `bench`".into(),
                ));
            }
            let scale = match v.get("scale") {
                None | Some(Value::Null) => DEFAULT_SCALE,
                Some(s) => s
                    .as_i64()
                    .filter(|n| (1..=64).contains(n))
                    .ok_or_else(|| ProtoError::Invalid("`scale` must be 1..=64".into()))?
                    as u32,
            };
            let paths = match v.get("paths") {
                None | Some(Value::Null) => false,
                Some(Value::Bool(b)) => *b,
                Some(_) => {
                    return Err(ProtoError::Invalid("`paths` must be a boolean".into()))
                }
            };
            Ok(Request::Load {
                source,
                bench,
                scale,
                paths,
            })
        }
        "alias" => {
            let session = take_str(&mut v, "session")?;
            let level = level_field(&v)?;
            let world = world_field(&v)?;
            let mut pairs = Vec::new();
            match (v.take("pairs"), v.take("ap1"), v.take("ap2")) {
                (Some(Value::Array(items)), None, None) => {
                    pairs.reserve(items.len());
                    for item in items {
                        let pair = match item {
                            Value::Array(a) if a.len() == 2 => a,
                            _ => {
                                return Err(ProtoError::Invalid(
                                    "`pairs` entries must be [ap, ap]".into(),
                                ))
                            }
                        };
                        let mut it = pair.into_iter();
                        let a = it.next().unwrap().into_str().ok_or_else(|| {
                            ProtoError::Invalid("access paths must be strings".into())
                        })?;
                        let b = it.next().unwrap().into_str().ok_or_else(|| {
                            ProtoError::Invalid("access paths must be strings".into())
                        })?;
                        pairs.push((a, b));
                    }
                }
                (None, Some(a), Some(b)) => {
                    let a = a.into_str().ok_or_else(|| {
                        ProtoError::Invalid("`ap1` must be a string".into())
                    })?;
                    let b = b.into_str().ok_or_else(|| {
                        ProtoError::Invalid("`ap2` must be a string".into())
                    })?;
                    pairs.push((a, b));
                }
                _ => {
                    return Err(ProtoError::Invalid(
                        "`alias` takes `pairs:[[ap,ap],..]` or `ap1`+`ap2`".into(),
                    ))
                }
            }
            if pairs.is_empty() {
                return Err(ProtoError::Invalid("`pairs` must be non-empty".into()));
            }
            Ok(Request::Alias {
                session,
                level,
                world,
                pairs,
            })
        }
        "pairs" => Ok(Request::Pairs {
            session: take_str(&mut v, "session")?,
            level: level_field(&v)?,
            world: world_field(&v)?,
        }),
        "rle" => Ok(Request::Rle {
            session: take_str(&mut v, "session")?,
            level: level_field(&v)?,
            world: world_field(&v)?,
        }),
        "stats" => Ok(Request::Stats),
        "unload" => Ok(Request::Unload {
            session: take_str(&mut v, "session")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::Invalid(format!("unknown op `{other}`"))),
    }
}

/// The verb name a request counts under in the metrics.
pub fn verb(req: &Request<'_>) -> &'static str {
    match req {
        Request::Load { .. } => "load",
        Request::Alias { .. } => "alias",
        Request::Pairs { .. } => "pairs",
        Request::Rle { .. } => "rle",
        Request::Stats => "stats",
        Request::Unload { .. } => "unload",
        Request::Shutdown => "shutdown",
    }
}

/// Builds a success reply: `{"ok":true, ...fields}`.
pub fn ok_reply<'a>(fields: Vec<(&'a str, Value<'a>)>) -> Value<'a> {
    let mut pairs = vec![("ok", Value::Bool(true))];
    pairs.extend(fields);
    Value::object(pairs)
}

/// Builds an error reply: `{"ok":false,"error":{"kind":..,"message":..}}`.
/// Owned (`'static`) — error paths are cold, so the copies don't matter.
pub fn error_reply(kind: &str, message: &str) -> Value<'static> {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str(kind.to_owned().into())),
                ("message", Value::Str(message.to_owned().into())),
            ]),
        ),
    ])
}

/// Encodes front-end diagnostics the way the wire carries them: an array
/// of `{"phase","start","end","message"}`.
pub fn diagnostics_json(diags: &Diagnostics) -> Value<'static> {
    Value::Array(
        diags
            .iter()
            .map(|d| {
                Value::object(vec![
                    ("phase", Value::Str(d.phase.to_string().into())),
                    ("start", Value::Int(d.span.start as i64)),
                    ("end", Value::Int(d.span.end as i64)),
                    ("message", Value::Str(d.message.clone().into())),
                ])
            })
            .collect(),
    )
}

/// Builds a compile-failure reply carrying structured diagnostics.
pub fn compile_error_reply(diags: &Diagnostics) -> Value<'static> {
    Value::object(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::Str("compile".into())),
                (
                    "message",
                    Value::Str(
                        format!(
                            "source does not compile ({} diagnostic{})",
                            diags.len(),
                            if diags.len() == 1 { "" } else { "s" }
                        )
                        .into(),
                    ),
                ),
                ("diagnostics", diagnostics_json(diags)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_load_variants() {
        let r = decode_request(r#"{"op":"load","bench":"ktree","scale":2}"#).unwrap();
        assert_eq!(
            r,
            Request::Load {
                source: None,
                bench: Some("ktree".into()),
                scale: 2,
                paths: false
            }
        );
        let r = decode_request(r#"{"op":"load","source":"MODULE M; BEGIN END M."}"#).unwrap();
        assert!(matches!(r, Request::Load { source: Some(_), bench: None, .. }));
        assert!(decode_request(r#"{"op":"load"}"#).is_err());
        assert!(decode_request(r#"{"op":"load","bench":"x","source":"y"}"#).is_err());
        assert!(decode_request(r#"{"op":"load","bench":"x","scale":0}"#).is_err());
    }

    #[test]
    fn decodes_alias_batch_and_single() {
        let batched =
            decode_request(r#"{"op":"alias","session":"s1","pairs":[["a.f","b.f"],["a.f","a.g"]]}"#)
                .unwrap();
        match batched {
            Request::Alias { pairs, level, world, .. } => {
                assert_eq!(pairs.len(), 2);
                assert_eq!(level, DEFAULT_LEVEL);
                assert_eq!(world, DEFAULT_WORLD);
            }
            other => panic!("{other:?}"),
        }
        let single = decode_request(
            r#"{"op":"alias","session":"s1","ap1":"a.f","ap2":"b.f","level":"typedecl","world":"open"}"#,
        )
        .unwrap();
        match single {
            Request::Alias { pairs, level, world, .. } => {
                assert_eq!(pairs, vec![("a.f".into(), "b.f".into())]);
                assert_eq!(level, Level::TypeDecl);
                assert_eq!(world, World::Open);
            }
            other => panic!("{other:?}"),
        }
        assert!(decode_request(r#"{"op":"alias","session":"s1"}"#).is_err());
        assert!(decode_request(r#"{"op":"alias","session":"s1","pairs":[]}"#).is_err());
        assert!(decode_request(r#"{"op":"alias","session":"s1","pairs":[["a"]]}"#).is_err());
    }

    #[test]
    fn decoded_requests_borrow_from_the_line() {
        let line = r#"{"op":"alias","session":"s1","pairs":[["a.f","b.f"]]}"#;
        match decode_request(line).unwrap() {
            Request::Alias { session, pairs, .. } => {
                assert!(matches!(session, Cow::Borrowed(_)));
                assert!(pairs
                    .iter()
                    .all(|(a, b)| matches!(a, Cow::Borrowed(_)) && matches!(b, Cow::Borrowed(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn level_world_spellings() {
        assert_eq!(parse_level("SMFieldTypeRefs"), Some(Level::SmFieldTypeRefs));
        assert_eq!(parse_level("merges"), Some(Level::SmFieldTypeRefs));
        assert_eq!(parse_level("fields"), Some(Level::FieldTypeDecl));
        assert_eq!(parse_level("bogus"), None);
        assert_eq!(parse_world("Open"), Some(World::Open));
        assert_eq!(parse_world("bogus"), None);
    }

    #[test]
    fn simple_ops() {
        assert_eq!(decode_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            decode_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            decode_request(r#"{"op":"unload","session":"s9"}"#).unwrap(),
            Request::Unload { session: "s9".into() }
        );
        assert!(decode_request(r#"{"op":"frobnicate"}"#).is_err());
        assert!(decode_request("not json").is_err());
    }

    #[test]
    fn replies_are_single_line_objects() {
        let ok = ok_reply(vec![("x", Value::Int(1))]).encode();
        assert_eq!(ok, r#"{"ok":true,"x":1}"#);
        let err = error_reply("proto", "bad").encode();
        assert_eq!(err, r#"{"ok":false,"error":{"kind":"proto","message":"bad"}}"#);
        assert!(!ok.contains('\n'));
    }

    #[test]
    fn compile_errors_carry_structured_diagnostics() {
        let diags = match tbaa_ir::compile_to_ir("MODULE Broken") {
            Err(d) => d,
            Ok(_) => panic!("must not compile"),
        };
        let reply = compile_error_reply(&diags);
        let err = reply.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("compile"));
        let ds = err.get("diagnostics").unwrap().as_array().unwrap();
        assert!(!ds.is_empty());
        assert!(ds[0].get("phase").unwrap().as_str().is_some());
        assert!(ds[0].get("start").unwrap().as_i64().is_some());
        assert!(ds[0].get("message").unwrap().as_str().is_some());
    }
}
