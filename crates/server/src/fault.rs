//! Deterministic fault-schedule harness for journal files.
//!
//! Recovery edge cases — torn final records, truncations, bit-flips,
//! duplicated sequence numbers — must be reproducible unit tests, not
//! chaos-run coincidences. This module turns a seed into a concrete
//! [`FaultPlan`] and applies each [`Fault`] to a journal file's bytes;
//! the tests then assert that [`crate::journal::scan`] recovers a
//! well-defined prefix of the original records, byte-for-byte.
//!
//! Faults are parameterized in *permille of the file/record span*, so
//! the same plan applies meaningfully to journals of any size, and the
//! exact mutation is a pure function of `(plan, file bytes)`.
//!
//! The RNG is a private xorshift64 rather than `tbaa_bench::rng`
//! because `tbaa-bench` depends on this crate — the copy keeps the
//! dependency graph acyclic while every schedule still reproduces from
//! its printed seed.

use crate::journal::{decode_record, MAGIC};

/// Minimal xorshift64 (same recurrence as `tbaa_bench::rng::XorShift64`).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; zero is mapped to a fixed odd constant.
    pub fn new(seed: u64) -> SmallRng {
        SmallRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One injectable journal corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the *final* record partway through: keep
    /// `keep_permille`/1000 of its framed bytes (always at least one
    /// byte short, so the record is torn).
    TornTail {
        /// Portion of the final record's bytes to keep, in permille.
        keep_permille: u16,
    },
    /// Truncate the whole file at `at_permille`/1000 of its length
    /// (an arbitrary cut — may land mid-record or mid-header).
    Truncate {
        /// Cut position as a permille of the file length.
        at_permille: u16,
    },
    /// XOR one byte at `at_permille`/1000 of the file with `mask`.
    BitFlip {
        /// Flip position as a permille of the file length.
        at_permille: u16,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Re-append a verbatim copy of one record right after itself —
    /// a duplicated sequence number (the benign double-append form).
    DuplicateSeq {
        /// Which record to duplicate, as a permille of the record count.
        record_permille: u16,
    },
}

/// A seeded, deterministic schedule of faults. Each fault is meant for
/// its own pristine copy of the journal (apply → recover → assert).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the schedule was derived from (printed on failure).
    pub seed: u64,
    /// The schedule.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Derives `n` faults from `seed`, cycling through all four kinds
    /// so every schedule of length ≥ 4 covers each at least once.
    pub fn schedule(seed: u64, n: usize) -> FaultPlan {
        let mut rng = SmallRng::new(seed);
        let faults = (0..n)
            .map(|i| {
                let permille = (rng.below(999) + 1) as u16;
                match i % 4 {
                    0 => Fault::TornTail {
                        keep_permille: permille,
                    },
                    1 => Fault::Truncate {
                        at_permille: permille,
                    },
                    2 => Fault::BitFlip {
                        at_permille: permille,
                        mask: (rng.below(255) + 1) as u8,
                    },
                    _ => Fault::DuplicateSeq {
                        record_permille: permille,
                    },
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }
}

/// Byte spans of the framed records in a journal file (checksums are
/// *not* validated — the harness must be able to locate records it is
/// about to corrupt, and a boundary scan only needs the length
/// prefixes).
pub fn record_spans(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return spans;
    }
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let Ok((_, consumed)) = decode_record(&bytes[pos..]) else {
            break;
        };
        spans.push(pos..pos + consumed);
        pos += consumed;
    }
    spans
}

/// Applies one fault to journal file bytes in place. A fault that has
/// nothing to bite on (empty journal, no records) leaves the bytes
/// unchanged — recovery of an untouched file is trivially divergence-free.
pub fn apply(bytes: &mut Vec<u8>, fault: &Fault) {
    let spans = record_spans(bytes);
    match fault {
        Fault::TornTail { keep_permille } => {
            let Some(last) = spans.last() else { return };
            let keep = (last.len() * *keep_permille as usize / 1000).min(last.len() - 1);
            bytes.truncate(last.start + keep);
        }
        Fault::Truncate { at_permille } => {
            let cut = bytes.len() * *at_permille as usize / 1000;
            bytes.truncate(cut);
        }
        Fault::BitFlip { at_permille, mask } => {
            if bytes.is_empty() {
                return;
            }
            let at = (bytes.len() * *at_permille as usize / 1000).min(bytes.len() - 1);
            bytes[at] ^= if *mask == 0 { 1 } else { *mask };
        }
        Fault::DuplicateSeq { record_permille } => {
            if spans.is_empty() {
                return;
            }
            let idx = (spans.len() * *record_permille as usize / 1000).min(spans.len() - 1);
            let span = spans[idx].clone();
            let copy = bytes[span.clone()].to_vec();
            // Insert the copy immediately after the original.
            let tail = bytes.split_off(span.end);
            bytes.extend_from_slice(&copy);
            bytes.extend_from_slice(&tail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{encode_record, scan, Record, RecordOp};

    fn journal_bytes(n: u64) -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        for seq in 1..=n {
            encode_record(
                &Record {
                    seq,
                    op: RecordOp::Load {
                        sid: format!("s{seq}"),
                        line: format!(r#"{{"op":"load","bench":"b{seq}","scale":1}}"#),
                    },
                },
                &mut buf,
            );
        }
        buf
    }

    #[test]
    fn spans_cover_the_file_exactly() {
        let bytes = journal_bytes(5);
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].start, MAGIC.len());
        assert_eq!(spans.last().unwrap().end, bytes.len());
    }

    #[test]
    fn schedules_are_deterministic_and_cover_all_kinds() {
        let a = FaultPlan::schedule(7, 8);
        let b = FaultPlan::schedule(7, 8);
        assert_eq!(a.faults, b.faults);
        for want in 0..4usize {
            assert!(
                a.faults.iter().enumerate().any(|(i, _)| i % 4 == want),
                "kind {want} missing from the schedule"
            );
        }
    }

    #[test]
    fn every_fault_recovers_to_a_prefix() {
        let pristine = journal_bytes(9);
        let original = scan(&pristine).records;
        let plan = FaultPlan::schedule(0xFA57, 16);
        for (i, fault) in plan.faults.iter().enumerate() {
            let mut bytes = pristine.clone();
            apply(&mut bytes, fault);
            let recovered = scan(&bytes);
            let n = recovered.records.len();
            assert!(
                recovered.records == original[..n],
                "seed {} fault {i} ({fault:?}): recovered records are not a prefix",
                plan.seed
            );
        }
    }

    #[test]
    fn duplicate_seq_is_skipped_not_torn() {
        let pristine = journal_bytes(4);
        let mut bytes = pristine.clone();
        apply(
            &mut bytes,
            &Fault::DuplicateSeq {
                record_permille: 500,
            },
        );
        let recovered = scan(&bytes);
        assert_eq!(recovered.records, scan(&pristine).records);
        assert_eq!(recovered.dup_skipped, 1);
        assert!(!recovered.torn);
    }
}
