//! Token definitions for MiniM3.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and names
    /// An identifier such as `Foo`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A character literal such as `'a'`.
    Char(char),
    /// A text (string) literal such as `"hi"`.
    Text(String),

    // Keywords
    Module,
    Type,
    Var,
    Const,
    Procedure,
    Begin,
    End,
    If,
    Then,
    Elsif,
    Else,
    While,
    Do,
    For,
    To,
    By,
    Repeat,
    Until,
    Loop,
    Exit,
    Return,
    With,
    Eval,
    Object,
    Methods,
    Overrides,
    Record,
    Array,
    Of,
    Ref,
    Branded,
    Nil,
    True,
    False,
    Not,
    And,
    Or,
    Div,
    Mod,

    // Punctuation and operators
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `#`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a reserved word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "MODULE" => Module,
            "TYPE" => Type,
            "VAR" => Var,
            "CONST" => Const,
            "PROCEDURE" => Procedure,
            "BEGIN" => Begin,
            "END" => End,
            "IF" => If,
            "THEN" => Then,
            "ELSIF" => Elsif,
            "ELSE" => Else,
            "WHILE" => While,
            "DO" => Do,
            "FOR" => For,
            "TO" => To,
            "BY" => By,
            "REPEAT" => Repeat,
            "UNTIL" => Until,
            "LOOP" => Loop,
            "EXIT" => Exit,
            "RETURN" => Return,
            "WITH" => With,
            "EVAL" => Eval,
            "OBJECT" => Object,
            "METHODS" => Methods,
            "OVERRIDES" => Overrides,
            "RECORD" => Record,
            "ARRAY" => Array,
            "OF" => Of,
            "REF" => Ref,
            "BRANDED" => Branded,
            "NIL" => Nil,
            "TRUE" => True,
            "FALSE" => False,
            "NOT" => Not,
            "AND" => And,
            "OR" => Or,
            "DIV" => Div,
            "MOD" => Mod,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            Int(v) => format!("integer `{v}`"),
            Char(c) => format!("character literal '{c}'"),
            Text(_) => "text literal".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text of a fixed token, or a placeholder.
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Module => "MODULE",
            Type => "TYPE",
            Var => "VAR",
            Const => "CONST",
            Procedure => "PROCEDURE",
            Begin => "BEGIN",
            End => "END",
            If => "IF",
            Then => "THEN",
            Elsif => "ELSIF",
            Else => "ELSE",
            While => "WHILE",
            Do => "DO",
            For => "FOR",
            To => "TO",
            By => "BY",
            Repeat => "REPEAT",
            Until => "UNTIL",
            Loop => "LOOP",
            Exit => "EXIT",
            Return => "RETURN",
            With => "WITH",
            Eval => "EVAL",
            Object => "OBJECT",
            Methods => "METHODS",
            Overrides => "OVERRIDES",
            Record => "RECORD",
            Array => "ARRAY",
            Of => "OF",
            Ref => "REF",
            Branded => "BRANDED",
            Nil => "NIL",
            True => "TRUE",
            False => "FALSE",
            Not => "NOT",
            And => "AND",
            Or => "OR",
            Div => "DIV",
            Mod => "MOD",
            Assign => ":=",
            Eq => "=",
            Ne => "#",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Amp => "&",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Dot => ".",
            DotDot => "..",
            Caret => "^",
            Ident(_) | Int(_) | Char(_) | Text(_) | Eof => "<dynamic>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it appears in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(TokenKind::keyword("MODULE"), Some(TokenKind::Module));
        assert_eq!(TokenKind::keyword("WITH"), Some(TokenKind::With));
        assert_eq!(TokenKind::keyword("module"), None, "keywords are uppercase");
        assert_eq!(TokenKind::keyword("Foo"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Assign.describe(), "`:=`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
