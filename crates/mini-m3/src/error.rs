//! Compiler diagnostics.
//!
//! All front-end phases report problems as [`Diagnostic`] values collected in
//! a [`Diagnostics`] sink; compilation entry points return
//! `Result<T, Diagnostics>` so callers can render every error at once.

use crate::span::{LineMap, Span};
use std::error::Error;
use std::fmt;

/// Which phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and type checking.
    Check,
    /// Lowering to IR.
    Lower,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Lower => "lower",
        };
        f.write_str(s)
    }
}

/// A single compiler error with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The phase that detected the problem.
    pub phase: Phase,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with line/column info resolved through `map`.
    pub fn render(&self, map: &LineMap) -> String {
        format!(
            "{}: {} error: {}",
            map.line_col(self.span.start),
            self.phase,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} error: {}", self.span, self.phase, self.message)
    }
}

impl Error for Diagnostic {}

/// A collection of diagnostics; the error type of front-end entry points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    errors: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an error.
    pub fn error(&mut self, phase: Phase, span: Span, message: impl Into<String>) {
        self.errors.push(Diagnostic::new(phase, span, message));
    }

    /// Whether any error has been recorded.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Number of recorded errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// The recorded errors in source order of discovery.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.errors.iter()
    }

    /// Consumes the sink and returns the underlying list.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.errors
    }

    /// Merges another sink into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.errors.extend(other.errors);
    }

    /// Renders all diagnostics, one per line, through `map`.
    pub fn render(&self, map: &LineMap) -> String {
        let mut out = String::new();
        for d in &self.errors {
            out.push_str(&d.render(map));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.errors.is_empty() {
            return f.write_str("no errors");
        }
        for (i, d) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { errors: vec![d] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_errors() {
        let mut sink = Diagnostics::new();
        assert!(!sink.has_errors());
        sink.error(Phase::Lex, Span::new(0, 1), "bad char");
        sink.error(Phase::Parse, Span::new(2, 3), "bad token");
        assert!(sink.has_errors());
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.iter().count(), 2);
    }

    #[test]
    fn render_uses_line_map() {
        let map = LineMap::new("a\nbc");
        let d = Diagnostic::new(Phase::Check, Span::new(2, 3), "undefined name");
        assert_eq!(d.render(&map), "2:1: check error: undefined name");
    }

    #[test]
    fn display_is_never_empty() {
        let sink = Diagnostics::new();
        assert_eq!(sink.to_string(), "no errors");
        let d = Diagnostic::new(Phase::Lex, Span::new(0, 1), "x");
        assert!(!d.to_string().is_empty());
    }
}
