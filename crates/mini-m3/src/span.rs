//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics can point
//! at the offending source text. Spans are byte offsets into the original
//! source string; [`LineMap`] converts them to 1-based line/column pairs.

use std::fmt;

/// A half-open byte range `[start, end)` in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a new span from byte offsets.
    ///
    /// # Examples
    ///
    /// ```
    /// use mini_m3::span::Span;
    /// let s = Span::new(3, 7);
    /// assert_eq!(s.len(), 4);
    /// ```
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span at a position, used for synthesized nodes.
    pub fn point(at: u32) -> Self {
        Span { start: at, end: at }
    }

    /// The number of bytes covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mini_m3::span::Span;
    /// let joined = Span::new(1, 4).join(Span::new(6, 9));
    /// assert_eq!(joined, Span::new(1, 9));
    /// ```
    pub fn join(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for one source file.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line (line 0 starts at 0).
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map by scanning `source` for newlines.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset into a 1-based line/column pair.
    ///
    /// Offsets past the end of the file land on the final line.
    ///
    /// # Examples
    ///
    /// ```
    /// use mini_m3::span::LineMap;
    /// let map = LineMap::new("ab\ncd");
    /// assert_eq!(map.line_col(3).line, 2);
    /// assert_eq!(map.line_col(3).col, 1);
    /// ```
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(5, 10);
        let b = Span::new(2, 7);
        assert_eq!(a.join(b), Span::new(2, 10));
        assert_eq!(b.join(a), Span::new(2, 10));
    }

    #[test]
    fn span_point_is_empty() {
        assert!(Span::point(9).is_empty());
        assert!(!Span::new(0, 1).is_empty());
    }

    #[test]
    fn line_map_first_line() {
        let map = LineMap::new("hello\nworld\n");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(4), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn line_map_later_lines() {
        let map = LineMap::new("hello\nworld\nagain");
        assert_eq!(map.line_col(6), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(12), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(16), LineCol { line: 3, col: 5 });
    }

    #[test]
    fn line_map_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn display_formats() {
        assert_eq!(Span::new(1, 3).to_string(), "1..3");
        assert_eq!(LineCol { line: 2, col: 9 }.to_string(), "2:9");
    }
}
