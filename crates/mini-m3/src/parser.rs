//! Recursive-descent parser for MiniM3.
//!
//! The grammar is a faithful subset of Modula-3; see the crate-level docs
//! for the full grammar. The parser produces an arena-based [`Module`].

use crate::ast::*;
use crate::error::{Diagnostics, Phase};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete MiniM3 module from source text.
///
/// # Errors
///
/// Returns all lexical and syntactic diagnostics if the source does not
/// form a well-formed module.
///
/// # Examples
///
/// ```
/// let src = "MODULE M; BEGIN END M.";
/// let module = mini_m3::parser::parse(src)?;
/// assert_eq!(module.name, "M");
/// # Ok::<(), mini_m3::error::Diagnostics>(())
/// ```
pub fn parse(source: &str) -> Result<Module, Diagnostics> {
    let (tokens, mut diags) = lex(source);
    if diags.has_errors() {
        return Err(diags);
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        module: Module::default(),
        diags: Diagnostics::new(),
    };
    parser.module_decl();
    if parser.diags.has_errors() {
        diags.extend(parser.diags);
        Err(diags)
    } else {
        Ok(parser.module)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    module: Module,
    diags: Diagnostics,
}

/// Parsing aborts via this sentinel after an unrecoverable error; the
/// diagnostics sink carries the real message.
struct ParseAbort;

type PResult<T> = Result<T, ParseAbort>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<Span> {
        if self.at(kind) {
            Ok(self.bump().span)
        } else {
            self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            ));
            Err(ParseAbort)
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            let span = self.bump().span;
            Ok((name, span))
        } else {
            self.error_here(format!(
                "expected identifier, found {}",
                self.peek().describe()
            ));
            Err(ParseAbort)
        }
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        let span = self.peek_span();
        self.diags.error(Phase::Parse, span, msg);
    }

    // ---- declarations ------------------------------------------------

    fn module_decl(&mut self) {
        if self.module_decl_inner().is_err() {
            // diagnostics already recorded
        }
    }

    fn module_decl_inner(&mut self) -> PResult<()> {
        self.expect(&TokenKind::Module)?;
        let (name, _) = self.expect_ident()?;
        self.module.name = name.clone();
        self.expect(&TokenKind::Semi)?;
        self.decls()?;
        self.expect(&TokenKind::Begin)?;
        let body = self.stmts_until(&[TokenKind::End])?;
        self.module.body = body;
        self.expect(&TokenKind::End)?;
        let (end_name, end_span) = self.expect_ident()?;
        if end_name != name {
            self.diags.error(
                Phase::Parse,
                end_span,
                format!("module ends with `{end_name}` but is named `{name}`"),
            );
        }
        self.expect(&TokenKind::Dot)?;
        if !self.at(&TokenKind::Eof) {
            self.error_here("text after end of module");
        }
        Ok(())
    }

    fn decls(&mut self) -> PResult<()> {
        loop {
            match self.peek() {
                TokenKind::Type => {
                    self.bump();
                    while let TokenKind::Ident(_) = self.peek() {
                        let decl = self.type_decl()?;
                        self.module.types.push(decl);
                    }
                }
                TokenKind::Const => {
                    self.bump();
                    while let TokenKind::Ident(_) = self.peek() {
                        let decl = self.const_decl()?;
                        self.module.consts.push(decl);
                    }
                }
                TokenKind::Var => {
                    self.bump();
                    while let TokenKind::Ident(_) = self.peek() {
                        let decl = self.var_decl()?;
                        self.module.globals.push(decl);
                    }
                }
                TokenKind::Procedure => {
                    let p = self.proc_decl()?;
                    self.module.procs.push(p);
                }
                _ => return Ok(()),
            }
        }
    }

    fn type_decl(&mut self) -> PResult<TypeDecl> {
        let (name, start) = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let expr = self.type_expr()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(TypeDecl {
            name,
            expr,
            span: start.join(end),
        })
    }

    fn const_decl(&mut self) -> PResult<ConstDecl> {
        let (name, start) = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let value = self.expr()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(ConstDecl {
            name,
            value,
            span: start.join(end),
        })
    }

    fn var_decl(&mut self) -> PResult<VarDecl> {
        let (first, start) = self.expect_ident()?;
        let mut names = vec![first];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_ident()?.0);
        }
        self.expect(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?;
        Ok(VarDecl {
            names,
            ty,
            init,
            span: start.join(end),
        })
    }

    fn proc_decl(&mut self) -> PResult<ProcDecl> {
        let start = self.expect(&TokenKind::Procedure)?;
        let (name, _) = self.expect_ident()?;
        let params = self.params()?;
        let ret = if self.eat(&TokenKind::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let header_end = self.expect(&TokenKind::Eq)?;
        // Local declarations (VAR sections only inside procedures).
        let mut locals = Vec::new();
        while self.eat(&TokenKind::Var) {
            while let TokenKind::Ident(_) = self.peek() {
                locals.push(self.var_decl()?);
            }
        }
        self.expect(&TokenKind::Begin)?;
        let body = self.stmts_until(&[TokenKind::End])?;
        self.expect(&TokenKind::End)?;
        let (end_name, end_span) = self.expect_ident()?;
        if end_name != name {
            self.diags.error(
                Phase::Parse,
                end_span,
                format!("procedure ends with `{end_name}` but is named `{name}`"),
            );
        }
        self.expect(&TokenKind::Semi)?;
        Ok(ProcDecl {
            name,
            params,
            ret,
            locals,
            body,
            span: start.join(header_end),
        })
    }

    fn params(&mut self) -> PResult<Vec<Param>> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let mode = if self.eat(&TokenKind::Var) {
                    Mode::Var
                } else {
                    Mode::Value
                };
                let (first, start) = self.expect_ident()?;
                let mut names = vec![(first, start)];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_ident()?);
                }
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                for (name, span) in names {
                    params.push(Param {
                        mode,
                        name,
                        ty: ty.clone(),
                        span,
                    });
                }
                if !self.eat(&TokenKind::Semi) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    // ---- types --------------------------------------------------------

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ref => {
                self.bump();
                let target = self.type_expr()?;
                let span = start.join(target.span());
                Ok(TypeExpr::Ref {
                    brand: None,
                    target: Box::new(target),
                    span,
                })
            }
            TokenKind::Branded => {
                self.bump();
                let brand = if let TokenKind::Text(t) = self.peek() {
                    let t = t.clone();
                    self.bump();
                    t
                } else {
                    String::new()
                };
                match self.peek() {
                    TokenKind::Ref => {
                        self.bump();
                        let target = self.type_expr()?;
                        let span = start.join(target.span());
                        Ok(TypeExpr::Ref {
                            brand: Some(brand),
                            target: Box::new(target),
                            span,
                        })
                    }
                    TokenKind::Object => self.object_type(None, Some(brand), start),
                    _ => {
                        self.error_here("BRANDED must be followed by REF or OBJECT");
                        Err(ParseAbort)
                    }
                }
            }
            TokenKind::Object => self.object_type(None, None, start),
            TokenKind::Record => {
                self.bump();
                let fields = self.field_decls(&[TokenKind::End])?;
                let end = self.expect(&TokenKind::End)?;
                Ok(TypeExpr::Record {
                    fields,
                    span: start.join(end),
                })
            }
            TokenKind::Array => {
                self.bump();
                let range = if self.eat(&TokenKind::LBracket) {
                    let lo = self.int_const()?;
                    self.expect(&TokenKind::DotDot)?;
                    let hi = self.int_const()?;
                    self.expect(&TokenKind::RBracket)?;
                    Some((lo, hi))
                } else {
                    None
                };
                self.expect(&TokenKind::Of)?;
                let elem = self.type_expr()?;
                let span = start.join(elem.span());
                Ok(TypeExpr::Array {
                    range,
                    elem: Box::new(elem),
                    span,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                // `Super OBJECT ... END` or `Super BRANDED OBJECT ... END`
                match self.peek() {
                    TokenKind::Object => self.object_type(Some(name), None, start),
                    TokenKind::Branded => {
                        self.bump();
                        let brand = if let TokenKind::Text(t) = self.peek() {
                            let t = t.clone();
                            self.bump();
                            t
                        } else {
                            String::new()
                        };
                        self.object_type(Some(name), Some(brand), start)
                    }
                    _ => Ok(TypeExpr::Name(name, start)),
                }
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                Err(ParseAbort)
            }
        }
    }

    fn int_const(&mut self) -> PResult<i64> {
        let neg = self.eat(&TokenKind::Minus);
        if let TokenKind::Int(v) = self.peek() {
            let v = *v;
            self.bump();
            Ok(if neg { -v } else { v })
        } else {
            self.error_here("expected integer constant");
            Err(ParseAbort)
        }
    }

    fn object_type(
        &mut self,
        super_name: Option<String>,
        brand: Option<String>,
        start: Span,
    ) -> PResult<TypeExpr> {
        self.expect(&TokenKind::Object)?;
        let fields =
            self.field_decls(&[TokenKind::Methods, TokenKind::Overrides, TokenKind::End])?;
        let mut methods = Vec::new();
        let mut overrides = Vec::new();
        if self.eat(&TokenKind::Methods) {
            while let TokenKind::Ident(_) = self.peek() {
                let (name, mstart) = self.expect_ident()?;
                let params = self.params()?;
                let ret = if self.eat(&TokenKind::Colon) {
                    Some(self.type_expr()?)
                } else {
                    None
                };
                let impl_proc = if self.eat(&TokenKind::Assign) {
                    Some(self.expect_ident()?.0)
                } else {
                    None
                };
                let mend = self.expect(&TokenKind::Semi)?;
                methods.push(MethodDecl {
                    name,
                    params,
                    ret,
                    impl_proc,
                    span: mstart.join(mend),
                });
            }
        }
        if self.eat(&TokenKind::Overrides) {
            while let TokenKind::Ident(_) = self.peek() {
                let (name, ostart) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let (impl_proc, _) = self.expect_ident()?;
                let oend = self.expect(&TokenKind::Semi)?;
                overrides.push(OverrideDecl {
                    name,
                    impl_proc,
                    span: ostart.join(oend),
                });
            }
        }
        let end = self.expect(&TokenKind::End)?;
        Ok(TypeExpr::Object {
            super_name,
            brand,
            fields,
            methods,
            overrides,
            span: start.join(end),
        })
    }

    fn field_decls(&mut self, stop: &[TokenKind]) -> PResult<Vec<FieldDecl>> {
        let mut fields = Vec::new();
        while !stop.iter().any(|k| self.at(k)) {
            let (first, start) = self.expect_ident()?;
            let mut names = vec![first];
            while self.eat(&TokenKind::Comma) {
                names.push(self.expect_ident()?.0);
            }
            self.expect(&TokenKind::Colon)?;
            let ty = self.type_expr()?;
            let end = self.expect(&TokenKind::Semi)?;
            fields.push(FieldDecl {
                names,
                ty,
                span: start.join(end),
            });
        }
        Ok(fields)
    }

    // ---- statements ----------------------------------------------------

    /// Parses statements until one of the stop keywords (not consumed).
    fn stmts_until(&mut self, stop: &[TokenKind]) -> PResult<Vec<StmtId>> {
        let mut out = Vec::new();
        loop {
            // Tolerate stray semicolons between statements.
            while self.eat(&TokenKind::Semi) {}
            if stop.iter().any(|k| self.at(k)) || self.at(&TokenKind::Eof) {
                return Ok(out);
            }
            let stmt = self.stmt()?;
            out.push(stmt);
            while self.eat(&TokenKind::Semi) {}
        }
    }

    fn stmt(&mut self) -> PResult<StmtId> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(&TokenKind::Then)?;
                let body =
                    self.stmts_until(&[TokenKind::Elsif, TokenKind::Else, TokenKind::End])?;
                arms.push((cond, body));
                while self.eat(&TokenKind::Elsif) {
                    let c = self.expr()?;
                    self.expect(&TokenKind::Then)?;
                    let b =
                        self.stmts_until(&[TokenKind::Elsif, TokenKind::Else, TokenKind::End])?;
                    arms.push((c, b));
                }
                let else_body = if self.eat(&TokenKind::Else) {
                    self.stmts_until(&[TokenKind::End])?
                } else {
                    Vec::new()
                };
                let end = self.expect(&TokenKind::End)?;
                Ok(self
                    .module
                    .alloc_stmt(Stmt::If { arms, else_body }, start.join(end)))
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = self.stmts_until(&[TokenKind::End])?;
                let end = self.expect(&TokenKind::End)?;
                Ok(self
                    .module
                    .alloc_stmt(Stmt::While { cond, body }, start.join(end)))
            }
            TokenKind::Repeat => {
                self.bump();
                let body = self.stmts_until(&[TokenKind::Until])?;
                self.expect(&TokenKind::Until)?;
                let cond = self.expr()?;
                let end = self.module.expr_span(cond);
                Ok(self
                    .module
                    .alloc_stmt(Stmt::Repeat { body, cond }, start.join(end)))
            }
            TokenKind::Loop => {
                self.bump();
                let body = self.stmts_until(&[TokenKind::End])?;
                let end = self.expect(&TokenKind::End)?;
                Ok(self.module.alloc_stmt(Stmt::Loop { body }, start.join(end)))
            }
            TokenKind::Exit => {
                let span = self.bump().span;
                Ok(self.module.alloc_stmt(Stmt::Exit, span))
            }
            TokenKind::For => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let from = self.expr()?;
                self.expect(&TokenKind::To)?;
                let to = self.expr()?;
                let by = if self.eat(&TokenKind::By) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Do)?;
                let body = self.stmts_until(&[TokenKind::End])?;
                let end = self.expect(&TokenKind::End)?;
                Ok(self.module.alloc_stmt(
                    Stmt::For {
                        var,
                        from,
                        to,
                        by,
                        body,
                    },
                    start.join(end),
                ))
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi)
                    || self.at(&TokenKind::End)
                    || self.at(&TokenKind::Else)
                    || self.at(&TokenKind::Elsif)
                    || self.at(&TokenKind::Until)
                {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(self.module.alloc_stmt(Stmt::Return(value), start))
            }
            TokenKind::With => {
                self.bump();
                let mut bindings = Vec::new();
                loop {
                    let (name, _) = self.expect_ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let e = self.expr()?;
                    bindings.push((name, e));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::Do)?;
                let body = self.stmts_until(&[TokenKind::End])?;
                let end = self.expect(&TokenKind::End)?;
                Ok(self
                    .module
                    .alloc_stmt(Stmt::With { bindings, body }, start.join(end)))
            }
            TokenKind::Eval => {
                self.bump();
                let e = self.expr()?;
                Ok(self.module.alloc_stmt(Stmt::Eval(e), start))
            }
            _ => {
                // Assignment or call statement.
                let lhs = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let rhs = self.expr()?;
                    let span = start.join(self.module.expr_span(rhs));
                    Ok(self.module.alloc_stmt(Stmt::Assign { lhs, rhs }, span))
                } else {
                    if !matches!(self.module.expr(lhs), Expr::Call { .. }) {
                        let span = self.module.expr_span(lhs);
                        self.diags.error(
                            Phase::Parse,
                            span,
                            "expression statement must be a call or an assignment",
                        );
                    }
                    let span = self.module.expr_span(lhs);
                    Ok(self.module.alloc_stmt(Stmt::Call(lhs), span))
                }
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> PResult<ExprId> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = self.module.expr_span(lhs).join(self.module.expr_span(rhs));
            lhs = self.module.alloc_expr(
                Expr::Binary {
                    op: BinOp::Or,
                    lhs,
                    rhs,
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.not_expr()?;
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.not_expr()?;
            let span = self.module.expr_span(lhs).join(self.module.expr_span(rhs));
            lhs = self.module.alloc_expr(
                Expr::Binary {
                    op: BinOp::And,
                    lhs,
                    rhs,
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> PResult<ExprId> {
        if self.at(&TokenKind::Not) {
            let start = self.bump().span;
            let e = self.not_expr()?;
            let span = start.join(self.module.expr_span(e));
            Ok(self.module.alloc_expr(
                Expr::Unary {
                    op: UnOp::Not,
                    expr: e,
                },
                span,
            ))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> PResult<ExprId> {
        let lhs = self.sum_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.sum_expr()?;
        let span = self.module.expr_span(lhs).join(self.module.expr_span(rhs));
        Ok(self.module.alloc_expr(Expr::Binary { op, lhs, rhs }, span))
    }

    fn sum_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.term_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Amp => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term_expr()?;
            let span = self.module.expr_span(lhs).join(self.module.expr_span(rhs));
            lhs = self.module.alloc_expr(Expr::Binary { op, lhs, rhs }, span);
        }
    }

    fn term_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.factor_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Div => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor_expr()?;
            let span = self.module.expr_span(lhs).join(self.module.expr_span(rhs));
            lhs = self.module.alloc_expr(Expr::Binary { op, lhs, rhs }, span);
        }
    }

    fn factor_expr(&mut self) -> PResult<ExprId> {
        if self.at(&TokenKind::Minus) {
            let start = self.bump().span;
            let e = self.factor_expr()?;
            let span = start.join(self.module.expr_span(e));
            Ok(self.module.alloc_expr(
                Expr::Unary {
                    op: UnOp::Neg,
                    expr: e,
                },
                span,
            ))
        } else if self.at(&TokenKind::Plus) {
            self.bump();
            self.factor_expr()
        } else {
            self.suffixed_expr()
        }
    }

    fn suffixed_expr(&mut self) -> PResult<ExprId> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = self.module.expr_span(e).join(fspan);
                    e = self
                        .module
                        .alloc_expr(Expr::Qualify { base: e, field }, span);
                }
                TokenKind::Caret => {
                    let cspan = self.bump().span;
                    let span = self.module.expr_span(e).join(cspan);
                    e = self.module.alloc_expr(Expr::Deref(e), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect(&TokenKind::RBracket)?;
                    let span = self.module.expr_span(e).join(end);
                    e = self.module.alloc_expr(Expr::Index { base: e, index }, span);
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&TokenKind::RParen)?;
                    let span = self.module.expr_span(e).join(end);
                    e = self.module.alloc_expr(Expr::Call { callee: e, args }, span);
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> PResult<ExprId> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Int(v), span))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Char(c), span))
            }
            TokenKind::Text(t) => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Text(t), span))
            }
            TokenKind::True => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Bool(true), span))
            }
            TokenKind::False => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Bool(false), span))
            }
            TokenKind::Nil => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Nil, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(self.module.alloc_expr(Expr::Name(name), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                self.error_here(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                Err(ParseAbort)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        match parse(src) {
            Ok(m) => m,
            Err(d) => panic!("parse failed: {d}"),
        }
    }

    #[test]
    fn empty_module() {
        let m = parse_ok("MODULE M; BEGIN END M.");
        assert_eq!(m.name, "M");
        assert!(m.body.is_empty());
    }

    #[test]
    fn type_hierarchy_from_figure_1() {
        let m = parse_ok(
            "MODULE Fig1;
             TYPE
               T = OBJECT f, g: T; END;
               S1 = T OBJECT END;
               S2 = T OBJECT END;
               S3 = T OBJECT END;
             VAR t: T; s: S1; u: S2;
             BEGIN END Fig1.",
        );
        assert_eq!(m.types.len(), 4);
        match &m.types[1].expr {
            TypeExpr::Object { super_name, .. } => {
                assert_eq!(super_name.as_deref(), Some("T"));
            }
            other => panic!("expected object type, got {other:?}"),
        }
        assert_eq!(m.globals.len(), 3);
    }

    #[test]
    fn object_with_methods_and_overrides() {
        let m = parse_ok(
            "MODULE M;
             TYPE
               Shape = OBJECT area: INTEGER; METHODS grow (by: INTEGER): INTEGER := GrowShape; END;
               Circle = Shape OBJECT r: INTEGER; OVERRIDES grow := GrowCircle; END;
             PROCEDURE GrowShape (self: Shape; by: INTEGER): INTEGER =
             BEGIN RETURN by END GrowShape;
             PROCEDURE GrowCircle (self: Circle; by: INTEGER): INTEGER =
             BEGIN RETURN by + by END GrowCircle;
             BEGIN END M.",
        );
        match &m.types[0].expr {
            TypeExpr::Object { methods, .. } => {
                assert_eq!(methods.len(), 1);
                assert_eq!(methods[0].impl_proc.as_deref(), Some("GrowShape"));
            }
            _ => panic!("expected object"),
        }
        match &m.types[1].expr {
            TypeExpr::Object { overrides, .. } => {
                assert_eq!(overrides.len(), 1);
                assert_eq!(overrides[0].impl_proc, "GrowCircle");
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn branded_types() {
        let m = parse_ok(
            "MODULE M;
             TYPE
               B = BRANDED \"secret\" OBJECT x: INTEGER; END;
               P = BRANDED REF INTEGER;
             BEGIN END M.",
        );
        match &m.types[0].expr {
            TypeExpr::Object { brand, .. } => assert_eq!(brand.as_deref(), Some("secret")),
            _ => panic!("expected object"),
        }
        match &m.types[1].expr {
            TypeExpr::Ref { brand, .. } => assert_eq!(brand.as_deref(), Some("")),
            _ => panic!("expected ref"),
        }
    }

    #[test]
    fn arrays_open_and_fixed() {
        let m = parse_ok(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER; F = ARRAY [0..9] OF INTEGER;
             BEGIN END M.",
        );
        match &m.types[0].expr {
            TypeExpr::Array { range: None, .. } => {}
            _ => panic!("expected open array"),
        }
        match &m.types[1].expr {
            TypeExpr::Array {
                range: Some((0, 9)),
                ..
            } => {}
            _ => panic!("expected fixed array"),
        }
    }

    #[test]
    fn statements_parse() {
        let m = parse_ok(
            "MODULE M;
             VAR x: INTEGER; b: BOOLEAN;
             BEGIN
               x := 1;
               IF x = 1 THEN x := 2 ELSIF x = 2 THEN x := 3 ELSE x := 4 END;
               WHILE x < 10 DO x := x + 1 END;
               REPEAT x := x - 1 UNTIL x = 0;
               FOR i := 1 TO 10 BY 2 DO x := x + i END;
               LOOP EXIT END;
               WITH y = x DO x := y END;
               b := (x = 1) OR (x = 2) AND NOT (x = 3);
             END M.",
        );
        assert_eq!(m.body.len(), 8);
    }

    #[test]
    fn access_path_expression() {
        // The paper's running example shape: a^.b[i].c
        let m = parse_ok(
            "MODULE M;
             VAR x: INTEGER;
             BEGIN x := a^.b[0].c; END M.",
        );
        let Stmt::Assign { rhs, .. } = m.stmt(m.body[0]) else {
            panic!("expected assign");
        };
        let Expr::Qualify { base, field } = m.expr(*rhs) else {
            panic!("expected qualify at top");
        };
        assert_eq!(field, "c");
        assert!(matches!(m.expr(*base), Expr::Index { .. }));
    }

    #[test]
    fn call_and_method_call() {
        let m = parse_ok(
            "MODULE M;
             BEGIN
               Foo(1, 2);
               obj.meth(3);
             END M.",
        );
        assert_eq!(m.body.len(), 2);
        let Stmt::Call(c) = m.stmt(m.body[1]) else {
            panic!()
        };
        let Expr::Call { callee, .. } = m.expr(*c) else {
            panic!()
        };
        assert!(matches!(m.expr(*callee), Expr::Qualify { .. }));
    }

    #[test]
    fn wrong_end_name_is_error() {
        assert!(parse("MODULE M; BEGIN END N.").is_err());
    }

    #[test]
    fn bad_statement_is_error() {
        assert!(parse("MODULE M; BEGIN x + 1; END M.").is_err());
    }

    #[test]
    fn missing_then_is_error() {
        assert!(parse("MODULE M; BEGIN IF x DO END; END M.").is_err());
    }

    #[test]
    fn var_params_parse() {
        let m = parse_ok(
            "MODULE M;
             PROCEDURE Swap (VAR a, b: INTEGER) =
             VAR t: INTEGER;
             BEGIN t := a; a := b; b := t; END Swap;
             BEGIN END M.",
        );
        let p = &m.procs[0];
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].mode, Mode::Var);
        assert_eq!(p.locals.len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse_ok("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2 * 3; END M.");
        let Stmt::Assign { rhs, .. } = m.stmt(m.body[0]) else {
            panic!()
        };
        let Expr::Binary { op, rhs: r, .. } = m.expr(*rhs) else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(m.expr(*r), Expr::Binary { op: BinOp::Mul, .. }));
    }
}
