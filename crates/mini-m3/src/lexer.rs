//! The MiniM3 lexer.
//!
//! Converts source text into a vector of [`Token`]s. Comments are Modula-3
//! style `(* ... *)` and nest. Keywords are upper-case reserved words.

use crate::error::{Diagnostics, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenizes `source`.
///
/// Always returns the tokens produced so far along with any diagnostics;
/// on error the token stream still ends with [`TokenKind::Eof`] so the parser
/// can recover.
///
/// # Examples
///
/// ```
/// use mini_m3::lexer::lex;
/// let (tokens, diags) = lex("VAR x := 1;");
/// assert!(!diags.has_errors());
/// assert_eq!(tokens.len(), 6); // VAR x := 1 ; Eof
/// ```
pub fn lex(source: &str) -> (Vec<Token>, Diagnostics) {
    let mut lexer = Lexer::new(source);
    lexer.run();
    (lexer.tokens, lexer.diags)
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags: Diagnostics::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn error(&mut self, start: usize, msg: impl Into<String>) {
        self.diags
            .error(Phase::Lex, Span::new(start as u32, self.pos as u32), msg);
    }

    fn run(&mut self) {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(b) = self.bump() else {
                self.push(TokenKind::Eof, start);
                return;
            };
            match b {
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start),
                b'"' => self.text(start),
                b'\'' => self.char_lit(start),
                b':' => {
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Assign, start);
                    } else {
                        self.push(TokenKind::Colon, start);
                    }
                }
                b'=' => self.push(TokenKind::Eq, start),
                b'#' => self.push(TokenKind::Ne, start),
                b'<' => {
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Le, start);
                    } else {
                        self.push(TokenKind::Lt, start);
                    }
                }
                b'>' => {
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                b'+' => self.push(TokenKind::Plus, start),
                b'-' => self.push(TokenKind::Minus, start),
                b'*' => self.push(TokenKind::Star, start),
                b'&' => self.push(TokenKind::Amp, start),
                b'(' => self.push(TokenKind::LParen, start),
                b')' => self.push(TokenKind::RParen, start),
                b'[' => self.push(TokenKind::LBracket, start),
                b']' => self.push(TokenKind::RBracket, start),
                b';' => self.push(TokenKind::Semi, start),
                b',' => self.push(TokenKind::Comma, start),
                b'.' => {
                    if self.peek() == Some(b'.') {
                        self.bump();
                        self.push(TokenKind::DotDot, start);
                    } else {
                        self.push(TokenKind::Dot, start);
                    }
                }
                b'^' => self.push(TokenKind::Caret, start),
                _ => self.error(start, format!("unexpected character `{}`", b as char)),
            }
        }
    }

    /// Skips whitespace and (nested) comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match self.peek() {
                            None => {
                                self.error(start, "unterminated comment");
                                return;
                            }
                            Some(b'(') if self.peek2() == Some(b'*') => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            Some(b'*') if self.peek2() == Some(b')') => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) {
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        match text.parse::<i64>() {
            Ok(v) => self.push(TokenKind::Int(v), start),
            Err(_) => {
                self.error(start, "integer literal out of range");
                self.push(TokenKind::Int(0), start);
            }
        }
    }

    fn text(&mut self, start: usize) {
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    self.error(start, "unterminated text literal");
                    break;
                }
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'"') => value.push('"'),
                    _ => {
                        self.error(start, "invalid escape in text literal");
                    }
                },
                Some(b) => value.push(b as char),
            }
        }
        self.push(TokenKind::Text(value), start);
    }

    fn char_lit(&mut self, start: usize) {
        let c = match self.bump() {
            None => {
                self.error(start, "unterminated character literal");
                return;
            }
            Some(b'\\') => match self.bump() {
                Some(b'n') => '\n',
                Some(b't') => '\t',
                Some(b'\\') => '\\',
                Some(b'\'') => '\'',
                _ => {
                    self.error(start, "invalid escape in character literal");
                    '?'
                }
            },
            Some(b) => b as char,
        };
        if self.bump() != Some(b'\'') {
            self.error(start, "unterminated character literal");
        }
        self.push(TokenKind::Char(c), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex(src);
        assert!(!diags.has_errors(), "unexpected errors: {diags}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        assert_eq!(
            kinds("MODULE Main;"),
            vec![Module, Ident("Main".into()), Semi, Eof]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds(":= = # < <= > >= + - * & ^ . .."),
            vec![Assign, Eq, Ne, Lt, Le, Gt, Ge, Plus, Minus, Star, Amp, Caret, Dot, DotDot, Eof]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds("42 'x' \"hi\\n\""),
            vec![Int(42), Char('x'), Text("hi\n".into()), Eof]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("WHILE While while"),
            vec![While, Ident("While".into()), Ident("while".into()), Eof]
        );
    }

    #[test]
    fn nested_comments_skip() {
        assert_eq!(
            kinds("a (* outer (* inner *) still *) b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let (_, diags) = lex("(* oops");
        assert!(diags.has_errors());
    }

    #[test]
    fn unterminated_text_is_error() {
        let (_, diags) = lex("\"abc");
        assert!(diags.has_errors());
    }

    #[test]
    fn unexpected_char_is_error() {
        let (toks, diags) = lex("a $ b");
        assert!(diags.has_errors());
        // Lexing continues past the bad character.
        assert_eq!(toks.len(), 3); // a b Eof
    }

    #[test]
    fn spans_are_correct() {
        let (toks, _) = lex("AB cd");
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn subscript_vs_range() {
        assert_eq!(
            kinds("a[1..2]"),
            vec![
                Ident("a".into()),
                LBracket,
                Int(1),
                DotDot,
                Int(2),
                RBracket,
                Eof
            ]
        );
    }
}
