//! Abstract syntax tree for MiniM3.
//!
//! The AST is arena-based: expressions and statements live in flat vectors
//! inside [`Module`] and are referenced by [`ExprId`] / [`StmtId`]. Later
//! phases (the type checker, the lowering pass) attach information to nodes
//! through side tables indexed by these ids.

use crate::span::Span;
use std::fmt;

/// Index of an expression in a module's expression arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Index of a statement in a module's statement arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A parsed MiniM3 module (one whole program).
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name from the header.
    pub name: String,
    /// Type declarations in source order.
    pub types: Vec<TypeDecl>,
    /// Constant declarations.
    pub consts: Vec<ConstDecl>,
    /// Module-level (global) variables.
    pub globals: Vec<VarDecl>,
    /// Procedure declarations.
    pub procs: Vec<ProcDecl>,
    /// Statements of the main body.
    pub body: Vec<StmtId>,
    /// Expression arena.
    pub exprs: Vec<Expr>,
    /// Span of each expression, parallel to `exprs`.
    pub expr_spans: Vec<Span>,
    /// Statement arena.
    pub stmts: Vec<Stmt>,
    /// Span of each statement, parallel to `stmts`.
    pub stmt_spans: Vec<Span>,
}

impl Module {
    /// Allocates an expression, returning its id.
    pub fn alloc_expr(&mut self, expr: Expr, span: Span) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(expr);
        self.expr_spans.push(span);
        id
    }

    /// Allocates a statement, returning its id.
    pub fn alloc_stmt(&mut self, stmt: Stmt, span: Span) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(stmt);
        self.stmt_spans.push(span);
        id
    }

    /// The expression for an id.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The span of an expression.
    pub fn expr_span(&self, id: ExprId) -> Span {
        self.expr_spans[id.0 as usize]
    }

    /// The statement for an id.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// The span of a statement.
    pub fn stmt_span(&self, id: StmtId) -> Span {
        self.stmt_spans[id.0 as usize]
    }

    /// Looks up a procedure declaration by name.
    pub fn proc(&self, name: &str) -> Option<&ProcDecl> {
        self.procs.iter().find(|p| p.name == name)
    }
}

/// `TYPE Name = <type expression>;`
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// Declared type name.
    pub name: String,
    /// The right-hand side type expression.
    pub expr: TypeExpr,
    /// Span of the whole declaration.
    pub span: Span,
}

/// `CONST Name = <expr>;`
#[derive(Debug, Clone)]
pub struct ConstDecl {
    /// Declared constant name.
    pub name: String,
    /// The constant's value expression (must be compile-time evaluable).
    pub value: ExprId,
    /// Span of the whole declaration.
    pub span: Span,
}

/// `VAR a, b: T := init;`
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// The declared names.
    pub names: Vec<String>,
    /// The declared type.
    pub ty: TypeExpr,
    /// Optional initializer, applied to every declared name.
    pub init: Option<ExprId>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A type expression (the right-hand side of a TYPE declaration or an
/// inline type in a VAR/field/parameter declaration).
#[derive(Debug, Clone)]
pub enum TypeExpr {
    /// A reference to a named type, e.g. `INTEGER` or a declared name.
    Name(String, Span),
    /// `REF T`, optionally `BRANDED "b" REF T`.
    Ref {
        /// Brand text if the type is branded (`Some("")` for an anonymous brand).
        brand: Option<String>,
        /// The referent type.
        target: Box<TypeExpr>,
        /// Source span.
        span: Span,
    },
    /// `[Super] [BRANDED "b"] OBJECT fields [METHODS ...] [OVERRIDES ...] END`.
    Object {
        /// Supertype name, if any.
        super_name: Option<String>,
        /// Brand text if branded.
        brand: Option<String>,
        /// Field declarations.
        fields: Vec<FieldDecl>,
        /// Method declarations introduced by this type.
        methods: Vec<MethodDecl>,
        /// Overrides of inherited methods.
        overrides: Vec<OverrideDecl>,
        /// Source span.
        span: Span,
    },
    /// `RECORD fields END`.
    Record {
        /// Field declarations.
        fields: Vec<FieldDecl>,
        /// Source span.
        span: Span,
    },
    /// `ARRAY OF T` (open) or `ARRAY [lo..hi] OF T` (fixed).
    Array {
        /// `None` for an open array, `Some((lo, hi))` for a fixed range.
        range: Option<(i64, i64)>,
        /// Element type.
        elem: Box<TypeExpr>,
        /// Source span.
        span: Span,
    },
}

impl TypeExpr {
    /// The source span of this type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Name(_, s) => *s,
            TypeExpr::Ref { span, .. }
            | TypeExpr::Object { span, .. }
            | TypeExpr::Record { span, .. }
            | TypeExpr::Array { span, .. } => *span,
        }
    }
}

/// `a, b: T;` inside an OBJECT or RECORD.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// The declared field names.
    pub names: Vec<String>,
    /// Field type.
    pub ty: TypeExpr,
    /// Source span.
    pub span: Span,
}

/// `m (params): T := Proc;` inside METHODS.
#[derive(Debug, Clone)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Declared parameters (not counting the implicit receiver).
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<TypeExpr>,
    /// Name of the implementing procedure, if a default is given.
    pub impl_proc: Option<String>,
    /// Source span.
    pub span: Span,
}

/// `m := Proc;` inside OVERRIDES.
#[derive(Debug, Clone)]
pub struct OverrideDecl {
    /// Name of the inherited method being overridden.
    pub name: String,
    /// Name of the implementing procedure.
    pub impl_proc: String,
    /// Source span.
    pub span: Span,
}

/// Parameter passing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Pass by value.
    Value,
    /// `VAR` — pass by reference. Taking a `VAR` actual of `p.f` or `p[i]`
    /// is one of the two ways a MiniM3 program can take an address
    /// (the other is `WITH`), which feeds TBAA's `AddressTaken` predicate.
    Var,
}

/// A formal parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Passing mode.
    pub mode: Mode,
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Source span.
    pub span: Span,
}

/// `PROCEDURE Name (params): T = VAR ... BEGIN ... END Name;`
#[derive(Debug, Clone)]
pub struct ProcDecl {
    /// Procedure name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<TypeExpr>,
    /// Local variable declarations.
    pub locals: Vec<VarDecl>,
    /// Body statements.
    pub body: Vec<StmtId>,
    /// Source span of the header.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `lhs := rhs`.
    Assign {
        /// Target designator.
        lhs: ExprId,
        /// Source expression.
        rhs: ExprId,
    },
    /// A call used as a statement.
    Call(ExprId),
    /// `IF c THEN ... ELSIF c THEN ... ELSE ... END`.
    If {
        /// `(condition, body)` pairs for IF and each ELSIF.
        arms: Vec<(ExprId, Vec<StmtId>)>,
        /// ELSE body (possibly empty).
        else_body: Vec<StmtId>,
    },
    /// `WHILE c DO ... END`.
    While {
        /// Loop condition.
        cond: ExprId,
        /// Loop body.
        body: Vec<StmtId>,
    },
    /// `REPEAT ... UNTIL c`.
    Repeat {
        /// Loop body.
        body: Vec<StmtId>,
        /// Exit condition (loop ends when it becomes true).
        cond: ExprId,
    },
    /// `LOOP ... END` (exited with EXIT).
    Loop {
        /// Loop body.
        body: Vec<StmtId>,
    },
    /// `EXIT` out of the innermost loop.
    Exit,
    /// `FOR i := a TO b BY s DO ... END`.
    For {
        /// Loop variable (implicitly INTEGER, scoped to the loop).
        var: String,
        /// Start value.
        from: ExprId,
        /// End value (inclusive).
        to: ExprId,
        /// Step (defaults to 1).
        by: Option<ExprId>,
        /// Loop body.
        body: Vec<StmtId>,
    },
    /// `RETURN [e]`.
    Return(Option<ExprId>),
    /// `WITH n1 = e1, n2 = e2 DO ... END`.
    ///
    /// When `e` is a designator, `n` is an *alias* for that location
    /// (writable, and the location's address counts as taken).
    With {
        /// The bindings in order.
        bindings: Vec<(String, ExprId)>,
        /// Body statements.
        body: Vec<StmtId>,
    },
    /// `EVAL e` — evaluate for effect.
    Eval(ExprId),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `DIV` (truncating integer division)
    Div,
    /// `MOD`
    Mod,
    /// `&` text concatenation
    Concat,
    /// `=`
    Eq,
    /// `#`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (short-circuit)
    And,
    /// `OR` (short-circuit)
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "DIV",
            BinOp::Mod => "MOD",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "#",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Character literal.
    Char(char),
    /// Text literal.
    Text(String),
    /// TRUE or FALSE.
    Bool(bool),
    /// NIL.
    Nil,
    /// A name: variable, constant, parameter, procedure, or type
    /// (types appear as the first argument of NEW / ISTYPE / NARROW).
    Name(String),
    /// `base.field` — the paper's *Qualify*.
    Qualify {
        /// The qualified expression.
        base: ExprId,
        /// The field name.
        field: String,
    },
    /// `base^` — the paper's *Dereference*.
    Deref(ExprId),
    /// `base[index]` — the paper's *Subscript*.
    Index {
        /// The array expression.
        base: ExprId,
        /// The index expression.
        index: ExprId,
    },
    /// `callee(args)` — procedure call, method call (callee is a Qualify),
    /// or builtin (NEW, NUMBER, ...).
    Call {
        /// The callee expression.
        callee: ExprId,
        /// Argument expressions.
        args: Vec<ExprId>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: ExprId,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
}

impl Expr {
    /// Whether this expression form can denote a memory location
    /// (a *designator* in Modula-3 terms). Name designators additionally
    /// require the name to resolve to a variable, which only the checker
    /// knows.
    pub fn is_designator_shape(&self) -> bool {
        matches!(
            self,
            Expr::Name(_) | Expr::Qualify { .. } | Expr::Deref(_) | Expr::Index { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_allocates_sequential_ids() {
        let mut m = Module::default();
        let a = m.alloc_expr(Expr::Int(1), Span::new(0, 1));
        let b = m.alloc_expr(Expr::Int(2), Span::new(2, 3));
        assert_eq!(a, ExprId(0));
        assert_eq!(b, ExprId(1));
        assert!(matches!(m.expr(b), Expr::Int(2)));
        assert_eq!(m.expr_span(a), Span::new(0, 1));
    }

    #[test]
    fn designator_shapes() {
        assert!(Expr::Name("x".into()).is_designator_shape());
        assert!(Expr::Deref(ExprId(0)).is_designator_shape());
        assert!(!Expr::Int(3).is_designator_shape());
        assert!(!Expr::Call {
            callee: ExprId(0),
            args: vec![]
        }
        .is_designator_shape());
    }
}
