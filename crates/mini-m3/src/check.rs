//! Name resolution and type checking for MiniM3.
//!
//! [`check`] consumes a parsed [`Module`] and produces a [`CheckedModule`]:
//! the AST plus a [`TypeTable`], a type for every expression, a resolution
//! for every name and call, and per-procedure symbol tables. Lowering and
//! the alias analyses consume this structure.

use crate::ast::*;
use crate::error::{Diagnostics, Phase};
use crate::span::Span;
use crate::types::{Field, Method, ParamMode, TypeId, TypeKind, TypeTable};
use std::collections::HashMap;

/// Index of a procedure in [`CheckedModule::procs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Index of a local variable within one procedure (parameters first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a module-level (global) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A compile-time constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Character constant.
    Char(char),
    /// Text constant.
    Text(String),
}

impl ConstVal {
    fn type_of(&self, types: &TypeTable) -> TypeId {
        match self {
            ConstVal::Int(_) => types.integer(),
            ConstVal::Bool(_) => types.boolean(),
            ConstVal::Char(_) => types.char(),
            ConstVal::Text(_) => types.text(),
        }
    }
}

/// Builtin procedures and functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `NEW(T)` / `NEW(OpenArrayType, n)`.
    New,
    /// `NUMBER(openArray)` — element count (reads the dope slot).
    Number,
    /// `ORD(c)` — character code.
    Ord,
    /// `CHR(i)` — code to character.
    Chr,
    /// `ABS(i)`.
    Abs,
    /// `MIN(a, b)`.
    Min,
    /// `MAX(a, b)`.
    Max,
    /// `TEXTLEN(t)` — length of a text.
    TextLen,
    /// `TEXTCHAR(t, i)` — i-th character of a text.
    TextChar,
    /// `ITOT(i)` — integer to text.
    IntToText,
    /// `CTOT(c)` — char to text.
    CharToText,
    /// `PRINT(t)` — write a text to the output sink.
    Print,
    /// `PRINTI(i)` — write an integer to the output sink.
    PrintInt,
    /// `ISTYPE(x, T)` — runtime type test.
    IsType,
    /// `NARROW(x, T)` — checked downcast.
    Narrow,
}

impl Builtin {
    /// Looks up a builtin by source name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "NEW" => Builtin::New,
            "NUMBER" => Builtin::Number,
            "ORD" => Builtin::Ord,
            "CHR" => Builtin::Chr,
            "ABS" => Builtin::Abs,
            "MIN" => Builtin::Min,
            "MAX" => Builtin::Max,
            "TEXTLEN" => Builtin::TextLen,
            "TEXTCHAR" => Builtin::TextChar,
            "ITOT" => Builtin::IntToText,
            "CTOT" => Builtin::CharToText,
            "PRINT" => Builtin::Print,
            "PRINTI" => Builtin::PrintInt,
            "ISTYPE" => Builtin::IsType,
            "NARROW" => Builtin::Narrow,
            _ => return None,
        })
    }
}

/// What a [`Expr::Name`] resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum NameRes {
    /// A local variable / parameter / FOR or WITH binding of the enclosing
    /// procedure.
    Local(LocalId),
    /// A module-level variable.
    Global(GlobalId),
    /// A named constant, with its value.
    Const(ConstVal),
    /// A procedure (legal only in callee position).
    Proc(ProcId),
    /// A type name (legal only as an argument of NEW / ISTYPE / NARROW).
    TypeRef(TypeId),
    /// A builtin (legal only in callee position).
    Builtin(Builtin),
}

/// What a [`Expr::Call`] resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum CallRes {
    /// A direct call of a declared procedure.
    Proc(ProcId),
    /// A method invocation `recv.name(args)`.
    Method {
        /// Receiver expression.
        recv: ExprId,
        /// Method name.
        name: String,
        /// Static type of the receiver.
        recv_ty: TypeId,
    },
    /// A builtin invocation.
    Builtin(Builtin),
}

/// How a WITH binding behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithKind {
    /// The bound expression is a designator; the name is a writable alias
    /// for that location (its address counts as taken when it is a heap
    /// location).
    Alias,
    /// The bound expression is a value; the name is a read-only binding.
    Value,
}

/// The kind of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Module-level variable.
    Global,
    /// Procedure parameter with its mode.
    Param(ParamMode),
    /// Declared local.
    Local,
    /// FOR loop index (read-only inside the loop).
    For,
    /// WITH alias binding.
    WithAlias,
    /// WITH value binding (read-only).
    WithValue,
}

/// A variable (global or local).
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// What kind of variable it is.
    pub kind: VarKind,
}

/// A checked procedure.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    /// Procedure name (`"<main>"` for the module body).
    pub name: String,
    /// Number of leading entries of `locals` that are parameters.
    pub n_params: u32,
    /// Return type, if any.
    pub ret: Option<TypeId>,
    /// All locals: parameters first, then declared locals, then FOR/WITH
    /// bindings in order of appearance.
    pub locals: Vec<VarInfo>,
    /// Body statements.
    pub body: Vec<StmtId>,
}

impl ProcInfo {
    /// Iterates over the parameter locals.
    pub fn params(&self) -> impl Iterator<Item = (LocalId, &VarInfo)> {
        self.locals
            .iter()
            .take(self.n_params as usize)
            .enumerate()
            .map(|(i, v)| (LocalId(i as u32), v))
    }
}

/// The result of type checking: the AST plus everything later phases need.
#[derive(Debug, Clone)]
pub struct CheckedModule {
    /// The original AST.
    pub ast: Module,
    /// All types.
    pub types: TypeTable,
    /// Type of each expression, indexed by [`ExprId`].
    pub expr_ty: Vec<TypeId>,
    /// Resolution of each name expression.
    pub name_res: HashMap<ExprId, NameRes>,
    /// Resolution of each call expression.
    pub call_res: HashMap<ExprId, CallRes>,
    /// Alias/value classification of each WITH binding, keyed by
    /// `(statement, binding index)`.
    pub with_kinds: HashMap<(StmtId, usize), WithKind>,
    /// The locals introduced by each FOR (one: the index) and WITH (one per
    /// binding) statement, in binding order. Lowering uses this to line up
    /// frame slots with the checker's `LocalId` allocation.
    pub stmt_locals: HashMap<StmtId, Vec<LocalId>>,
    /// Checked procedures; the module body is the *last* entry.
    pub procs: Vec<ProcInfo>,
    /// Index of the module body in `procs`.
    pub main: ProcId,
    /// Module-level variables.
    pub globals: Vec<VarInfo>,
    /// For each global with an initializer, the initializing expression.
    pub global_inits: Vec<(GlobalId, ExprId)>,
    /// The method implementation procedure for `(object type, method)`;
    /// resolved over the whole hierarchy.
    pub method_impls: HashMap<(TypeId, String), ProcId>,
}

impl CheckedModule {
    /// The type of an expression.
    pub fn ty(&self, e: ExprId) -> TypeId {
        self.expr_ty[e.0 as usize]
    }

    /// The procedure info for an id.
    pub fn proc(&self, p: ProcId) -> &ProcInfo {
        &self.procs[p.0 as usize]
    }

    /// Looks up a checked procedure by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcId(i as u32))
    }
}

/// Type-checks a parsed module.
///
/// # Errors
///
/// Returns every diagnostic found; the module is only usable for lowering
/// when this returns `Ok`.
///
/// # Examples
///
/// ```
/// let src = "MODULE M; VAR x: INTEGER; BEGIN x := 1 END M.";
/// let module = mini_m3::parser::parse(src)?;
/// let checked = mini_m3::check::check(module)?;
/// assert_eq!(checked.globals.len(), 1);
/// # Ok::<(), mini_m3::error::Diagnostics>(())
/// ```
pub fn check(module: Module) -> Result<CheckedModule, Diagnostics> {
    let mut checker = Checker::new(module);
    checker.run();
    if checker.diags.has_errors() {
        Err(checker.diags)
    } else {
        Ok(CheckedModule {
            ast: checker.ast,
            types: checker.types,
            expr_ty: checker.expr_ty,
            name_res: checker.name_res,
            call_res: checker.call_res,
            with_kinds: checker.with_kinds,
            stmt_locals: checker.stmt_locals,
            procs: checker.procs,
            main: checker.main,
            globals: checker.globals,
            global_inits: checker.global_inits,
            method_impls: checker.method_impls,
        })
    }
}

struct Checker {
    ast: Module,
    types: TypeTable,
    diags: Diagnostics,
    expr_ty: Vec<TypeId>,
    name_res: HashMap<ExprId, NameRes>,
    call_res: HashMap<ExprId, CallRes>,
    with_kinds: HashMap<(StmtId, usize), WithKind>,
    stmt_locals: HashMap<StmtId, Vec<LocalId>>,
    consts: HashMap<String, ConstVal>,
    globals: Vec<VarInfo>,
    global_inits: Vec<(GlobalId, ExprId)>,
    global_by_name: HashMap<String, GlobalId>,
    procs: Vec<ProcInfo>,
    proc_by_name: HashMap<String, ProcId>,
    method_impls: HashMap<(TypeId, String), ProcId>,
    main: ProcId,
    // state while checking one body:
    cur_locals: Vec<VarInfo>,
    scopes: Vec<HashMap<String, LocalId>>,
    cur_ret: Option<TypeId>,
    loop_depth: u32,
}

impl Checker {
    fn new(ast: Module) -> Self {
        let n = ast.exprs.len();
        Checker {
            ast,
            types: TypeTable::new(),
            diags: Diagnostics::new(),
            expr_ty: vec![TypeId(0); n],
            name_res: HashMap::new(),
            call_res: HashMap::new(),
            with_kinds: HashMap::new(),
            stmt_locals: HashMap::new(),
            consts: HashMap::new(),
            globals: Vec::new(),
            global_inits: Vec::new(),
            global_by_name: HashMap::new(),
            procs: Vec::new(),
            proc_by_name: HashMap::new(),
            method_impls: HashMap::new(),
            main: ProcId(0),
            cur_locals: Vec::new(),
            scopes: Vec::new(),
            cur_ret: None,
            loop_depth: 0,
        }
    }

    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.error(Phase::Check, span, msg);
    }

    fn run(&mut self) {
        self.declare_types();
        if self.diags.has_errors() {
            return;
        }
        self.declare_consts();
        self.declare_globals();
        self.declare_proc_headers();
        self.resolve_method_impls();
        if self.diags.has_errors() {
            return;
        }
        // Check procedure bodies.
        for i in 0..self.ast.procs.len() {
            self.check_proc_body(ProcId(i as u32));
        }
        // Check the module body as the final "procedure".
        self.check_main_body();
    }

    // ---- type declarations ---------------------------------------------

    fn declare_types(&mut self) {
        // Pass 1: give every named OBJECT declaration its generative id.
        let decls = self.ast.types.clone();
        for d in &decls {
            if let TypeExpr::Object { brand, .. } = &d.expr {
                let id = self.types.declare_object(&d.name, brand.clone());
                if !self.types.bind_name(&d.name, id) {
                    self.error(d.span, format!("type `{}` declared twice", d.name));
                }
            }
        }
        // Pass 2: resolve the remaining named declarations iteratively so
        // they may reference each other and object names in any order.
        let mut pending: Vec<&TypeDecl> = decls
            .iter()
            .filter(|d| !matches!(d.expr, TypeExpr::Object { .. }))
            .collect();
        loop {
            let before = pending.len();
            let mut still = Vec::new();
            for d in pending {
                match self.try_resolve_type(&d.expr) {
                    Some(id) => {
                        if !self.types.bind_name(&d.name, id) {
                            self.error(d.span, format!("type `{}` declared twice", d.name));
                        }
                    }
                    None => still.push(d),
                }
            }
            pending = still;
            if pending.is_empty() {
                break;
            }
            if pending.len() == before {
                for d in &pending {
                    self.error(
                        d.span,
                        format!(
                            "cannot resolve type `{}` (undefined name or a recursive \
                             cycle that does not pass through an OBJECT type)",
                            d.name
                        ),
                    );
                }
                return;
            }
        }
        // Pass 3: complete object bodies in supertype order.
        let mut done: HashMap<String, bool> = HashMap::new();
        let object_decls: Vec<TypeDecl> = decls
            .iter()
            .filter(|d| matches!(d.expr, TypeExpr::Object { .. }))
            .cloned()
            .collect();
        let mut remaining = object_decls;
        loop {
            let before = remaining.len();
            let mut still = Vec::new();
            for d in remaining {
                let TypeExpr::Object { super_name, .. } = &d.expr else {
                    unreachable!()
                };
                let ready = match super_name {
                    None => true,
                    Some(s) => {
                        // Ready if the supertype is a non-object builtin (error
                        // reported below) or a completed object.
                        match self.types.by_name(s) {
                            Some(sid) => match self.types.kind(sid) {
                                TypeKind::Object { .. } => *done.get(s.as_str()).unwrap_or(&false),
                                _ => true,
                            },
                            None => true, // undefined: report in complete step
                        }
                    }
                };
                if ready {
                    self.complete_object_decl(&d);
                    done.insert(d.name.clone(), true);
                } else {
                    still.push(d);
                }
            }
            remaining = still;
            if remaining.is_empty() {
                break;
            }
            if remaining.len() == before {
                for d in &remaining {
                    self.error(d.span, format!("cyclic supertype chain at `{}`", d.name));
                }
                return;
            }
        }
    }

    fn complete_object_decl(&mut self, d: &TypeDecl) {
        let TypeExpr::Object {
            super_name,
            fields,
            methods,
            overrides,
            ..
        } = &d.expr
        else {
            unreachable!()
        };
        let id = self.types.by_name(&d.name).expect("declared in pass 1");
        let super_ty = match super_name {
            None => None,
            Some(s) => match self.types.by_name(s) {
                Some(sid) if matches!(self.types.kind(sid), TypeKind::Object { .. }) => Some(sid),
                Some(_) => {
                    self.error(d.span, format!("supertype `{s}` is not an object type"));
                    None
                }
                None => {
                    self.error(d.span, format!("undefined supertype `{s}`"));
                    None
                }
            },
        };
        let mut offset = super_ty.map(|s| self.types.object_size(s)).unwrap_or(0);
        let mut flds = Vec::new();
        for fd in fields {
            let fty = self.resolve_type(&fd.ty);
            for name in &fd.names {
                if super_ty.is_some_and(|s| self.types.field(s, name).is_some())
                    || flds.iter().any(|f: &Field| &f.name == name)
                {
                    self.error(fd.span, format!("duplicate field `{name}`"));
                }
                flds.push(Field {
                    name: name.clone(),
                    ty: fty,
                    offset,
                });
                offset += self.types.size_of(fty);
            }
        }
        let mut meths = Vec::new();
        for md in methods {
            let params = md
                .params
                .iter()
                .map(|p| {
                    let mode = match p.mode {
                        Mode::Value => ParamMode::Value,
                        Mode::Var => ParamMode::Var,
                    };
                    (mode, self.resolve_type(&p.ty))
                })
                .collect();
            let ret = md.ret.as_ref().map(|t| self.resolve_type(t));
            meths.push(Method {
                name: md.name.clone(),
                params,
                ret,
                impl_proc: md.impl_proc.clone(),
            });
        }
        // Overrides become method entries re-binding the inherited signature.
        for od in overrides {
            let Some(sup) = super_ty else {
                self.error(od.span, "OVERRIDES on a type with no supertype");
                continue;
            };
            let Some((intro, _)) = self.types.resolve_method(sup, &od.name) else {
                self.error(od.span, format!("override of unknown method `{}`", od.name));
                continue;
            };
            if meths.iter().any(|m: &Method| m.name == od.name) {
                self.error(
                    od.span,
                    format!("method `{}` both declared and overridden", od.name),
                );
                continue;
            }
            meths.push(Method {
                name: od.name.clone(),
                params: intro.params.clone(),
                ret: intro.ret,
                impl_proc: Some(od.impl_proc.clone()),
            });
        }
        self.types.complete_object(id, super_ty, flds, meths);
    }

    /// Resolves a type expression, reporting diagnostics on failure and
    /// returning INTEGER as a recovery type.
    fn resolve_type(&mut self, te: &TypeExpr) -> TypeId {
        match self.try_resolve_type(te) {
            Some(id) => id,
            None => {
                self.error(te.span(), "undefined type name");
                self.types.integer()
            }
        }
    }

    /// Resolves a type expression, returning `None` if it mentions a name
    /// that is not (yet) bound.
    fn try_resolve_type(&mut self, te: &TypeExpr) -> Option<TypeId> {
        match te {
            TypeExpr::Name(n, _) => self.types.by_name(n),
            TypeExpr::Ref { brand, target, .. } => {
                let t = self.try_resolve_type(target)?;
                Some(self.types.mk_ref(brand.clone(), t))
            }
            TypeExpr::Array { range, elem, .. } => {
                let e = self.try_resolve_type(elem)?;
                Some(match range {
                    None => self.types.mk_open_array(e),
                    Some((lo, hi)) => {
                        if hi < lo {
                            self.error(te.span(), "array range is empty");
                        }
                        self.types.mk_fixed_array(*lo, *hi, e)
                    }
                })
            }
            TypeExpr::Record { fields, .. } => {
                let mut out = Vec::new();
                let mut offset = 0;
                for fd in fields {
                    let fty = self.try_resolve_type(&fd.ty)?;
                    for name in &fd.names {
                        if out.iter().any(|f: &Field| &f.name == name) {
                            self.error(fd.span, format!("duplicate field `{name}`"));
                        }
                        out.push(Field {
                            name: name.clone(),
                            ty: fty,
                            offset,
                        });
                        offset += self.types.size_of(fty);
                    }
                }
                Some(self.types.mk_record(out))
            }
            TypeExpr::Object { span, .. } => {
                // Anonymous object types (not at the top of a TYPE decl).
                self.error(
                    *span,
                    "OBJECT types must be declared at the top level of a TYPE declaration",
                );
                Some(self.types.integer())
            }
        }
    }

    // ---- other declarations ---------------------------------------------

    fn declare_consts(&mut self) {
        for c in self.ast.consts.clone() {
            match self.const_eval(c.value) {
                Some(v) => {
                    if self.consts.insert(c.name.clone(), v).is_some() {
                        self.error(c.span, format!("constant `{}` declared twice", c.name));
                    }
                }
                None => self.error(
                    c.span,
                    "constant initializer is not a compile-time constant",
                ),
            }
        }
    }

    fn const_eval(&mut self, e: ExprId) -> Option<ConstVal> {
        match self.ast.expr(e).clone() {
            Expr::Int(v) => Some(ConstVal::Int(v)),
            Expr::Bool(b) => Some(ConstVal::Bool(b)),
            Expr::Char(c) => Some(ConstVal::Char(c)),
            Expr::Text(t) => Some(ConstVal::Text(t)),
            Expr::Name(n) => self.consts.get(&n).cloned(),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => match self.const_eval(expr)? {
                ConstVal::Int(v) => Some(ConstVal::Int(-v)),
                _ => None,
            },
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => match self.const_eval(expr)? {
                ConstVal::Bool(b) => Some(ConstVal::Bool(!b)),
                _ => None,
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = self.const_eval(lhs)?;
                let r = self.const_eval(rhs)?;
                match (l, r) {
                    (ConstVal::Int(a), ConstVal::Int(b)) => Some(match op {
                        BinOp::Add => ConstVal::Int(a + b),
                        BinOp::Sub => ConstVal::Int(a - b),
                        BinOp::Mul => ConstVal::Int(a * b),
                        BinOp::Div if b != 0 => ConstVal::Int(a.div_euclid(b)),
                        BinOp::Mod if b != 0 => ConstVal::Int(a.rem_euclid(b)),
                        BinOp::Eq => ConstVal::Bool(a == b),
                        BinOp::Ne => ConstVal::Bool(a != b),
                        BinOp::Lt => ConstVal::Bool(a < b),
                        BinOp::Le => ConstVal::Bool(a <= b),
                        BinOp::Gt => ConstVal::Bool(a > b),
                        BinOp::Ge => ConstVal::Bool(a >= b),
                        _ => return None,
                    }),
                    (ConstVal::Text(a), ConstVal::Text(b)) if op == BinOp::Concat => {
                        Some(ConstVal::Text(a + &b))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn declare_globals(&mut self) {
        for g in self.ast.globals.clone() {
            let ty = self.resolve_type(&g.ty);
            for name in &g.names {
                if self.global_by_name.contains_key(name) {
                    self.error(g.span, format!("global `{name}` declared twice"));
                    continue;
                }
                let id = GlobalId(self.globals.len() as u32);
                self.globals.push(VarInfo {
                    name: name.clone(),
                    ty,
                    kind: VarKind::Global,
                });
                self.global_by_name.insert(name.clone(), id);
                if let Some(init) = g.init {
                    self.global_inits.push((id, init));
                }
            }
        }
    }

    fn declare_proc_headers(&mut self) {
        for (i, p) in self.ast.procs.clone().iter().enumerate() {
            if self.proc_by_name.contains_key(&p.name) {
                self.error(p.span, format!("procedure `{}` declared twice", p.name));
            }
            let mut locals = Vec::new();
            for param in &p.params {
                let ty = self.resolve_type(&param.ty);
                let mode = match param.mode {
                    Mode::Value => ParamMode::Value,
                    Mode::Var => ParamMode::Var,
                };
                if !self.types.is_scalar(ty) {
                    self.error(
                        param.span,
                        "parameters must have scalar or reference type \
                         (pass aggregates by reference type)",
                    );
                }
                locals.push(VarInfo {
                    name: param.name.clone(),
                    ty,
                    kind: VarKind::Param(mode),
                });
            }
            let ret = p.ret.as_ref().map(|t| self.resolve_type(t));
            if let Some(rt) = ret {
                if !self.types.is_scalar(rt) {
                    self.error(p.span, "return type must be scalar or a reference type");
                }
            }
            self.procs.push(ProcInfo {
                name: p.name.clone(),
                n_params: p.params.len() as u32,
                ret,
                locals,
                body: p.body.clone(),
            });
            self.proc_by_name.insert(p.name.clone(), ProcId(i as u32));
        }
        // The module body is the last "procedure".
        self.main = ProcId(self.procs.len() as u32);
        self.procs.push(ProcInfo {
            name: "<main>".to_string(),
            n_params: 0,
            ret: None,
            locals: Vec::new(),
            body: self.ast.body.clone(),
        });
    }

    /// Resolves every `(type, method) -> procedure` binding and checks
    /// signature compatibility of the implementing procedures.
    fn resolve_method_impls(&mut self) {
        let type_ids: Vec<TypeId> = self.types.iter().collect();
        for tid in type_ids {
            let TypeKind::Object { .. } = self.types.kind(tid) else {
                continue;
            };
            // Collect the full method set visible on tid.
            let mut names: Vec<String> = Vec::new();
            for t in self.types.ancestry(tid) {
                if let TypeKind::Object { methods, .. } = self.types.kind(t) {
                    for m in methods {
                        if !names.contains(&m.name) {
                            names.push(m.name.clone());
                        }
                    }
                }
            }
            for name in names {
                let Some((m, owner)) = self.types.resolve_method(tid, &name) else {
                    continue;
                };
                let Some(proc_name) = m.impl_proc.clone() else {
                    continue; // abstract at this type
                };
                let m_params = m.params.clone();
                let m_ret = m.ret;
                let Some(&pid) = self.proc_by_name.get(&proc_name) else {
                    self.error(
                        Span::default(),
                        format!(
                            "method `{}.{name}` bound to undefined procedure `{proc_name}`",
                            self.types.display(owner)
                        ),
                    );
                    continue;
                };
                // Check: first param is a supertype of tid; rest match.
                let pinfo = &self.procs[pid.0 as usize];
                let ok = pinfo.n_params as usize == m_params.len() + 1
                    && pinfo
                        .locals
                        .first()
                        .is_some_and(|recv| self.types.is_subtype(tid, recv.ty))
                    && pinfo
                        .locals
                        .iter()
                        .skip(1)
                        .take(m_params.len())
                        .zip(m_params.iter())
                        .all(|(l, (mode, ty))| l.ty == *ty && l.kind == VarKind::Param(*mode))
                    && pinfo.ret == m_ret;
                if !ok {
                    self.error(
                        Span::default(),
                        format!(
                            "procedure `{proc_name}` does not match the signature of \
                             method `{}.{name}`",
                            self.types.display(owner)
                        ),
                    );
                }
                self.method_impls.insert((tid, name), pid);
            }
        }
    }

    // ---- bodies -----------------------------------------------------------

    fn check_proc_body(&mut self, pid: ProcId) {
        let pdecl = self.ast.procs[pid.0 as usize].clone();
        let pinfo = self.procs[pid.0 as usize].clone();
        self.cur_locals = pinfo.locals.clone();
        self.scopes = vec![HashMap::new()];
        for (i, l) in self.cur_locals.iter().enumerate() {
            self.scopes[0].insert(l.name.clone(), LocalId(i as u32));
        }
        // Declared locals.
        for vd in &pdecl.locals {
            let ty = self.resolve_type(&vd.ty);
            let mut init_ids = Vec::new();
            for name in &vd.names {
                if self.scopes[0].contains_key(name) {
                    self.error(vd.span, format!("local `{name}` declared twice"));
                }
                let id = LocalId(self.cur_locals.len() as u32);
                self.cur_locals.push(VarInfo {
                    name: name.clone(),
                    ty,
                    kind: VarKind::Local,
                });
                self.scopes[0].insert(name.clone(), id);
                init_ids.push(id);
            }
            if let Some(init) = vd.init {
                let ity = self.check_expr(init);
                if !self.assignable(ty, ity) {
                    let span = self.ast.expr_span(init);
                    self.error(span, "initializer type does not match declaration");
                }
            }
        }
        self.cur_ret = pinfo.ret;
        self.loop_depth = 0;
        for s in pinfo.body.clone() {
            self.check_stmt(s);
        }
        self.procs[pid.0 as usize].locals = std::mem::take(&mut self.cur_locals);
    }

    fn check_main_body(&mut self) {
        let main = self.main;
        self.cur_locals = Vec::new();
        self.scopes = vec![HashMap::new()];
        self.cur_ret = None;
        self.loop_depth = 0;
        // Global initializers are checked in the module scope.
        for (gid, init) in self.global_inits.clone() {
            let gty = self.globals[gid.0 as usize].ty;
            let ity = self.check_expr(init);
            if !self.assignable(gty, ity) {
                let span = self.ast.expr_span(init);
                self.error(span, "initializer type does not match declaration");
            }
        }
        for s in self.ast.body.clone() {
            self.check_stmt(s);
        }
        self.procs[main.0 as usize].locals = std::mem::take(&mut self.cur_locals);
    }

    fn lookup(&self, name: &str) -> Option<NameRes> {
        for scope in self.scopes.iter().rev() {
            if let Some(&l) = scope.get(name) {
                return Some(NameRes::Local(l));
            }
        }
        if let Some(&g) = self.global_by_name.get(name) {
            return Some(NameRes::Global(g));
        }
        if let Some(v) = self.consts.get(name) {
            return Some(NameRes::Const(v.clone()));
        }
        if let Some(&p) = self.proc_by_name.get(name) {
            return Some(NameRes::Proc(p));
        }
        if let Some(t) = self.types.by_name(name) {
            return Some(NameRes::TypeRef(t));
        }
        Builtin::by_name(name).map(NameRes::Builtin)
    }

    fn define_local(&mut self, name: &str, ty: TypeId, kind: VarKind) -> LocalId {
        let id = LocalId(self.cur_locals.len() as u32);
        self.cur_locals.push(VarInfo {
            name: name.to_string(),
            ty,
            kind,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    fn assignable(&self, dst: TypeId, src: TypeId) -> bool {
        dst == src || self.types.is_subtype(src, dst)
    }

    fn set_ty(&mut self, e: ExprId, ty: TypeId) -> TypeId {
        self.expr_ty[e.0 as usize] = ty;
        ty
    }

    // ---- statements ---------------------------------------------------

    fn check_stmt(&mut self, s: StmtId) {
        let stmt = self.ast.stmt(s).clone();
        let span = self.ast.stmt_span(s);
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                let lty = self.check_expr(lhs);
                let rty = self.check_expr(rhs);
                self.check_designator(lhs, true);
                if !self.assignable(lty, rty) {
                    self.error(
                        span,
                        format!(
                            "cannot assign {} to {}",
                            self.types.display(rty),
                            self.types.display(lty)
                        ),
                    );
                }
                if matches!(self.types.kind(lty), TypeKind::Array { range: Some(_), .. }) {
                    self.error(span, "fixed arrays cannot be assigned as a whole");
                }
            }
            Stmt::Call(e) => {
                let Expr::Call { .. } = self.ast.expr(e) else {
                    self.error(span, "statement is not a call");
                    return;
                };
                let ty = self.check_expr(e);
                let returns_value = match self.call_res.get(&e) {
                    Some(CallRes::Proc(p)) => self.procs[p.0 as usize].ret.is_some(),
                    Some(CallRes::Method { recv_ty, name, .. }) => self
                        .types
                        .resolve_method(*recv_ty, name)
                        .is_some_and(|(m, _)| m.ret.is_some()),
                    Some(CallRes::Builtin(b)) => !matches!(b, Builtin::Print | Builtin::PrintInt),
                    None => false,
                };
                let _ = ty;
                if returns_value {
                    self.error(span, "result of call is discarded; use EVAL");
                }
            }
            Stmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    self.check_cond(cond);
                    self.check_block(&body);
                }
                self.check_block(&else_body);
            }
            Stmt::While { cond, body } => {
                self.check_cond(cond);
                self.loop_depth += 1;
                self.check_block(&body);
                self.loop_depth -= 1;
            }
            Stmt::Repeat { body, cond } => {
                self.loop_depth += 1;
                self.check_block(&body);
                self.loop_depth -= 1;
                self.check_cond(cond);
            }
            Stmt::Loop { body } => {
                self.loop_depth += 1;
                self.check_block(&body);
                self.loop_depth -= 1;
            }
            Stmt::Exit => {
                if self.loop_depth == 0 {
                    self.error(span, "EXIT outside of a loop");
                }
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
            } => {
                let int = self.types.integer();
                for e in [Some(from), Some(to), by].into_iter().flatten() {
                    let t = self.check_expr(e);
                    if t != int {
                        let espan = self.ast.expr_span(e);
                        self.error(espan, "FOR bounds must be INTEGER");
                    }
                }
                self.scopes.push(HashMap::new());
                let lid = self.define_local(&var, int, VarKind::For);
                self.stmt_locals.insert(s, vec![lid]);
                self.loop_depth += 1;
                self.check_block(&body);
                self.loop_depth -= 1;
                self.scopes.pop();
            }
            Stmt::Return(value) => match (self.cur_ret, value) {
                (None, None) => {}
                (None, Some(v)) => {
                    let vspan = self.ast.expr_span(v);
                    self.check_expr(v);
                    self.error(vspan, "RETURN with a value in a proper procedure");
                }
                (Some(rt), Some(v)) => {
                    let vt = self.check_expr(v);
                    if !self.assignable(rt, vt) {
                        let vspan = self.ast.expr_span(v);
                        self.error(vspan, "RETURN value has the wrong type");
                    }
                }
                (Some(_), None) => {
                    self.error(span, "RETURN without a value in a function procedure");
                }
            },
            Stmt::With { bindings, body } => {
                self.scopes.push(HashMap::new());
                let mut lids = Vec::new();
                for (i, (name, e)) in bindings.iter().enumerate() {
                    let ty = self.check_expr(*e);
                    let is_desig = self.is_designator(*e);
                    let kind = if is_desig {
                        WithKind::Alias
                    } else {
                        WithKind::Value
                    };
                    if kind == WithKind::Value && !self.types.is_scalar(ty) {
                        let espan = self.ast.expr_span(*e);
                        self.error(espan, "WITH of a non-designator aggregate value");
                    }
                    self.with_kinds.insert((s, i), kind);
                    let vk = if kind == WithKind::Alias {
                        VarKind::WithAlias
                    } else {
                        VarKind::WithValue
                    };
                    lids.push(self.define_local(name, ty, vk));
                }
                self.stmt_locals.insert(s, lids);
                self.check_block(&body);
                self.scopes.pop();
            }
            Stmt::Eval(e) => {
                self.check_expr(e);
            }
        }
    }

    fn check_block(&mut self, body: &[StmtId]) {
        self.scopes.push(HashMap::new());
        for &s in body {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    fn check_cond(&mut self, e: ExprId) {
        let t = self.check_expr(e);
        if t != self.types.boolean() {
            let span = self.ast.expr_span(e);
            self.error(span, "condition must be BOOLEAN");
        }
    }

    /// Whether `e` denotes a memory location.
    fn is_designator(&self, e: ExprId) -> bool {
        match self.ast.expr(e) {
            Expr::Name(_) => matches!(
                self.name_res.get(&e),
                Some(NameRes::Local(_) | NameRes::Global(_))
            ),
            Expr::Qualify { base, .. } => {
                // A field selection is a designator if its base is one, or the
                // base is a heap object (always a location).
                self.is_designator(*base) || self.types.is_pointer(self.expr_ty[base.0 as usize])
            }
            Expr::Deref(_) => true,
            Expr::Index { base, .. } => {
                self.is_designator(*base) || self.types.is_pointer(self.expr_ty[base.0 as usize])
            }
            _ => false,
        }
    }

    /// Checks that `e` is a (writable, if `for_write`) designator.
    fn check_designator(&mut self, e: ExprId, for_write: bool) {
        let span = self.ast.expr_span(e);
        if !self.is_designator(e) {
            self.error(span, "not a designator (does not denote a location)");
            return;
        }
        if for_write {
            if let Expr::Name(_) = self.ast.expr(e) {
                if let Some(NameRes::Local(l)) = self.name_res.get(&e) {
                    match self.cur_locals[l.0 as usize].kind {
                        VarKind::For => self.error(span, "FOR index is read-only"),
                        VarKind::WithValue => self.error(span, "WITH value binding is read-only"),
                        _ => {}
                    }
                }
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    fn check_expr(&mut self, e: ExprId) -> TypeId {
        let expr = self.ast.expr(e).clone();
        let span = self.ast.expr_span(e);
        match expr {
            Expr::Int(_) => self.set_ty(e, self.types.integer()),
            Expr::Char(_) => self.set_ty(e, self.types.char()),
            Expr::Text(_) => self.set_ty(e, self.types.text()),
            Expr::Bool(_) => self.set_ty(e, self.types.boolean()),
            Expr::Nil => self.set_ty(e, self.types.null()),
            Expr::Name(name) => match self.lookup(&name) {
                Some(res) => {
                    let ty = match &res {
                        NameRes::Local(l) => self.cur_locals[l.0 as usize].ty,
                        NameRes::Global(g) => self.globals[g.0 as usize].ty,
                        NameRes::Const(v) => v.type_of(&self.types),
                        NameRes::TypeRef(t) => {
                            let t = *t;
                            self.error(
                                span,
                                "type name used as a value (only legal in NEW/ISTYPE/NARROW)",
                            );
                            t
                        }
                        NameRes::Proc(_) | NameRes::Builtin(_) => {
                            self.error(span, "procedure used as a value");
                            self.types.integer()
                        }
                    };
                    self.name_res.insert(e, res);
                    self.set_ty(e, ty)
                }
                None => {
                    self.error(span, format!("undefined name `{name}`"));
                    self.set_ty(e, self.types.integer())
                }
            },
            Expr::Qualify { base, field } => {
                let bty = self.check_expr(base);
                match self.types.kind(bty) {
                    TypeKind::Object { .. } | TypeKind::Record { .. } => {
                        match self.types.field(bty, &field) {
                            Some(f) => {
                                let fty = f.ty;
                                self.set_ty(e, fty)
                            }
                            None => {
                                // Maybe a method reference used as a call;
                                // `check_call` handles that case before
                                // calling us, so this is an error here.
                                self.error(
                                    span,
                                    format!(
                                        "no field `{field}` on type {}",
                                        self.types.display(bty)
                                    ),
                                );
                                self.set_ty(e, self.types.integer())
                            }
                        }
                    }
                    TypeKind::Ref { .. } => {
                        self.error(span, "use ^ to dereference before selecting a field");
                        self.set_ty(e, self.types.integer())
                    }
                    _ => {
                        self.error(
                            span,
                            format!("cannot select a field of {}", self.types.display(bty)),
                        );
                        self.set_ty(e, self.types.integer())
                    }
                }
            }
            Expr::Deref(base) => {
                let bty = self.check_expr(base);
                match self.types.kind(bty) {
                    TypeKind::Ref { target, .. } => {
                        let t = *target;
                        self.set_ty(e, t)
                    }
                    _ => {
                        self.error(
                            span,
                            format!("cannot dereference {}", self.types.display(bty)),
                        );
                        self.set_ty(e, self.types.integer())
                    }
                }
            }
            Expr::Index { base, index } => {
                let bty = self.check_expr(base);
                let ity = self.check_expr(index);
                if ity != self.types.integer() {
                    let ispan = self.ast.expr_span(index);
                    self.error(ispan, "array index must be INTEGER");
                }
                match self.types.kind(bty) {
                    TypeKind::Array { elem, .. } => {
                        let t = *elem;
                        self.set_ty(e, t)
                    }
                    _ => {
                        self.error(span, format!("cannot index {}", self.types.display(bty)));
                        self.set_ty(e, self.types.integer())
                    }
                }
            }
            Expr::Call { callee, args } => self.check_call(e, callee, &args),
            Expr::Unary { op, expr } => {
                let t = self.check_expr(expr);
                let want = match op {
                    UnOp::Neg => self.types.integer(),
                    UnOp::Not => self.types.boolean(),
                };
                if t != want {
                    self.error(span, "operand has the wrong type");
                }
                self.set_ty(e, want)
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                let int = self.types.integer();
                let boolean = self.types.boolean();
                let text = self.types.text();
                let ty = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if lt != int || rt != int {
                            self.error(span, "arithmetic requires INTEGER operands");
                        }
                        int
                    }
                    BinOp::Concat => {
                        if lt != text || rt != text {
                            self.error(span, "& requires TEXT operands");
                        }
                        text
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != boolean || rt != boolean {
                            self.error(span, "AND/OR require BOOLEAN operands");
                        }
                        boolean
                    }
                    BinOp::Eq | BinOp::Ne => {
                        let ok = lt == rt
                            || self.types.is_subtype(lt, rt)
                            || self.types.is_subtype(rt, lt);
                        if !ok {
                            self.error(span, "comparison of incompatible types");
                        }
                        boolean
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let ok = (lt == int && rt == int)
                            || (lt == self.types.char() && rt == self.types.char());
                        if !ok {
                            self.error(span, "ordering comparison requires INTEGER or CHAR");
                        }
                        boolean
                    }
                };
                self.set_ty(e, ty)
            }
        }
    }

    fn check_call(&mut self, e: ExprId, callee: ExprId, args: &[ExprId]) -> TypeId {
        let span = self.ast.expr_span(e);
        match self.ast.expr(callee).clone() {
            Expr::Name(name) => match self.lookup(&name) {
                Some(NameRes::Proc(pid)) => {
                    self.name_res.insert(callee, NameRes::Proc(pid));
                    self.call_res.insert(e, CallRes::Proc(pid));
                    let pinfo = self.procs[pid.0 as usize].clone();
                    self.check_args(
                        span,
                        args,
                        &pinfo
                            .locals
                            .iter()
                            .take(pinfo.n_params as usize)
                            .map(|l| {
                                let mode = match l.kind {
                                    VarKind::Param(m) => m,
                                    _ => ParamMode::Value,
                                };
                                (mode, l.ty)
                            })
                            .collect::<Vec<_>>(),
                    );
                    let ret = pinfo.ret.unwrap_or(self.types.integer());
                    // Expression type for statement calls is unused.
                    self.set_ty(e, ret)
                }
                Some(NameRes::Builtin(b)) => {
                    self.name_res.insert(callee, NameRes::Builtin(b));
                    self.call_res.insert(e, CallRes::Builtin(b));
                    self.check_builtin_call(e, b, args)
                }
                Some(other) => {
                    let _ = other;
                    self.error(span, format!("`{name}` is not callable"));
                    self.set_ty(e, self.types.integer())
                }
                None => {
                    self.error(span, format!("undefined name `{name}`"));
                    self.set_ty(e, self.types.integer())
                }
            },
            Expr::Qualify { base, field } => {
                // Method call: recv.field(args).
                let recv_ty = self.check_expr(base);
                if !matches!(self.types.kind(recv_ty), TypeKind::Object { .. }) {
                    self.error(span, "method call on a non-object value");
                    return self.set_ty(e, self.types.integer());
                }
                let Some((m, _)) = self.types.resolve_method(recv_ty, &field) else {
                    self.error(
                        span,
                        format!(
                            "no method `{field}` on type {}",
                            self.types.display(recv_ty)
                        ),
                    );
                    return self.set_ty(e, self.types.integer());
                };
                let params = m.params.clone();
                let ret = m.ret;
                self.call_res.insert(
                    e,
                    CallRes::Method {
                        recv: base,
                        name: field.clone(),
                        recv_ty,
                    },
                );
                self.check_args(span, args, &params);
                // Type the callee node as the receiver type (it is not a
                // value by itself).
                self.set_ty(callee, recv_ty);
                self.set_ty(e, ret.unwrap_or(self.types.integer()))
            }
            _ => {
                self.error(span, "expression is not callable");
                self.set_ty(e, self.types.integer())
            }
        }
    }

    fn check_args(&mut self, span: Span, args: &[ExprId], params: &[(ParamMode, TypeId)]) {
        if args.len() != params.len() {
            self.error(
                span,
                format!("expected {} arguments, found {}", params.len(), args.len()),
            );
        }
        for (a, (mode, ty)) in args.iter().zip(params.iter()) {
            let at = self.check_expr(*a);
            match mode {
                ParamMode::Value => {
                    if !self.assignable(*ty, at) {
                        let aspan = self.ast.expr_span(*a);
                        self.error(
                            aspan,
                            format!(
                                "argument type {} is not assignable to parameter type {}",
                                self.types.display(at),
                                self.types.display(*ty)
                            ),
                        );
                    }
                }
                ParamMode::Var => {
                    // Modula-3 requires the VAR actual type to be *identical*
                    // to the formal type (the open-world AddressTaken rule
                    // of §4 relies on this).
                    if at != *ty {
                        let aspan = self.ast.expr_span(*a);
                        self.error(
                            aspan,
                            "VAR argument type must be identical to the parameter type",
                        );
                    }
                    self.check_designator(*a, true);
                }
            }
        }
    }

    fn check_builtin_call(&mut self, e: ExprId, b: Builtin, args: &[ExprId]) -> TypeId {
        let span = self.ast.expr_span(e);
        let int = self.types.integer();
        let ch = self.types.char();
        let text = self.types.text();
        let boolean = self.types.boolean();
        match b {
            Builtin::New => {
                if args.is_empty() {
                    self.error(span, "NEW requires a type argument");
                    return self.set_ty(e, int);
                }
                let Some(ty) = self.type_arg(args[0]) else {
                    return self.set_ty(e, int);
                };
                match self.types.kind(ty).clone() {
                    TypeKind::Object { .. } | TypeKind::Ref { .. } => {
                        if args.len() != 1 {
                            self.error(span, "NEW of an object or REF takes no extra arguments");
                        }
                        self.set_ty(e, ty)
                    }
                    TypeKind::Array { range: None, .. } => {
                        if args.len() != 2 {
                            self.error(span, "NEW of an open array takes a length argument");
                            return self.set_ty(e, ty);
                        }
                        let lt = self.check_expr(args[1]);
                        if lt != int {
                            self.error(span, "array length must be INTEGER");
                        }
                        self.set_ty(e, ty)
                    }
                    _ => {
                        self.error(span, "NEW requires an object, REF, or open array type");
                        self.set_ty(e, ty)
                    }
                }
            }
            Builtin::Number => {
                self.expect_args(span, args, 1);
                let ty = args.first().map(|a| self.check_expr(*a));
                if let Some(t) = ty {
                    if !matches!(self.types.kind(t), TypeKind::Array { .. }) {
                        self.error(span, "NUMBER requires an array");
                    }
                }
                self.set_ty(e, int)
            }
            Builtin::Ord => {
                self.expect_typed_args(span, args, &[ch]);
                self.set_ty(e, int)
            }
            Builtin::Chr => {
                self.expect_typed_args(span, args, &[int]);
                self.set_ty(e, ch)
            }
            Builtin::Abs => {
                self.expect_typed_args(span, args, &[int]);
                self.set_ty(e, int)
            }
            Builtin::Min | Builtin::Max => {
                self.expect_typed_args(span, args, &[int, int]);
                self.set_ty(e, int)
            }
            Builtin::TextLen => {
                self.expect_typed_args(span, args, &[text]);
                self.set_ty(e, int)
            }
            Builtin::TextChar => {
                self.expect_typed_args(span, args, &[text, int]);
                self.set_ty(e, ch)
            }
            Builtin::IntToText => {
                self.expect_typed_args(span, args, &[int]);
                self.set_ty(e, text)
            }
            Builtin::CharToText => {
                self.expect_typed_args(span, args, &[ch]);
                self.set_ty(e, text)
            }
            Builtin::Print => {
                self.expect_typed_args(span, args, &[text]);
                self.set_ty(e, int)
            }
            Builtin::PrintInt => {
                self.expect_typed_args(span, args, &[int]);
                self.set_ty(e, int)
            }
            Builtin::IsType | Builtin::Narrow => {
                if args.len() != 2 {
                    self.error(span, "expected a value and a type argument");
                    return self.set_ty(e, int);
                }
                let vt = self.check_expr(args[0]);
                let Some(ty) = self.type_arg(args[1]) else {
                    return self.set_ty(e, int);
                };
                let related = self.types.is_subtype(ty, vt) || self.types.is_subtype(vt, ty);
                if !related || !self.types.is_pointer(ty) {
                    self.error(span, "type test between unrelated or non-object types");
                }
                match b {
                    Builtin::IsType => self.set_ty(e, boolean),
                    _ => self.set_ty(e, ty),
                }
            }
        }
    }

    /// Resolves an argument that must be a type name.
    fn type_arg(&mut self, a: ExprId) -> Option<TypeId> {
        let span = self.ast.expr_span(a);
        let Expr::Name(n) = self.ast.expr(a).clone() else {
            self.error(span, "expected a type name");
            return None;
        };
        match self.types.by_name(&n) {
            Some(t) => {
                self.name_res.insert(a, NameRes::TypeRef(t));
                self.expr_ty[a.0 as usize] = t;
                Some(t)
            }
            None => {
                self.error(span, format!("undefined type `{n}`"));
                None
            }
        }
    }

    fn expect_args(&mut self, span: Span, args: &[ExprId], n: usize) {
        if args.len() != n {
            self.error(
                span,
                format!("expected {n} arguments, found {}", args.len()),
            );
        }
    }

    fn expect_typed_args(&mut self, span: Span, args: &[ExprId], want: &[TypeId]) {
        self.expect_args(span, args, want.len());
        for (a, w) in args.iter().zip(want.iter()) {
            let t = self.check_expr(*a);
            if t != *w {
                let aspan = self.ast.expr_span(*a);
                self.error(
                    aspan,
                    format!(
                        "expected {}, found {}",
                        self.types.display(*w),
                        self.types.display(t)
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_ok(src: &str) -> CheckedModule {
        let m = parse(src).expect("parse");
        match check(m) {
            Ok(c) => c,
            Err(d) => panic!("check failed: {d}"),
        }
    }

    fn check_err(src: &str) -> Diagnostics {
        let m = parse(src).expect("parse");
        check(m).expect_err("expected a check error")
    }

    #[test]
    fn figure_1_hierarchy_checks() {
        let c = check_ok(
            "MODULE Fig1;
             TYPE
               T = OBJECT f, g: T; END;
               S1 = T OBJECT END;
               S2 = T OBJECT END;
               S3 = T OBJECT END;
             VAR t: T; s: S1; u: S2;
             BEGIN
               t := NEW(T);
               s := NEW(S1);
               t := s;
             END Fig1.",
        );
        let t = c.types.by_name("T").unwrap();
        let s1 = c.types.by_name("S1").unwrap();
        assert!(c.types.is_subtype(s1, t));
        assert_eq!(c.types.subtypes(t).len(), 4);
    }

    #[test]
    fn incompatible_assignment_rejected() {
        let d = check_err(
            "MODULE M;
             TYPE T = OBJECT END; S1 = T OBJECT END; S2 = T OBJECT END;
             VAR a: S1; b: S2;
             BEGIN a := b; END M.",
        );
        assert!(d.to_string().contains("cannot assign"));
    }

    #[test]
    fn supertype_assignment_allowed() {
        check_ok(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT END;
             VAR a: T; b: S;
             BEGIN a := b; END M.",
        );
    }

    #[test]
    fn field_access_and_methods() {
        let c = check_ok(
            "MODULE M;
             TYPE
               Node = OBJECT val: INTEGER; next: Node;
                      METHODS sum (): INTEGER := NodeSum; END;
             PROCEDURE NodeSum (self: Node): INTEGER =
             BEGIN
               IF self.next = NIL THEN RETURN self.val END;
               RETURN self.val + self.next.sum();
             END NodeSum;
             VAR n: Node;
             BEGIN
               n := NEW(Node);
               n.val := 3;
               EVAL n.sum();
             END M.",
        );
        let node = c.types.by_name("Node").unwrap();
        assert!(c.method_impls.contains_key(&(node, "sum".to_string())));
    }

    #[test]
    fn deref_requires_ref() {
        check_err(
            "MODULE M; VAR x: INTEGER; y: INTEGER;
             BEGIN y := x^; END M.",
        );
    }

    #[test]
    fn ref_and_deref() {
        check_ok(
            "MODULE M;
             TYPE P = REF INTEGER;
             VAR p: P; x: INTEGER;
             BEGIN p := NEW(P); p^ := 3; x := p^; END M.",
        );
    }

    #[test]
    fn open_array_new_and_subscript() {
        check_ok(
            "MODULE M;
             TYPE A = ARRAY OF INTEGER;
             VAR a: A; x: INTEGER;
             BEGIN
               a := NEW(A, 10);
               a[0] := 5;
               x := a[0] + NUMBER(a);
             END M.",
        );
    }

    #[test]
    fn var_param_requires_identical_type_and_designator() {
        // Subtype is NOT enough for VAR params.
        let d = check_err(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT END;
             PROCEDURE F (VAR x: T) = BEGIN END F;
             VAR s: S;
             BEGIN F(s); END M.",
        );
        assert!(d.to_string().contains("identical"));
        check_err(
            "MODULE M;
             PROCEDURE F (VAR x: INTEGER) = BEGIN END F;
             BEGIN F(1 + 2); END M.",
        );
    }

    #[test]
    fn with_value_binding_is_readonly() {
        let d = check_err(
            "MODULE M; VAR x: INTEGER;
             BEGIN WITH y = x + 1 DO y := 3 END; END M.",
        );
        assert!(d.to_string().contains("read-only"));
    }

    #[test]
    fn with_alias_binding_is_writable() {
        let c = check_ok(
            "MODULE M;
             TYPE T = OBJECT f: INTEGER; END;
             VAR t: T;
             BEGIN
               t := NEW(T);
               WITH y = t.f DO y := 3 END;
             END M.",
        );
        let (&(_, idx), &kind) = c.with_kinds.iter().next().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(kind, WithKind::Alias);
    }

    #[test]
    fn for_index_is_readonly() {
        check_err("MODULE M; BEGIN FOR i := 0 TO 9 DO i := 3 END; END M.");
    }

    #[test]
    fn exit_outside_loop_rejected() {
        check_err("MODULE M; BEGIN EXIT; END M.");
    }

    #[test]
    fn narrow_and_istype() {
        check_ok(
            "MODULE M;
             TYPE T = OBJECT END; S = T OBJECT x: INTEGER; END;
             VAR t: T; s: S; b: BOOLEAN;
             BEGIN
               t := NEW(S);
               b := ISTYPE(t, S);
               IF b THEN s := NARROW(t, S); s.x := 1 END;
             END M.",
        );
        check_err(
            "MODULE M;
             TYPE T = OBJECT END; U = OBJECT END;
             VAR t: T;
             BEGIN EVAL ISTYPE(t, U); END M.",
        );
    }

    #[test]
    fn discarded_result_requires_eval() {
        let d = check_err(
            "MODULE M;
             PROCEDURE F (): INTEGER = BEGIN RETURN 1 END F;
             BEGIN F(); END M.",
        );
        assert!(d.to_string().contains("EVAL"));
    }

    #[test]
    fn consts_fold() {
        check_ok(
            "MODULE M;
             CONST N = 10; M2 = N * 2 + 1;
             VAR a: ARRAY [0..20] OF INTEGER; (* fixed arrays as globals *)
             x: INTEGER;
             BEGIN x := M2; END M.",
        );
    }

    #[test]
    fn branded_objects_check() {
        let c = check_ok(
            "MODULE M;
             TYPE B = BRANDED \"b\" OBJECT x: INTEGER; END;
             VAR b: B;
             BEGIN b := NEW(B); b.x := 1; END M.",
        );
        let b = c.types.by_name("B").unwrap();
        assert!(c.types.is_branded(b));
    }

    #[test]
    fn recursive_record_through_object_ok() {
        check_ok(
            "MODULE M;
             TYPE
               Node = OBJECT data: INTEGER; link: Node; END;
               Pair = RECORD a, b: INTEGER; END;
               PPair = REF Pair;
             VAR p: PPair;
             BEGIN p := NEW(PPair); p^.a := 1; END M.",
        );
    }

    #[test]
    fn undefined_type_reported() {
        check_err("MODULE M; VAR x: Bogus; BEGIN END M.");
    }

    #[test]
    fn method_signature_mismatch_reported() {
        let d = check_err(
            "MODULE M;
             TYPE T = OBJECT METHODS m (x: INTEGER): INTEGER := P; END;
             PROCEDURE P (self: T): INTEGER = BEGIN RETURN 0 END P;
             BEGIN END M.",
        );
        assert!(d.to_string().contains("signature"));
    }

    #[test]
    fn override_binding_resolves_most_derived() {
        let c = check_ok(
            "MODULE M;
             TYPE
               A = OBJECT METHODS m (): INTEGER := PA; END;
               B = A OBJECT OVERRIDES m := PB; END;
             PROCEDURE PA (self: A): INTEGER = BEGIN RETURN 1 END PA;
             PROCEDURE PB (self: B): INTEGER = BEGIN RETURN 2 END PB;
             BEGIN END M.",
        );
        let a = c.types.by_name("A").unwrap();
        let b = c.types.by_name("B").unwrap();
        let pa = c.proc_id("PA").unwrap();
        let pb = c.proc_id("PB").unwrap();
        assert_eq!(c.method_impls[&(a, "m".to_string())], pa);
        assert_eq!(c.method_impls[&(b, "m".to_string())], pb);
    }

    #[test]
    fn main_is_last_proc() {
        let c = check_ok("MODULE M; PROCEDURE F () = BEGIN END F; BEGIN END M.");
        assert_eq!(c.main, ProcId(1));
        assert_eq!(c.proc(c.main).name, "<main>");
    }
}
